"""Trace serialization: save/load dynamic traces as compressed ``.npz``.

Functional execution is the most expensive stage of the pipeline for
large launches; persisting :class:`~repro.simt.trace.KernelTrace`
objects lets analysis runs (figures, architecture sweeps) reuse traces
across processes.  The format packs the per-event fields into flat
numpy arrays with offset tables for the ragged ones (source registers,
destination snapshots, addresses), so a 100k-event trace round-trips in
milliseconds and compresses well.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.isa.opcodes import Opcode
from repro.simt.trace import KernelTrace, TraceEvent, WarpTrace

#: Stable opcode numbering for the on-disk format (enum order would
#: silently re-map if opcodes were ever reordered).
_OPCODE_TO_ID = {opcode: index for index, opcode in enumerate(sorted(Opcode, key=lambda o: o.value))}
_ID_TO_OPCODE = {index: opcode for opcode, index in _OPCODE_TO_ID.items()}

#: Bump whenever the archive layout or header schema changes; cached
#: traces with a different version are re-executed, never re-interpreted.
#: Version 2 added the embedded content ``fingerprint`` header field.
_FORMAT_VERSION = 2


def save_trace(
    trace: KernelTrace, path: str | Path, fingerprint: str | None = None
) -> None:
    """Write a trace to ``path`` (``.npz``, compressed).

    ``fingerprint`` (see :mod:`repro.experiments.cachekey`) is stored in
    the header so :func:`load_trace` can reject stale caches whose
    source kernel, scale or warp size has since changed.
    """
    events = [event for warp in trace.warps for event in warp.events]
    count = len(events)

    opcode_ids = np.empty(count, dtype=np.uint16)
    dst = np.empty(count, dtype=np.int32)
    masks = np.empty(count, dtype=np.uint64)
    blocks = np.empty(count, dtype=np.int32)
    varying = np.empty(count, dtype=bool)
    scalar_nonreg = np.empty(count, dtype=np.uint8)

    src_offsets = np.zeros(count + 1, dtype=np.int64)
    src_flat: list[int] = []
    values_index = np.full(count, -1, dtype=np.int64)
    values_rows: list[np.ndarray] = []
    addr_index = np.full(count, -1, dtype=np.int64)
    addr_rows: list[np.ndarray] = []

    for position, event in enumerate(events):
        opcode_ids[position] = _OPCODE_TO_ID[event.opcode]
        dst[position] = -1 if event.dst is None else event.dst
        masks[position] = event.active_mask
        blocks[position] = event.block_id
        varying[position] = event.varying_special_src
        scalar_nonreg[position] = event.scalar_nonreg_srcs
        src_flat.extend(event.src_regs)
        src_offsets[position + 1] = len(src_flat)
        if event.dst_values is not None:
            values_index[position] = len(values_rows)
            values_rows.append(event.dst_values)
        if event.addresses is not None:
            addr_index[position] = len(addr_rows)
            addr_rows.append(event.addresses)

    header = {
        "version": _FORMAT_VERSION,
        "fingerprint": fingerprint,
        "kernel_name": trace.kernel_name,
        "warp_size": trace.warp_size,
        "warp_ids": [warp.warp_id for warp in trace.warps],
        "warp_lengths": [len(warp) for warp in trace.warps],
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        opcode_ids=opcode_ids,
        dst=dst,
        masks=masks,
        blocks=blocks,
        varying=varying,
        scalar_nonreg=scalar_nonreg,
        src_offsets=src_offsets,
        src_flat=np.array(src_flat, dtype=np.int32),
        values_index=values_index,
        values=np.stack(values_rows) if values_rows else np.empty((0, trace.warp_size), dtype=np.uint32),
        addr_index=addr_index,
        addresses=np.stack(addr_rows) if addr_rows else np.empty((0, trace.warp_size), dtype=np.uint32),
    )


def load_trace(
    path: str | Path, expected_fingerprint: str | None = None
) -> KernelTrace:
    """Read a trace previously written by :func:`save_trace`.

    Raises :class:`~repro.errors.TraceError` when the file is corrupt,
    written by a different format version, or — with
    ``expected_fingerprint`` given — was produced from a kernel/scale/
    warp-size combination other than the one being requested (a *stale*
    cache entry).  Callers are expected to recover by re-executing and
    overwriting; nothing here is fatal to an experiment run.
    """
    try:
        return _load_trace_strict(Path(path), expected_fingerprint)
    except TraceError:
        raise
    except Exception as exc:  # zip/json/array damage of any shape
        raise TraceError(f"corrupt or unreadable trace file {path}: {exc}") from exc


def _load_trace_strict(
    path: Path, expected_fingerprint: str | None
) -> KernelTrace:
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {header.get('version')!r}"
            )
        if (
            expected_fingerprint is not None
            and header.get("fingerprint") != expected_fingerprint
        ):
            raise TraceError(
                f"stale trace cache {path}: fingerprint "
                f"{header.get('fingerprint')!r} != expected {expected_fingerprint!r}"
            )
        opcode_ids = archive["opcode_ids"]
        dst = archive["dst"]
        masks = archive["masks"]
        blocks = archive["blocks"]
        varying = archive["varying"]
        scalar_nonreg = archive["scalar_nonreg"]
        src_offsets = archive["src_offsets"]
        src_flat = archive["src_flat"]
        values_index = archive["values_index"]
        values = archive["values"]
        addr_index = archive["addr_index"]
        addresses = archive["addresses"]

    trace = KernelTrace(
        kernel_name=header["kernel_name"], warp_size=header["warp_size"]
    )
    position = 0
    for warp_id, length in zip(header["warp_ids"], header["warp_lengths"]):
        warp = WarpTrace(warp_id=warp_id, warp_size=trace.warp_size)
        for _ in range(length):
            lo, hi = int(src_offsets[position]), int(src_offsets[position + 1])
            value_row = int(values_index[position])
            addr_row = int(addr_index[position])
            warp.append(
                TraceEvent(
                    opcode=_ID_TO_OPCODE[int(opcode_ids[position])],
                    dst=None if dst[position] < 0 else int(dst[position]),
                    src_regs=tuple(int(r) for r in src_flat[lo:hi]),
                    active_mask=int(masks[position]),
                    block_id=int(blocks[position]),
                    dst_values=values[value_row].copy() if value_row >= 0 else None,
                    addresses=addresses[addr_row].copy() if addr_row >= 0 else None,
                    varying_special_src=bool(varying[position]),
                    scalar_nonreg_srcs=int(scalar_nonreg[position]),
                )
            )
            position += 1
        trace.warps.append(warp)
    return trace
