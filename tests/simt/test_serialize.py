"""Round-trip tests for trace serialization."""

import numpy as np
import pytest

from repro.simt import MemoryImage
from repro.simt.serialize import load_trace, save_trace

from tests.conftest import run_one_warp


def assert_traces_equal(a, b):
    assert a.kernel_name == b.kernel_name
    assert a.warp_size == b.warp_size
    assert len(a.warps) == len(b.warps)
    for warp_a, warp_b in zip(a.warps, b.warps):
        assert warp_a.warp_id == warp_b.warp_id
        assert len(warp_a) == len(warp_b)
        for ev_a, ev_b in zip(warp_a.events, warp_b.events):
            assert ev_a.opcode is ev_b.opcode
            assert ev_a.dst == ev_b.dst
            assert ev_a.src_regs == ev_b.src_regs
            assert ev_a.active_mask == ev_b.active_mask
            assert ev_a.block_id == ev_b.block_id
            assert ev_a.varying_special_src == ev_b.varying_special_src
            assert ev_a.scalar_nonreg_srcs == ev_b.scalar_nonreg_srcs
            if ev_a.dst_values is None:
                assert ev_b.dst_values is None
            else:
                assert np.array_equal(ev_a.dst_values, ev_b.dst_values)
            if ev_a.addresses is None:
                assert ev_b.addresses is None
            else:
                assert np.array_equal(ev_a.addresses, ev_b.addresses)


class TestRoundTrip:
    def test_divergent_trace(self, divergent_kernel, tmp_path):
        trace = run_one_warp(divergent_kernel, MemoryImage(), cta=64)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))

    def test_memory_trace(self, saxpy_kernel, simple_memory, tmp_path):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))

    def test_empty_trace(self, tmp_path):
        from repro.simt.trace import KernelTrace

        trace = KernelTrace(kernel_name="empty", warp_size=32)
        path = tmp_path / "empty.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.total_instructions == 0

    def test_downstream_results_identical(self, divergent_kernel, tmp_path):
        """A reloaded trace must classify identically."""
        from repro.scalar import classify_trace, trace_statistics

        trace = run_one_warp(divergent_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        reloaded = load_trace(path)
        original = trace_statistics(
            classify_trace(trace, divergent_kernel.num_registers)
        )
        recovered = trace_statistics(
            classify_trace(reloaded, divergent_kernel.num_registers)
        )
        assert original.class_counts == recovered.class_counts

    def test_workload_trace_round_trip(self, tmp_path):
        from repro.simt.executor import run_kernel
        from repro.workloads.registry import build_workload

        built = build_workload("HS", scale="tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        path = tmp_path / "hs.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))
        assert path.stat().st_size > 0


class TestFingerprint:
    def test_matching_fingerprint_round_trips(self, saxpy_kernel, tmp_path):
        from repro.simt.trace import KernelTrace

        trace = run_one_warp(saxpy_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path, fingerprint="deadbeef00000000")
        loaded = load_trace(path, expected_fingerprint="deadbeef00000000")
        assert isinstance(loaded, KernelTrace)
        assert_traces_equal(trace, loaded)

    def test_mismatched_fingerprint_raises(self, saxpy_kernel, tmp_path):
        from repro.errors import TraceError

        trace = run_one_warp(saxpy_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path, fingerprint="deadbeef00000000")
        with pytest.raises(TraceError, match="stale"):
            load_trace(path, expected_fingerprint="0123456789abcdef")

    def test_missing_fingerprint_raises_when_expected(self, saxpy_kernel, tmp_path):
        from repro.errors import TraceError

        trace = run_one_warp(saxpy_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path)  # no fingerprint embedded
        with pytest.raises(TraceError, match="stale"):
            load_trace(path, expected_fingerprint="0123456789abcdef")

    def test_no_expected_fingerprint_skips_check(self, saxpy_kernel, tmp_path):
        trace = run_one_warp(saxpy_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path, fingerprint="deadbeef00000000")
        assert_traces_equal(trace, load_trace(path))


class TestCorruption:
    def test_garbage_file_raises_trace_error(self, tmp_path):
        from repro.errors import TraceError

        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(TraceError, match="corrupt"):
            load_trace(path)

    def test_truncated_archive_raises_trace_error(self, saxpy_kernel, tmp_path):
        from repro.errors import TraceError

        trace = run_one_warp(saxpy_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError):
            load_trace(path)

    def test_empty_file_raises_trace_error(self, tmp_path):
        from repro.errors import TraceError

        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_version_raises_trace_error(self, saxpy_kernel, tmp_path):
        from unittest import mock

        from repro.errors import TraceError
        from repro.simt import serialize

        trace = run_one_warp(saxpy_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        with mock.patch.object(serialize, "_FORMAT_VERSION", 999):
            save_trace(trace, path)
        with pytest.raises(TraceError, match="version"):
            load_trace(path)
