"""Tests for the full banked register file."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.regfile.registerfile import RegisterFile


class TestAllocation:
    def test_table1_capacity(self):
        rf = RegisterFile()
        assert rf.capacity_registers == 1024
        assert rf.max_resident_warps == 64

    def test_consecutive_registers_spread_across_banks(self):
        rf = RegisterFile()
        banks = [rf.locate(0, r).bank for r in range(16)]
        assert len(set(banks)) == 16

    def test_warp_offset_staggers_banks(self):
        rf = RegisterFile()
        assert rf.locate(0, 0).bank != rf.locate(1, 0).bank

    def test_every_register_gets_a_unique_home(self):
        rf = RegisterFile()
        homes = set()
        for warp in range(rf.max_resident_warps):
            for register in range(rf.registers_per_warp):
                location = rf.locate(warp, register)
                homes.add((location.bank, location.row))
        assert len(homes) == rf.capacity_registers

    def test_out_of_budget_register_rejected(self):
        rf = RegisterFile()
        with pytest.raises(ConfigError):
            rf.locate(0, 16)

    def test_over_residency_rejected(self):
        rf = RegisterFile()
        with pytest.raises(ConfigError):
            rf.locate(64, 0)


class TestStorage:
    def test_write_read_round_trip(self):
        rf = RegisterFile()
        values = np.uint32(0xC0400000) + np.arange(32, dtype=np.uint32)
        rf.write(3, 5, values)
        out, record = rf.read(3, 5)
        assert np.array_equal(out, values)
        assert record.data_arrays < 8  # compressed

    def test_warps_are_isolated(self):
        rf = RegisterFile()
        rf.write(0, 0, np.full(32, 1, dtype=np.uint32))
        rf.write(1, 0, np.full(32, 2, dtype=np.uint32))
        assert rf.read(0, 0)[0][0] == 1
        assert rf.read(1, 0)[0][0] == 2

    def test_scalar_detection_at_file_scope(self):
        rf = RegisterFile()
        rf.write(2, 7, np.full(32, 9, dtype=np.uint32))
        assert rf.is_scalar(2, 7)

    def test_divergent_write_path(self):
        rf = RegisterFile()
        rng = np.random.default_rng(0)
        original = rng.integers(0, 2**32, 32, dtype=np.uint64).astype(np.uint32)
        rf.write(0, 1, original)
        mask = np.zeros(32, dtype=bool)
        mask[::4] = True
        rf.write_divergent(0, 1, np.full(32, 5, dtype=np.uint32), mask)
        out, _ = rf.read(0, 1)
        assert np.all(out[::4] == 5)
        assert np.array_equal(out[1::4], original[1::4])

    def test_decompress_then_divergent(self):
        rf = RegisterFile()
        rf.write(0, 2, np.full(32, 7, dtype=np.uint32))  # scalar (compressed)
        rf.decompress_in_place(0, 2)
        mask = np.ones(32, dtype=bool)
        mask[0] = False
        rf.write_divergent(0, 2, np.zeros(32, dtype=np.uint32), mask)
        out, _ = rf.read(0, 2)
        assert out[0] == 7

    def test_access_counters(self):
        rf = RegisterFile()
        rf.write(0, 0, np.zeros(32, dtype=np.uint32))
        rf.read(0, 0)
        assert rf.writes == 1 and rf.reads == 1


class TestConflicts:
    def test_same_bank_conflicts(self):
        rf = RegisterFile()
        # Warp 0 registers 0 and 16 would conflict, but 16 is out of
        # budget; instead use two warps whose registers share a bank.
        a = (0, 0)  # bank 0
        b = (16, 0)  # bank (0+16)%16 == 0
        assert rf.bank_conflicts([a, b]) == 1

    def test_disjoint_banks_no_conflict(self):
        rf = RegisterFile()
        assert rf.bank_conflicts([(0, 0), (0, 1), (0, 2)]) == 0

    def test_empty(self):
        assert RegisterFile().bank_conflicts([]) == 0
