"""Gauges: high-water semantics, memory observables, Prometheus export."""

from repro.obs.memory import (
    peak_rss_bytes,
    record_bytes_in_flight,
    record_peak_rss,
)
from repro.obs.prometheus import prometheus_text
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


class TestGaugeSemantics:
    def test_gauge_set_last_write_wins(self):
        t = Telemetry()
        t.gauge_set("level", 5)
        t.gauge_set("level", 3)
        assert t.gauge_value("level") == 3

    def test_gauge_max_keeps_high_water(self):
        t = Telemetry()
        t.gauge_max("peak", 10)
        t.gauge_max("peak", 4)
        t.gauge_max("peak", 12)
        assert t.gauge_value("peak") == 12

    def test_gauge_labels_are_distinct_series(self):
        t = Telemetry()
        t.gauge_max("peak", 1, stage="classify")
        t.gauge_max("peak", 2, stage="process")
        named = t.gauges_named("peak")
        assert len(named) == 2
        assert t.gauge_value("peak", stage="classify") == 1
        assert t.gauge_value("peak", stage="process") == 2

    def test_missing_gauge_is_none(self):
        assert Telemetry().gauge_value("absent") is None

    def test_null_telemetry_ignores_gauges(self):
        NULL_TELEMETRY.gauge_set("x", 1)
        NULL_TELEMETRY.gauge_max("x", 2)
        assert NULL_TELEMETRY.gauges == {}


class TestGaugeMerge:
    def test_snapshot_roundtrip(self):
        t = Telemetry()
        t.gauge_max("peak_rss_bytes", 100)
        merged = Telemetry()
        merged.merge(t.snapshot())
        assert merged.gauge_value("peak_rss_bytes") == 100

    def test_merge_folds_by_max(self):
        # A worker pool reports the fleet-wide peak, not a sum.
        parent = Telemetry()
        parent.gauge_max("peak_rss_bytes", 100)
        worker_a = Telemetry()
        worker_a.gauge_max("peak_rss_bytes", 250)
        worker_b = Telemetry()
        worker_b.gauge_max("peak_rss_bytes", 80)
        parent.merge(worker_a)
        parent.merge(worker_b)
        assert parent.gauge_value("peak_rss_bytes") == 250


class TestMemoryObservables:
    def test_peak_rss_is_positive(self):
        assert peak_rss_bytes() > 0

    def test_record_peak_rss_into_registry(self):
        t = Telemetry()
        value = record_peak_rss(t)
        assert value == t.gauge_value("peak_rss_bytes")
        assert value > 0

    def test_record_bytes_in_flight_high_water(self):
        t = Telemetry()
        record_bytes_in_flight(500, t)
        record_bytes_in_flight(200, t)
        assert t.gauge_value("bytes_in_flight") == 500


class TestPrometheusGauges:
    def test_gauge_section_rendered(self):
        t = Telemetry()
        t.gauge_max("peak_rss_bytes", 1234)
        t.gauge_max("bytes_in_flight", 42)
        text = prometheus_text(t)
        assert "# TYPE repro_peak_rss_bytes gauge" in text
        assert "repro_peak_rss_bytes 1234" in text
        assert "# HELP repro_peak_rss_bytes" in text
        assert "# TYPE repro_bytes_in_flight gauge" in text
        assert "repro_bytes_in_flight 42" in text
        # Gauges never get the counter suffix.
        assert "peak_rss_bytes_total" not in text

    def test_gauge_labels_rendered(self):
        t = Telemetry()
        t.gauge_max("bytes_in_flight", 7, benchmark="HS")
        text = prometheus_text(t)
        assert 'repro_bytes_in_flight{benchmark="HS"} 7' in text

    def test_counters_and_gauges_coexist(self):
        t = Telemetry()
        t.count("stream_chunks", 3)
        t.gauge_max("bytes_in_flight", 9)
        text = prometheus_text(t)
        assert "# TYPE repro_stream_chunks_total counter" in text
        assert "# TYPE repro_bytes_in_flight gauge" in text
