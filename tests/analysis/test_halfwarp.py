"""Tests for the Figure 10 chunk-scalar analysis."""

import pytest

from repro.analysis.halfwarp import chunk_scalar_stats
from repro.errors import TraceError
from repro.isa import KernelBuilder
from repro.simt import MemoryImage
from repro.workloads.patterns import half_parameter

from tests.conftest import run_one_warp


def half_scalar_kernel():
    """Ops on a per-half parameter: chunk-scalar but not full-scalar."""
    import numpy as np

    b = KernelBuilder("half")
    hp = half_parameter(b, 0x1000)
    x = b.iadd(hp, 1)
    y = b.iadd(x, hp)
    b.st_global(b.imad(b.tid(), 4, 0x2000), y)
    kernel = b.finish()
    memory = MemoryImage()
    memory.bind_array(0x1000, np.array([11, 22, 33, 44], dtype=np.uint32))
    return kernel, memory


class TestChunkScalar:
    def test_half_scalar_detected_at_warp32(self):
        kernel, memory = half_scalar_kernel()
        trace = run_one_warp(kernel, memory)
        stats = chunk_scalar_stats(trace, granularity=16)
        assert stats.chunk_scalar_instructions >= 2
        assert stats.warp_size == 32

    def test_full_scalar_not_counted_as_chunk(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        stats = chunk_scalar_stats(trace, granularity=16)
        assert stats.full_scalar_instructions > 0
        assert stats.chunk_scalar_instructions == 0

    def test_warp64_quarter_scalar(self):
        kernel, memory = half_scalar_kernel()
        trace = run_one_warp(kernel, memory, warp_size=64, cta=64)
        stats = chunk_scalar_stats(trace, granularity=16)
        # lanes 0-15 read param[0], 16-63 read param[1..3] per the shr
        # pattern; chunks are individually scalar but not all equal.
        assert stats.chunk_scalar_instructions >= 2

    def test_merging_warps_raises_chunk_share(self):
        """The Figure 10 effect: two 32-thread warps with different
        scalar values merge into one 64-thread chunk-scalar warp."""
        import numpy as np

        b = KernelBuilder("merge_effect")
        tid = b.tid()
        warp_id = b.shr(tid, 5)  # distinct per 32 threads
        param = b.ld_global(b.imad(warp_id, 4, 0x1000))
        result = b.iadd(param, 7)
        b.st_global(b.imad(tid, 4, 0x2000), result)
        kernel = b.finish()

        def fraction(warp_size):
            memory = MemoryImage()
            memory.bind_array(0x1000, np.array([5, 9], dtype=np.uint32))
            trace = run_one_warp(kernel, memory, warp_size=warp_size, cta=64)
            return chunk_scalar_stats(trace, 16).chunk_scalar_fraction

        assert fraction(64) > fraction(32)

    def test_bad_granularity_rejected(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        with pytest.raises(TraceError):
            chunk_scalar_stats(trace, granularity=5)

    def test_divergent_writes_invalidate_state(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage())
        stats = chunk_scalar_stats(trace, granularity=16)
        assert stats.total_instructions == trace.total_instructions
