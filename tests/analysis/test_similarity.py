"""Tests for the Figure 8 access-distribution analysis."""

import pytest

from repro.analysis.similarity import CATEGORIES, access_distribution
from repro.isa import KernelBuilder
from repro.scalar.tracker import classify_trace
from repro.simt import MemoryImage

from tests.conftest import run_one_warp


def distribution_for(kernel):
    trace = run_one_warp(kernel, MemoryImage())
    return access_distribution(classify_trace(trace, kernel.num_registers))


class TestAccessDistribution:
    def test_scalar_chain_reads_scalar(self, scalar_heavy_kernel):
        distribution = distribution_for(scalar_heavy_kernel)
        fractions = distribution.fractions()
        assert fractions["scalar"] > 0.5

    def test_divergent_reads_bucketed_first(self, divergent_kernel):
        distribution = distribution_for(divergent_kernel)
        assert distribution.counts["divergent"] > 0

    def test_three_byte_values_detected(self):
        b = KernelBuilder("threebyte")
        tid = b.tid()
        x = b.iadd(tid, 0x40300000)  # 3-byte shared prefix
        b.iadd(x, x)
        distribution = distribution_for(b.finish())
        assert distribution.counts["3-byte"] >= 2

    def test_fractions_sum_to_one(self, divergent_kernel):
        distribution = distribution_for(divergent_kernel)
        assert sum(distribution.fractions().values()) == pytest.approx(1.0)

    def test_merge(self, divergent_kernel, scalar_heavy_kernel):
        a = distribution_for(divergent_kernel)
        b = distribution_for(scalar_heavy_kernel)
        total = a.total + b.total
        a.merge(b)
        assert a.total == total

    def test_categories_order(self):
        assert CATEGORIES[0] == "scalar"
        assert "divergent" in CATEGORIES
