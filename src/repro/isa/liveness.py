"""Register liveness and branch-region analysis over kernel CFGs.

Backs the compiler-assisted techniques the paper sketches:

* §3.3: "a compiler-assisted technique can analyze the lifetime of
  registers at compile time and identify which registers will store
  dead values", avoiding unnecessary decompress-move instructions; and
* §6: compile-time scalarization [Lee et al., CGO 2013], which G-Scalar
  is compared against.

:func:`block_liveness` is the classic backward may-liveness dataflow.
:func:`branch_regions` recovers, for every block, the innermost
single-entry/single-exit region created by a conditional branch: the
blocks strictly between the branch and its immediate post-dominator,
split by arm.  The structured :class:`~repro.isa.builder.KernelBuilder`
only emits such regions, so the recovery is exact for all workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.kernel import EXIT_NODE, Branch, Kernel, immediate_postdominators


@dataclass
class BlockLiveness:
    """use/def/live-in/live-out sets per block (register indices)."""

    use: dict[int, set[int]] = field(default_factory=dict)
    defs: dict[int, set[int]] = field(default_factory=dict)
    live_in: dict[int, set[int]] = field(default_factory=dict)
    live_out: dict[int, set[int]] = field(default_factory=dict)


def block_liveness(kernel: Kernel) -> BlockLiveness:
    """Backward may-liveness over the CFG (all writes kill)."""
    result = BlockLiveness()
    for block in kernel.blocks:
        use: set[int] = set()
        defined: set[int] = set()
        for inst in block.instructions:
            for src in inst.source_registers:
                if src.index not in defined:
                    use.add(src.index)
            if inst.dst is not None:
                defined.add(inst.dst.index)
        if isinstance(block.terminator, Branch):
            cond = block.terminator.cond.index
            if cond not in defined:
                use.add(cond)
        result.use[block.block_id] = use
        result.defs[block.block_id] = defined
        result.live_in[block.block_id] = set()
        result.live_out[block.block_id] = set()

    changed = True
    while changed:
        changed = False
        for block in reversed(kernel.blocks):
            block_id = block.block_id
            out: set[int] = set()
            for successor in block.successors():
                if successor != EXIT_NODE:
                    out |= result.live_in[successor]
            new_in = result.use[block_id] | (out - result.defs[block_id])
            if out != result.live_out[block_id] or new_in != result.live_in[block_id]:
                result.live_out[block_id] = out
                result.live_in[block_id] = new_in
                changed = True
    return result


@dataclass(frozen=True)
class BranchRegion:
    """One conditional region: branch block, its two arm heads, and the
    reconvergence block (the branch's immediate post-dominator)."""

    branch_block: int
    taken_head: int
    not_taken_head: int
    reconvergence: int

    def sibling_of(self, arm_head: int) -> int:
        """The other arm's head block."""
        return self.not_taken_head if arm_head == self.taken_head else self.taken_head


def branch_region_members(
    kernel: Kernel,
) -> list[tuple[BranchRegion, frozenset[int]]]:
    """Every conditional region with its full member-block set.

    One entry per two-way :class:`Branch` terminator (degenerate
    branches whose arms coincide create no region).  A block is a member
    when it is reachable from one of the branch's arms without passing
    through the branch's immediate post-dominator; nested regions
    overlap, so a block may appear in several entries.  An arm that is
    empty (its head *is* the reconvergence point) contributes no
    members, and a branch whose post-dominator is :data:`EXIT_NODE`
    spans everything reachable from its arms.
    """
    ipdom = immediate_postdominators(kernel)
    regions: list[tuple[BranchRegion, frozenset[int]]] = []
    for block in kernel.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        if terminator.taken == terminator.not_taken:
            continue
        reconvergence = ipdom[block.block_id]
        members: set[int] = set()
        stack = [terminator.taken, terminator.not_taken]
        while stack:
            node = stack.pop()
            if node == reconvergence or node == EXIT_NODE or node in members:
                continue
            members.add(node)
            stack.extend(kernel.blocks[node].successors())
        regions.append(
            (
                BranchRegion(
                    branch_block=block.block_id,
                    taken_head=terminator.taken,
                    not_taken_head=terminator.not_taken,
                    reconvergence=reconvergence,
                ),
                frozenset(members),
            )
        )
    return regions


def branch_regions(kernel: Kernel) -> dict[int, BranchRegion]:
    """Map each block to its *innermost* enclosing branch region.

    A block belongs to a branch's region when it is reachable from one
    of the branch's arms without passing through the branch's immediate
    post-dominator.  Innermost = the smallest such region.  Blocks
    outside every conditional (straight-line or loop-header code) are
    absent from the map.
    """
    innermost: dict[int, BranchRegion] = {}
    best_size: dict[int, int] = {}
    for region, members in branch_region_members(kernel):
        for member in members:
            if member not in best_size or len(members) < best_size[member]:
                best_size[member] = len(members)
                innermost[member] = region
    return innermost
