"""Tests for the multi-SM GPU wrapper."""

import pytest

from repro.config import ArchitectureConfig
from repro.errors import TimingError
from repro.scalar.architectures import process_trace
from repro.simt.executor import run_kernel
from repro.timing.multisim import simulate_gpu
from repro.workloads.registry import build_workload

ARCH = ArchitectureConfig.baseline()


@pytest.fixture(scope="module")
def processed_hs():
    built = build_workload("HS", scale="small")  # 16 warps, 4 CTAs
    trace = run_kernel(built.kernel, built.launch, built.memory)
    processed = process_trace(trace, ARCH, built.kernel.num_registers)
    warps_per_cta = built.launch.warps_per_cta(32)
    return processed, warps_per_cta


class TestSimulateGpu:
    def test_all_instructions_complete(self, processed_hs):
        processed, wpc = processed_hs
        result = simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=2)
        total_events = sum(len(w) for w in processed)
        assert result.instructions == total_events
        assert result.useful_instructions == total_events

    def test_more_sms_never_slower(self, processed_hs):
        processed, wpc = processed_hs
        one = simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=1)
        four = simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=4)
        assert four.cycles <= one.cycles
        assert four.ipc >= one.ipc

    def test_excess_sms_idle(self, processed_hs):
        processed, wpc = processed_hs
        result = simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=15)
        busy = [r for r in result.per_sm if r.instructions > 0]
        assert len(busy) == 4  # only 4 CTAs to place

    def test_memory_counts_aggregate(self, processed_hs):
        processed, wpc = processed_hs
        split = simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=2)
        assert split.memory_counts.l1_accesses > 0

    def test_load_imbalance_bounds(self, processed_hs):
        processed, wpc = processed_hs
        result = simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=3)
        # 4 CTAs over 3 SMs: one SM runs two CTAs -> imbalance > 1.
        assert result.load_imbalance() >= 1.0

    def test_invalid_parameters(self, processed_hs):
        processed, wpc = processed_hs
        with pytest.raises(TimingError):
            simulate_gpu(processed, ARCH, warps_per_cta=wpc, num_sms=0)
        with pytest.raises(TimingError):
            simulate_gpu(processed, ARCH, warps_per_cta=0)

    def test_empty_launch(self):
        result = simulate_gpu([], ARCH, num_sms=4)
        assert result.cycles == 0
        assert result.ipc == 0.0
