"""Per-warp scoreboard.

GPUs have no operand bypassing (§5.4): an instruction may not issue
until every register it reads or writes has left the pipeline.  The
scoreboard tracks in-flight destination registers per warp; the
G-Scalar +3-cycle pipeline stretch lengthens how long entries stay,
which is exactly the mechanism behind the paper's 1.7% average IPC loss.
"""

from __future__ import annotations

from repro.errors import TimingError


class Scoreboard:
    """In-flight destination registers of one warp."""

    def __init__(self) -> None:
        self._pending: set[int] = set()

    def can_issue(self, sources: tuple[int, ...], dst: int | None) -> bool:
        """RAW/WAW/WAR check against in-flight destinations."""
        if dst is not None and dst in self._pending:
            return False
        return not any(register in self._pending for register in sources)

    def blocking_registers(
        self, sources: tuple[int, ...], dst: int | None
    ) -> tuple[int, ...]:
        """The in-flight registers that block this op, sorted.

        Empty exactly when :meth:`can_issue` is True — the flight
        recorder uses this to annotate scoreboard stalls with the
        registers the warp was waiting on.
        """
        blocking = {r for r in sources if r in self._pending}
        if dst is not None and dst in self._pending:
            blocking.add(dst)
        return tuple(sorted(blocking))

    def reserve(self, dst: int | None) -> None:
        """Mark the destination as in flight at issue."""
        if dst is not None:
            self._pending.add(dst)

    def release(self, dst: int | None) -> None:
        """Clear the destination at write-back."""
        if dst is None:
            return
        if dst not in self._pending:
            raise TimingError(f"write-back of r{dst} that was never reserved")
        self._pending.discard(dst)

    @property
    def pending_count(self) -> int:
        return len(self._pending)
