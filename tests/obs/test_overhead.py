"""The disabled (null-registry) path must stay seed-equivalent.

Two layers of defence: structural tests proving the aggregation
helpers are never invoked while telemetry is disabled (so the hot
loops run exactly the seed instruction stream plus one ``enabled``
attribute read per batch), and a lenient timing bound on the
``repro.obs.bench`` measurement — the strict 5% version runs in CI
where repeat counts are higher.
"""

import pytest

from repro.obs.bench import measure
from repro.obs.telemetry import NULL_TELEMETRY, get_telemetry
from repro.simt.executor import run_kernel
from repro.scalar.tracker import classify_trace
from repro.workloads.registry import build_workload


def _fail_if_called(*args, **kwargs):
    raise AssertionError("telemetry helper invoked while disabled")


class TestStructuralZeroWork:
    def test_executor_skips_helpers_when_disabled(self, monkeypatch):
        assert get_telemetry() is NULL_TELEMETRY
        monkeypatch.setattr(
            "repro.simt.executor.record_warp_trace", _fail_if_called
        )
        built = build_workload("BP", "tiny")
        run_kernel(built.kernel, built.launch, built.memory)

    def test_tracker_skips_helpers_when_disabled(self, monkeypatch):
        assert get_telemetry() is NULL_TELEMETRY
        monkeypatch.setattr(
            "repro.scalar.tracker.record_classified_warp", _fail_if_called
        )
        built = build_workload("BP", "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classify_trace(trace, built.kernel.num_registers)

    def test_power_accounting_skips_helpers_when_disabled(self, monkeypatch):
        from repro.experiments.runner import ExperimentRunner, paper_architectures

        assert get_telemetry() is NULL_TELEMETRY
        monkeypatch.setattr(
            "repro.power.accounting.record_rf_accesses", _fail_if_called
        )
        monkeypatch.setattr(
            "repro.power.accounting.record_power_breakdown", _fail_if_called
        )
        runner = ExperimentRunner(scale="tiny")
        runner.power("BP", paper_architectures()[0])

    def test_null_registry_accumulates_nothing(self):
        built = build_workload("BP", "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classify_trace(trace, built.kernel.num_registers)
        assert NULL_TELEMETRY.counters == {}
        assert NULL_TELEMETRY.histograms == {}
        assert NULL_TELEMETRY.spans == []


class TestBench:
    @pytest.fixture(scope="class")
    def result(self):
        return measure("BP", "tiny", repeats=5)

    def test_reports_all_settings(self, result):
        assert set(result["median_seconds"]) == {"off", "null_sink", "full"}
        assert all(value > 0 for value in result["median_seconds"].values())

    def test_disabled_overhead_is_small(self, result):
        # off / min(off, null_sink) is 1.0 up to timing noise unless the
        # disabled path grew real per-instruction work; CI enforces the
        # strict 5% bound with python -m repro.obs.bench.
        assert 1.0 <= result["disabled_overhead_ratio"] < 1.5

    def test_enabled_overhead_is_bounded(self, result):
        # The aggregation passes cost something, but an enabled registry
        # must stay the same order of magnitude as the seed pipeline.
        assert result["enabled_overhead_ratio"] < 3.0
