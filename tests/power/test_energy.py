"""Unit tests for energy parameters."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.isa.opcodes import Opcode
from repro.power.energy import DEFAULT_ENERGY, EnergyParams


class TestDerivedQuantities:
    def test_array_energy_is_one_eighth(self):
        params = DEFAULT_ENERGY
        assert params.rf_array_pj == pytest.approx(params.rf_full_access_pj / 8)

    def test_sidecar_is_paper_fraction(self):
        params = DEFAULT_ENERGY
        assert params.sidecar_pj == pytest.approx(0.052 * params.rf_full_access_pj)

    def test_compressor_energy_matches_table3(self):
        # 16.22 mW at 1.4 GHz -> pJ per operation.
        assert DEFAULT_ENERGY.compressor_op_pj == pytest.approx(16.22 / 1.4)
        assert DEFAULT_ENERGY.decompressor_op_pj == pytest.approx(15.86 / 1.4)


class TestExecLaneEnergy:
    def test_sfu_factors_in_paper_range(self):
        params = DEFAULT_ENERGY
        for opcode in (Opcode.SIN, Opcode.EX2, Opcode.RCP):
            ratio = params.exec_lane_pj(opcode) / params.alu_lane_pj
            assert 3.0 <= ratio <= 24.0

    def test_sin_is_most_expensive(self):
        params = DEFAULT_ENERGY
        assert params.exec_lane_pj(Opcode.SIN) == 24.0 * params.alu_lane_pj

    def test_memory_op_energy(self):
        params = DEFAULT_ENERGY
        assert params.exec_lane_pj(Opcode.LD_GLOBAL) == params.mem_lane_pj

    def test_plain_alu(self):
        params = DEFAULT_ENERGY
        assert params.exec_lane_pj(Opcode.IADD) == params.alu_lane_pj


class TestValidation:
    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DEFAULT_ENERGY, alu_lane_pj=-1.0)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(DEFAULT_ENERGY, sidecar_fraction=1.5)
