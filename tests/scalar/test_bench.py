"""Tests for the classify/pipeline microbenchmark harness."""

import json

from repro.scalar import bench


class TestMedianSeconds:
    def test_warmup_iterations_are_untimed(self):
        calls = []

        def fn():
            calls.append(len(calls))

        seconds = bench._median_seconds(fn, repeats=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert seconds >= 0

    def test_zero_warmup_supported(self):
        calls = []
        bench._median_seconds(lambda: calls.append(None), repeats=2, warmup=0)
        assert len(calls) == 2


class TestMeasure:
    def test_classify_measure_reports_speedup(self):
        result = bench.measure("BP", "tiny", repeats=1, warmup=0)
        assert result["benchmark"] == "BP"
        assert result["warmup"] == 0
        assert result["events"] > 0
        assert result["speedup"] > 0

    def test_pipeline_measure_covers_paper_architectures(self):
        result = bench.measure_pipeline("BP", "tiny", repeats=1, warmup=0)
        assert result["sm_simulation_excluded"] is False
        assert result["architectures"] == [
            "baseline",
            "alu_scalar",
            "gscalar_no_divergent",
            "gscalar",
        ]
        assert result["speedup"] > 0


class TestMeasureTransport:
    def test_transport_measure_reports_all_arms(self):
        result = bench.measure_transport("BP", "tiny", repeats=1, warmup=0)
        assert result["benchmark"] == "BP"
        assert result["trace_bytes"] > 0
        assert result["cold_miss_seconds"] > 0
        assert result["legacy_warm_seconds"] > 0
        assert result["mmap_warm_seconds"] > 0
        assert result["mmap_warm_touch_seconds"] > 0
        # The gate ratio is the conservative one: decompress vs
        # map-plus-touch-every-page.
        import pytest

        assert result["speedup"] == pytest.approx(
            result["legacy_warm_seconds"] / result["mmap_warm_touch_seconds"],
            rel=0.01,
        )


class TestCli:
    def test_transport_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = bench.main(
            [
                "BP",
                "--scale",
                "tiny",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--transport",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["mode"] == "transport"
        assert len(report["results"]) == 1

    def test_transport_and_pipeline_are_exclusive(self):
        import pytest

        with pytest.raises(SystemExit):
            bench.main(["BP", "--pipeline", "--transport"])

    def test_pipeline_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = bench.main(
            [
                "BP",
                "--scale",
                "tiny",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--pipeline",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["mode"] == "pipeline"
        assert report["warmup"] == 0
        assert len(report["results"]) == 1

    def test_min_speedup_gate_fails(self, capsys):
        code = bench.main(
            ["BP", "--scale", "tiny", "--repeats", "1", "--min-speedup", "1e9"]
        )
        assert code == 1
