"""Regenerate Figure 12: normalized register-file dynamic power.

Paper: the scalar-only RF reaches 63% of baseline (37% saving); our
byte-wise compression reaches 46% (54% saving) and also beats the
Warped-Compression BDI scheme.
"""

from repro.experiments import fig12

from conftest import run_once


def bench_fig12(benchmark, shared_runner):
    data = run_once(benchmark, fig12.compute, shared_runner)
    print()
    print(fig12.render(data))

    ours = data.average("ours")
    scalar_rf = data.average("scalar_rf")
    wc = data.average("wc_bdi")

    # Ordering: ours < W-C and ours < scalar-only < baseline.
    assert ours < wc < 1.0
    assert ours < scalar_rf < 1.0
    # Magnitudes near the paper's 0.46 / 0.63.
    assert 0.35 < ours < 0.60
    assert 0.50 < scalar_rf < 0.75

    by_abbr = {row.abbr: row.normalized for row in data.rows}
    # §5.3: on MG and MV (partial-byte similarity, few scalars) ours
    # beats the scalar RF by a clear margin.
    for abbr in ("MG", "MV"):
        assert by_abbr[abbr]["ours"] < 0.85 * by_abbr[abbr]["scalar_rf"], abbr
