"""Unit tests for the structured kernel-builder DSL."""

import pytest

from repro.errors import BuilderError
from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Branch, Exit, Jump


class TestStraightLine:
    def test_simple_kernel(self):
        b = KernelBuilder("simple")
        x = b.mov(42)
        y = b.iadd(x, 1)
        b.st_global(b.mov(0x1000), y)
        kernel = b.finish()
        assert len(kernel.blocks) == 1
        assert isinstance(kernel.blocks[0].terminator, Exit)
        assert kernel.static_instruction_count() == 4

    def test_fresh_registers_are_distinct(self):
        b = KernelBuilder("regs")
        a = b.mov(1)
        c = b.mov(2)
        assert a != c

    def test_explicit_destination(self):
        b = KernelBuilder("dst")
        acc = b.mov(0)
        result = b.iadd(acc, 1, dst=acc)
        assert result == acc

    def test_float_immediates(self):
        b = KernelBuilder("f")
        b.fadd(b.fimm(1.5), 2.5)
        kernel = b.finish()
        assert kernel.static_instruction_count() == 1

    def test_finish_twice_rejected(self):
        b = KernelBuilder("twice")
        b.mov(0)
        b.finish()
        with pytest.raises(BuilderError):
            b.finish()

    def test_emit_after_finish_rejected(self):
        b = KernelBuilder("after")
        b.finish()
        with pytest.raises(BuilderError):
            b.mov(0)

    def test_bad_operand_type_rejected(self):
        b = KernelBuilder("bad")
        with pytest.raises(BuilderError):
            b.iadd("not an operand", 1)


class TestIf:
    def test_if_without_else(self):
        b = KernelBuilder("if")
        cond = b.mov(1)
        with b.if_(cond):
            b.mov(2)
        kernel = b.finish()
        # entry + then + (empty) else + merge
        assert len(kernel.blocks) == 4
        assert isinstance(kernel.blocks[0].terminator, Branch)

    def test_if_with_else(self):
        b = KernelBuilder("ifelse")
        cond = b.mov(1)
        with b.if_(cond) as branch:
            b.mov(2)
            with branch.else_():
                b.mov(3)
        kernel = b.finish()
        branch_term = kernel.blocks[0].terminator
        assert isinstance(branch_term, Branch)
        taken = kernel.blocks[branch_term.taken]
        not_taken = kernel.blocks[branch_term.not_taken]
        assert len(taken.instructions) == 1
        assert len(not_taken.instructions) == 1
        assert isinstance(taken.terminator, Jump)
        assert taken.terminator.target == not_taken.terminator.target

    def test_double_else_rejected(self):
        b = KernelBuilder("doubleelse")
        cond = b.mov(1)
        with pytest.raises(BuilderError):
            with b.if_(cond) as branch:
                with branch.else_():
                    pass
                with branch.else_():
                    pass

    def test_nested_if(self):
        b = KernelBuilder("nested")
        c1 = b.mov(1)
        c2 = b.mov(0)
        with b.if_(c1):
            with b.if_(c2):
                b.mov(5)
        kernel = b.finish()
        assert len(kernel.blocks) == 7


class TestLoops:
    def test_while_structure(self):
        b = KernelBuilder("while")
        i = b.mov(0)
        with b.while_(lambda: b.setlt(i, 3)):
            b.iadd(i, 1, dst=i)
        kernel = b.finish()
        # entry, header, body, exit
        assert len(kernel.blocks) == 4
        header = kernel.blocks[1]
        assert isinstance(header.terminator, Branch)

    def test_for_range_zero_step_rejected(self):
        b = KernelBuilder("badstep")
        with pytest.raises(BuilderError):
            with b.for_range(0, 4, step=0):
                pass

    def test_for_range_negative_step(self):
        b = KernelBuilder("down")
        with b.for_range(5, 0, step=-1):
            b.mov(0)
        kernel = b.finish()
        assert kernel.static_instruction_count() > 0

    def test_nested_loop(self):
        b = KernelBuilder("nestloop")
        with b.for_range(0, 2):
            with b.for_range(0, 3):
                b.mov(1)
        kernel = b.finish()
        assert len(kernel.blocks) == 7


class TestSpecialRegisters:
    def test_all_specials_materialize(self):
        b = KernelBuilder("specials")
        for method in (b.tid, b.lane, b.ctaid, b.warp_in_cta, b.ntid):
            reg = method()
            assert reg is not None
        kernel = b.finish()
        assert kernel.static_instruction_count() == 5
