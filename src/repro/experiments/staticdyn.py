"""Static vs. dynamic scalarization — the paper's §6 comparison, quantified.

The paper argues (§6, citing Lee et al. [CGO 2013]) that compile-time
scalarization finds far fewer scalar instructions than G-Scalar's
dynamic detection, because a compiler must *prove* warp-uniformity
while the hardware merely *observes* it.  This experiment measures that
gap directly: run the static divergence analysis
(:mod:`repro.analysis.static_.uniformity`) over every workload kernel,
join each dynamic trace event back to its static instruction site, and
score the predictor against the tracker's ground truth:

* **precision** — of the dynamic events at PROVABLY_SCALAR sites, the
  fraction the tracker indeed found scalar.  The prediction is sound,
  so this measures only the detector's value granularity (e.g. a
  uniform 64-bit pair the byte-level comparator still certifies).
* **recall** — of the dynamically *full-scalar* events (ALU/SFU/MEM
  buckets, the ones a compile-time scalarizer targets), the fraction
  that occurred at PROVABLY_SCALAR sites.  The shortfall is G-Scalar's
  headroom over static scalarization.
* **coverage** — PROVABLY_SCALAR events over all dynamic events.

Soundness invariant (tested): a PROVABLY_SCALAR site never executes
under a mask narrower than its warp's entry mask, so the static
analysis can never promise a scalar pipe to a lane-divergent
instruction.  Tail warps launch with partial masks; all comparisons are
therefore relative to each warp's *entry* mask, not the full-warp mask,
and a DIVERGENT_SCALAR event at the entry mask counts as a correct
prediction (the §4.2 mask-equality rule certifies it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.analysis.static_.uniformity import (
    StaticScalarClass,
    analyze_uniformity,
)
from repro.analysis.static_.widths import analyze_widths
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.isa.kernel import Kernel
from repro.isa.opcodes import Opcode
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import ClassifiedEvent
from repro.simt.trace import WarpTrace


def annotate_sites(
    kernel: Kernel, warp: WarpTrace
) -> Iterator[tuple[int, tuple[int, int] | None]]:
    """Yield ``(event_index, (block_id, inst_index) | None)`` per event.

    Recovers each dynamic event's *static site* — which the trace does
    not record — by replaying the warp's event stream against the CFG:
    events of one block body arrive in program order, so a counter per
    current block suffices.  The counter resets when the block id
    changes, after a ``BRA`` event (a terminator: the next event starts
    a new body, possibly of the *same* block for a self-loop), and on
    overflow (the same block re-entered back-to-back by both arms of a
    degenerate branch).  ``BRA`` terminators have no body index and map
    to ``None``.
    """
    current_block: int | None = None
    index = 0
    for event_index, event in enumerate(warp.events):
        if event.opcode is Opcode.BRA:
            yield event_index, None
            current_block = None
            continue
        body = kernel.blocks[event.block_id].instructions
        if event.block_id != current_block or index >= len(body):
            current_block = event.block_id
            index = 0
        inst = body[index]
        if inst.opcode is not event.opcode:
            raise ValueError(
                f"trace desynchronized from kernel {kernel.name!r}: event "
                f"{event_index} is {event.opcode.name} but static site "
                f"b{event.block_id}:i{index} is {inst.opcode.name}"
            )
        yield event_index, (event.block_id, index)
        index += 1


@dataclass
class StaticDynRow:
    """Per-benchmark join of static predictions and dynamic outcomes."""

    abbr: str
    #: Static-site counts from the uniformity analysis.
    static_provable: int
    static_possible: int
    static_divergent: int
    #: Dynamic event counts.
    total_events: int
    predicted_events: int  # events at PROVABLY_SCALAR sites
    true_positive_events: int  # ...that the tracker found scalar
    dynamic_full_scalar_events: int  # tracker's ALU/SFU/MEM buckets
    recalled_events: int  # ...that sit at PROVABLY_SCALAR sites
    soundness_violations: int  # predicted events under a narrowed mask

    @property
    def precision(self) -> float:
        if self.predicted_events == 0:
            return 1.0
        return self.true_positive_events / self.predicted_events

    @property
    def recall(self) -> float:
        if self.dynamic_full_scalar_events == 0:
            return 1.0
        return self.recalled_events / self.dynamic_full_scalar_events

    @property
    def coverage(self) -> float:
        if self.total_events == 0:
            return 0.0
        return self.predicted_events / self.total_events


@dataclass
class StaticDynData:
    rows: list[StaticDynRow]

    def _average(self, getter) -> float:
        if not self.rows:
            return 0.0
        return sum(getter(r) for r in self.rows) / len(self.rows)

    @property
    def average_precision(self) -> float:
        return self._average(lambda r: r.precision)

    @property
    def average_recall(self) -> float:
        return self._average(lambda r: r.recall)

    @property
    def average_coverage(self) -> float:
        return self._average(lambda r: r.coverage)

    @property
    def total_soundness_violations(self) -> int:
        return sum(r.soundness_violations for r in self.rows)


def score_benchmark(
    abbr: str,
    kernel: Kernel,
    warps: list[WarpTrace],
    classified: list[list[ClassifiedEvent]],
) -> StaticDynRow:
    """Join one benchmark's static predictions against its trace."""
    result = analyze_uniformity(kernel)
    counts = result.counts()

    total = predicted = true_positive = 0
    dynamic_full = recalled = violations = 0
    for warp, events in zip(warps, classified):
        if not warp.events:
            continue
        entry_mask = warp.events[0].active_mask
        for event_index, site in annotate_sites(kernel, warp):
            ce = events[event_index]
            total += 1
            is_full = ce.scalar_class.is_full_scalar
            if is_full:
                dynamic_full += 1
            if site is None:
                continue  # BRA terminators are not classified statically
            if result.class_of(*site) is not StaticScalarClass.PROVABLY_SCALAR:
                continue
            predicted += 1
            if ce.event.active_mask != entry_mask:
                violations += 1
            if is_full:
                recalled += 1
                true_positive += 1
            elif (
                ce.scalar_class is ScalarClass.DIVERGENT_SCALAR
                and ce.event.active_mask == entry_mask
            ):
                true_positive += 1  # partial-launch tail warp, still scalar
    return StaticDynRow(
        abbr=abbr,
        static_provable=counts[StaticScalarClass.PROVABLY_SCALAR],
        static_possible=counts[StaticScalarClass.POSSIBLY_SCALAR],
        static_divergent=counts[StaticScalarClass.DIVERGENT],
        total_events=total,
        predicted_events=predicted,
        true_positive_events=true_positive,
        dynamic_full_scalar_events=dynamic_full,
        recalled_events=recalled,
        soundness_violations=violations,
    )


def compute(runner: ExperimentRunner) -> StaticDynData:
    """Score the static predictor against every benchmark's trace."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        rows.append(
            score_benchmark(
                abbr, run.built.kernel, run.trace.warps, run.classified
            )
        )
    return StaticDynData(rows=rows)


# ----------------------------------------------------------------------
# Width-claim validation (``repro staticdyn --widths``).
# ----------------------------------------------------------------------
@dataclass
class WidthDynRow:
    """Per-benchmark join of static width claims and dynamic encodings.

    Every dynamic write event is compared against its static site's
    *guaranteed* ``enc`` claim (``WidthResult.site_claims``).  An
    **over-claim** — the tracker observing fewer redundant prefix bytes
    than the analysis guaranteed — is a soundness bug; the gate demands
    zero.  Byte-level scores quantify the static/dynamic gap:

    * **precision** — of the prefix bytes the analysis claimed, the
      fraction the tracker confirmed (1.0 exactly when sound);
    * **recall** — of the prefix bytes the tracker observed, the
      fraction the analysis proved (the headroom dynamic detection
      keeps over the compile-time variant);
    * **coverage** — write events at sites with a non-zero claim, over
      all write events.
    """

    abbr: str
    narrow_registers: int
    registers: int
    write_events: int
    claimed_events: int  # write events whose site claims enc >= 1
    over_claims: int  # events where observed enc < claimed enc
    claimed_bytes: int  # sum of static claims over write events
    confirmed_bytes: int  # sum of min(claim, observed)
    observed_bytes: int  # sum of dynamic enc over write events

    @property
    def precision(self) -> float:
        if self.claimed_bytes == 0:
            return 1.0
        return self.confirmed_bytes / self.claimed_bytes

    @property
    def recall(self) -> float:
        if self.observed_bytes == 0:
            return 1.0
        return self.claimed_bytes / self.observed_bytes

    @property
    def coverage(self) -> float:
        if self.write_events == 0:
            return 0.0
        return self.claimed_events / self.write_events


@dataclass
class WidthDynData:
    rows: list[WidthDynRow]

    def _average(self, getter) -> float:
        if not self.rows:
            return 0.0
        return sum(getter(r) for r in self.rows) / len(self.rows)

    @property
    def average_precision(self) -> float:
        return self._average(lambda r: r.precision)

    @property
    def average_recall(self) -> float:
        return self._average(lambda r: r.recall)

    @property
    def average_coverage(self) -> float:
        return self._average(lambda r: r.coverage)

    @property
    def total_over_claims(self) -> int:
        return sum(r.over_claims for r in self.rows)


def score_widths_benchmark(
    abbr: str,
    kernel: Kernel,
    warps: list[WarpTrace],
    classified: list[list[ClassifiedEvent]],
    warp_size: int = 32,
) -> WidthDynRow:
    """Join one benchmark's width claims against its dynamic trace."""
    result = analyze_widths(kernel, warp_size=warp_size)
    counts = result.counts()

    write_events = claimed_events = over = 0
    claimed_bytes = confirmed_bytes = observed_bytes = 0
    for warp, events in zip(warps, classified):
        for event_index, site in annotate_sites(kernel, warp):
            if site is None:
                continue
            item = events[event_index]
            if item.dst_encoding is None:
                continue
            observed = item.dst_encoding.enc
            claim = result.claim_at(*site) or 0
            write_events += 1
            observed_bytes += observed
            claimed_bytes += claim
            confirmed_bytes += min(claim, observed)
            if claim >= 1:
                claimed_events += 1
            if observed < claim:
                over += 1
    return WidthDynRow(
        abbr=abbr,
        narrow_registers=counts["narrow_registers"],
        registers=counts["registers"],
        write_events=write_events,
        claimed_events=claimed_events,
        over_claims=over,
        claimed_bytes=claimed_bytes,
        confirmed_bytes=confirmed_bytes,
        observed_bytes=observed_bytes,
    )


def compute_widths(runner: ExperimentRunner) -> WidthDynData:
    """Validate the width analysis against every benchmark's trace."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        rows.append(
            score_widths_benchmark(
                abbr,
                run.built.kernel,
                run.trace.warps,
                run.classified,
                warp_size=run.trace.warp_size,
            )
        )
    return WidthDynData(rows=rows)


def render_widths(data: WidthDynData) -> str:
    """The width-claim validation as a text table."""
    table_rows = [
        (
            row.abbr,
            f"{row.narrow_registers}/{row.registers}",
            f"{100 * row.coverage:.1f}",
            f"{100 * row.precision:.1f}",
            f"{100 * row.recall:.1f}",
            str(row.over_claims),
        )
        for row in data.rows
    ]
    table_rows.append(
        (
            "AVG",
            "-",
            f"{100 * data.average_coverage:.1f}",
            f"{100 * data.average_precision:.1f}",
            f"{100 * data.average_recall:.1f}",
            str(data.total_over_claims),
        )
    )
    body = render_table(
        ["bench", "narrow regs", "coverage", "precision", "recall", "over-claims"],
        table_rows,
        title="Static width claims vs dynamic enc prefixes (% of write events)",
    )
    verdict = (
        "SOUND: every static width claim was dynamically observed"
        if data.total_over_claims == 0
        else f"UNSOUND: {data.total_over_claims} write event(s) narrower than claimed"
    )
    return (
        body
        + "\nrecall shortfall = headroom dynamic byte-prefix detection keeps"
        + "\nover compile-time proven widths (analysis.static_.widths)"
        + f"\n{verdict}"
    )


def render(data: StaticDynData) -> str:
    """The comparison as a text table."""
    table_rows = [
        (
            row.abbr,
            f"{row.static_provable}/{row.static_possible}/{row.static_divergent}",
            f"{100 * row.coverage:.1f}",
            f"{100 * row.precision:.1f}",
            f"{100 * row.recall:.1f}",
            str(row.soundness_violations),
        )
        for row in data.rows
    ]
    table_rows.append(
        (
            "AVG",
            "-",
            f"{100 * data.average_coverage:.1f}",
            f"{100 * data.average_precision:.1f}",
            f"{100 * data.average_recall:.1f}",
            str(data.total_soundness_violations),
        )
    )
    body = render_table(
        ["bench", "static p/m/d", "coverage", "precision", "recall", "unsound"],
        table_rows,
        title="Static vs dynamic scalarization (% of dynamic instructions)",
    )
    return (
        body
        + "\nstatic p/m/d = provably/possibly-scalar/divergent static sites"
        + "\nrecall shortfall = dynamic G-Scalar's headroom over a"
        + "\ncompile-time scalarizer [Lee et al., CGO 2013] (paper, section 6)"
    )
