"""Shared fixtures: small kernels, traces and classified streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage, run_kernel


@pytest.fixture
def saxpy_kernel():
    """y[tid] = 2*x[tid] + y[tid] with integer math (no divergence)."""
    b = KernelBuilder("saxpy")
    tid = b.tid()
    x = b.ld_global(b.imad(tid, 4, 0x1000))
    y = b.ld_global(b.imad(tid, 4, 0x2000))
    result = b.iadd(b.imul(x, 2), y)
    b.st_global(b.imad(tid, 4, 0x3000), result)
    return b.finish()


@pytest.fixture
def divergent_kernel():
    """Even lanes add 10, odd lanes add 20 (one divergent branch)."""
    b = KernelBuilder("divergent")
    tid = b.tid()
    value = b.mov(0)
    is_even = b.seteq(b.and_(tid, 1), 0)
    with b.if_(is_even) as branch:
        value = b.iadd(value, 10, dst=value)
        with branch.else_():
            value = b.iadd(value, 20, dst=value)
    b.st_global(b.imad(tid, 4, 0x3000), value)
    return b.finish()


@pytest.fixture
def loop_kernel():
    """acc = sum of tid over 5 iterations (uniform loop)."""
    b = KernelBuilder("loop")
    tid = b.tid()
    acc = b.mov(0)
    with b.for_range(0, 5):
        acc = b.iadd(acc, tid, dst=acc)
    b.st_global(b.imad(tid, 4, 0x3000), acc)
    return b.finish()


@pytest.fixture
def scalar_heavy_kernel():
    """Chains on broadcast constants: most instructions are scalar."""
    b = KernelBuilder("scalar_heavy")
    tid = b.tid()
    c = b.mov(100)
    d = b.iadd(c, 5)
    e = b.imul(d, 3)
    f = b.sin(b.i2f(e))
    g = b.fadd(f, b.fimm(1.0))
    b.st_global(b.imad(tid, 4, 0x3000), g)
    return b.finish()


def run_one_warp(kernel, memory=None, warp_size=32, cta=None):
    """Helper: execute a kernel on a single warp (or ``cta`` threads)."""
    memory = memory or MemoryImage()
    launch = LaunchConfig(grid_dim=1, cta_dim=cta or warp_size)
    return run_kernel(kernel, launch, memory, warp_size=warp_size)


@pytest.fixture
def simple_memory():
    """Memory with x[i] = i at 0x1000 and y[i] = 100 + i at 0x2000."""
    memory = MemoryImage()
    memory.bind_array(0x1000, np.arange(64, dtype=np.uint32))
    memory.bind_array(0x2000, (100 + np.arange(64)).astype(np.uint32))
    return memory
