"""Unit tests for the per-warp scoreboard."""

import pytest

from repro.errors import TimingError
from repro.timing.scoreboard import Scoreboard


class TestScoreboard:
    def test_raw_hazard_blocks(self):
        sb = Scoreboard()
        sb.reserve(5)
        assert not sb.can_issue((5,), 7)

    def test_waw_hazard_blocks(self):
        sb = Scoreboard()
        sb.reserve(5)
        assert not sb.can_issue((), 5)

    def test_independent_op_issues(self):
        sb = Scoreboard()
        sb.reserve(5)
        assert sb.can_issue((1, 2), 3)

    def test_release_clears(self):
        sb = Scoreboard()
        sb.reserve(5)
        sb.release(5)
        assert sb.can_issue((5,), 5)
        assert sb.pending_count == 0

    def test_store_has_no_destination(self):
        sb = Scoreboard()
        sb.reserve(None)
        assert sb.pending_count == 0
        sb.release(None)  # no-op

    def test_double_release_rejected(self):
        sb = Scoreboard()
        sb.reserve(3)
        sb.release(3)
        with pytest.raises(TimingError):
            sb.release(3)
