"""Fuzz the builder + executor with random structured programs.

Hypothesis generates arbitrary nestings of straight-line code,
conditionals and bounded loops; every generated kernel must validate,
agree with networkx on post-dominators, and execute to completion with
a consistent trace.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import KernelBuilder, immediate_postdominators, validate_kernel
from repro.isa.kernel import EXIT_NODE
from repro.simt import LaunchConfig, MemoryImage, run_kernel


@st.composite
def structured_programs(draw):
    """A program description: a tree of statements."""

    def statements(depth):
        options = ["op", "op"]
        if depth < 3:
            options += ["if", "ifelse", "loop"]
        count = draw(st.integers(min_value=1, max_value=4))
        body = []
        for _ in range(count):
            kind = draw(st.sampled_from(options))
            if kind in ("if", "ifelse"):
                body.append((kind, statements(depth + 1)))
            elif kind == "loop":
                trips = draw(st.integers(min_value=0, max_value=3))
                body.append((kind, trips, statements(depth + 1)))
            else:
                body.append(("op",))
        return body

    return statements(0)


def build_program(description):
    b = KernelBuilder("fuzz")
    tid = b.tid()
    acc = b.mov(0)

    def emit(statements):
        nonlocal acc
        for statement in statements:
            if statement[0] == "op":
                acc = b.iadd(acc, 1, dst=acc)
            elif statement[0] == "if":
                cond = b.setlt(b.and_(tid, 3), 2)
                with b.if_(cond):
                    emit(statement[1])
            elif statement[0] == "ifelse":
                cond = b.seteq(b.and_(tid, 1), 0)
                with b.if_(cond) as branch:
                    emit(statement[1])
                    with branch.else_():
                        acc = b.iadd(acc, 100, dst=acc)
            elif statement[0] == "loop":
                _, trips, body = statement
                with b.for_range(0, trips):
                    emit(body)

    emit(description)
    b.st_global(b.imad(tid, 4, 0x1000), acc)
    return b.finish()


def networkx_ipdom(kernel):
    graph = nx.DiGraph()
    graph.add_node(EXIT_NODE)
    for block in kernel.blocks:
        for successor in block.successors():
            graph.add_edge(successor, block.block_id)
    idom = nx.immediate_dominators(graph, EXIT_NODE)
    return {block.block_id: idom[block.block_id] for block in kernel.blocks}


@settings(max_examples=60, deadline=None)
@given(description=structured_programs())
def test_random_programs_validate(description):
    kernel = build_program(description)
    report = validate_kernel(kernel, max_registers=256)
    assert report.num_instructions >= 3


@settings(max_examples=60, deadline=None)
@given(description=structured_programs())
def test_random_programs_lint_clean(description):
    # Builder-generated programs define every register before use and
    # keep the CFG structured, so the full lint pipeline must find no
    # errors and no structural warnings — and the uniformity analysis
    # must classify every static instruction exactly once.
    from repro.analysis.static_ import (
        Severity,
        StaticScalarClass,
        analyze_uniformity,
        lint_kernel,
    )

    kernel = build_program(description)
    report = lint_kernel(kernel, max_registers=256)
    # GS-W104 (register provably narrow) is an *opportunity* finding,
    # not a defect: random programs trip it whenever a value happens to
    # stay provably small, so it is excluded from the cleanliness bar.
    findings = [
        d for d in report.at_least(Severity.WARNING) if d.rule != "GS-W104"
    ]
    assert findings == []
    result = analyze_uniformity(kernel)
    assert len(result.classes) == kernel.static_instruction_count()
    assert all(isinstance(v, StaticScalarClass) for v in result.classes.values())


@settings(max_examples=60, deadline=None)
@given(description=structured_programs())
def test_postdominators_match_networkx(description):
    kernel = build_program(description)
    assert immediate_postdominators(kernel) == networkx_ipdom(kernel)


@settings(max_examples=40, deadline=None)
@given(description=structured_programs())
def test_random_programs_execute_and_reconverge(description):
    kernel = build_program(description)
    memory = MemoryImage()
    trace = run_kernel(
        kernel, LaunchConfig(1, 32), memory, max_warp_instructions=100_000
    )
    assert trace.total_instructions > 0
    # The final store happens after all reconvergence: full mask.
    final_store = trace.warps[0].events[-1]
    assert final_store.active_mask == 0xFFFFFFFF
    # Every event's mask is a submask of full.
    for event in trace.warps[0]:
        assert event.active_mask <= 0xFFFFFFFF


@settings(max_examples=30, deadline=None)
@given(description=structured_programs())
def test_execution_is_deterministic(description):
    kernel = build_program(description)

    def run_once():
        memory = MemoryImage()
        run_kernel(kernel, LaunchConfig(1, 32), memory)
        return memory.read_array(0x1000, 32).tolist()

    assert run_once() == run_once()
