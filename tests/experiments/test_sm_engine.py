"""Tests for the runner's SM timing engine switch."""

import pytest

from repro.config import ArchitectureConfig
from repro.experiments.parallel import MatrixTask
from repro.experiments.runner import ExperimentRunner

ARCHES = (
    ArchitectureConfig.baseline(),
    ArchitectureConfig.alu_scalar(),
    ArchitectureConfig.gscalar(),
)


@pytest.fixture(scope="module")
def event_runner():
    return ExperimentRunner(scale="tiny")


@pytest.fixture(scope="module")
def cycle_runner():
    return ExperimentRunner(scale="tiny", sm_engine="cycle")


class TestEngineParity:
    @pytest.mark.parametrize("abbr", ("BP", "HS"))
    def test_timing_results_identical(self, event_runner, cycle_runner, abbr):
        for arch in ARCHES:
            assert event_runner.timing(abbr, arch) == cycle_runner.timing(
                abbr, arch
            )

    def test_power_reports_identical(self, event_runner, cycle_runner):
        for arch in ARCHES:
            assert event_runner.power("BP", arch) == cycle_runner.power(
                "BP", arch
            )


class TestEngineSelection:
    def test_default_engine_is_event(self, event_runner):
        assert event_runner.sm_engine == "event"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", sm_engine="turbo")

    def test_matrix_task_defaults_to_event(self):
        task = MatrixTask(
            abbr="BP",
            scale="tiny",
            cache_dir="/nonexistent",
            warp_sizes=(32,),
            arches=ARCHES,
            config=None,
            params=None,
        )
        assert task.sm_engine == "event"

    def test_cli_accepts_sm_engine_flag(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["fig1", "--scale", "tiny", "--sm-engine", "cycle"]) == 0


class TestEngineKeyedSidecars:
    def test_engines_never_share_result_sidecars(self, tmp_path):
        arch = ArchitectureConfig.gscalar()
        event = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        event.power("HS", arch)

        cycle_cold = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, sm_engine="cycle"
        )
        cycle_cold.power("HS", arch)
        assert cycle_cold.stats.counters.get("result_cache_hits", 0) == 0

        cycle_warm = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, sm_engine="cycle"
        )
        cycle_warm.power("HS", arch)
        assert cycle_warm.stats.counters.get("result_cache_hits", 0) == 1
