"""Regenerate Figure 8: RF access distribution for operand values.

Paper averages: scalar 36%, 3-byte 17%, 2-byte 4%, 1-byte 7%.
"""

from repro.experiments import fig8

from conftest import run_once


def bench_fig8(benchmark, shared_runner):
    data = run_once(benchmark, fig8.compute, shared_runner)
    print()
    print(fig8.render(data))

    averages = data.average_fractions()
    # Scalar is the dominant similarity class, near the paper's 36%.
    assert 0.25 < averages["scalar"] < 0.50
    # 3-byte is the second-largest non-divergent class.
    assert averages["3-byte"] > averages["2-byte"]
    assert 0.10 < averages["3-byte"] < 0.30
    # Exploitable similarity (scalar + n-byte) covers most accesses.
    exploitable = (
        averages["scalar"]
        + averages["3-byte"]
        + averages["2-byte"]
        + averages["1-byte"]
    )
    assert exploitable > 0.5

    by_abbr = {row.abbr: row.distribution.fractions() for row in data.rows}
    # §5.3: MG and MV have few scalars but many 3/2-byte accesses.
    for abbr in ("MG", "MV"):
        partial = by_abbr[abbr]["3-byte"] + by_abbr[abbr]["2-byte"]
        assert partial > 0.25, abbr
