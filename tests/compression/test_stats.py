"""Unit tests for compression-ratio accounting."""

import numpy as np

from repro.compression.stats import CompressionComparison, compare_trace
from repro.isa import KernelBuilder
from repro.simt import MemoryImage

from tests.conftest import run_one_warp


class TestCompressionComparison:
    def test_scalar_values_compress_best(self):
        comparison = CompressionComparison(warp_size=32)
        comparison.observe(np.full(32, 5, dtype=np.uint32))
        assert comparison.ours_ratio > 20
        assert comparison.enc_histogram[4] == 1

    def test_random_values_do_not_compress(self):
        comparison = CompressionComparison(warp_size=32)
        rng = np.random.default_rng(0)
        comparison.observe(
            rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(np.uint32)
        )
        assert comparison.ours_ratio < 1.05

    def test_fractions_sum_to_one(self):
        comparison = CompressionComparison(warp_size=32)
        comparison.observe(np.full(32, 5, dtype=np.uint32))
        comparison.observe(np.arange(32, dtype=np.uint32))
        fractions = comparison.enc_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_empty_comparison_has_unit_ratios(self):
        comparison = CompressionComparison(warp_size=32)
        assert comparison.ours_ratio == 1.0
        assert comparison.bdi_ratio == 1.0


class TestCompareTrace:
    def test_divergent_writes_skipped(self):
        b = KernelBuilder("skip_divergent")
        tid = b.tid()
        value = b.mov(3)  # convergent scalar write (observed)
        odd = b.and_(tid, 1)
        cond = b.setne(odd, 0)
        with b.if_(cond):
            value = b.mov(9, dst=value)  # divergent write (skipped)
        b.st_global(b.imad(tid, 4, 0x100), value)
        trace = run_one_warp(b.finish(), MemoryImage())
        comparison = compare_trace(trace)
        total_writes = sum(
            1 for e in trace.all_events() if e.dst_values is not None
        )
        assert comparison.registers_seen < total_writes
        assert comparison.registers_seen > 0

    def test_ratios_track_value_structure(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        comparison = compare_trace(trace)
        # A scalar-chain kernel compresses extremely well under both.
        assert comparison.ours_ratio > 5
        assert comparison.bdi_ratio > 5
