"""Table 2 — the benchmark list."""

from __future__ import annotations

from repro.experiments.tables import render_table
from repro.workloads.registry import all_workloads


def compute() -> list[tuple[str, str, str]]:
    """(suite, benchmark, abbreviation) rows."""
    return [(spec.suite, spec.name, spec.abbr) for spec in all_workloads()]


def render() -> str:
    """Table 2 as text."""
    return render_table(
        ["suite", "benchmark", "abbr"],
        compute(),
        title="Table 2: benchmarks",
    )
