"""Per-architecture interpretation of classified events.

The tracker (:mod:`repro.scalar.tracker`) computes what the hardware
*could* know; an :class:`ArchitectureView` decides what a concrete
architecture *does* with it: which instructions execute as scalar, how
many execution lanes burn energy, what shape every register-file access
takes, and which extra decompress/spill instructions get inserted.

One view instance handles one warp (the ALU-scalar view keeps scalar-RF
residency state); use :func:`process_trace` for whole-trace processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ArchitectureConfig, ScalarMode
from repro.errors import ConfigError
from repro.regfile.access import AccessKind, RegisterAccess
from repro.regfile.scalar_rf import ScalarRegisterFile
from repro.scalar.batch import classify_trace_with
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import ClassifiedEvent
from repro.simt.trace import KernelTrace


@dataclass(frozen=True)
class ProcessedEvent:
    """One dynamic instruction as a specific architecture executes it."""

    classified: ClassifiedEvent
    scalar_executed: bool
    lo_half_scalar: bool
    hi_half_scalar: bool
    exec_lanes: int
    rf_accesses: tuple[RegisterAccess, ...]
    extra_instructions: int
    compressor_ops: int
    decompressor_ops: int

    @property
    def scalar_class(self) -> ScalarClass:
        return self.classified.scalar_class


def _arch_accepts(arch: ArchitectureConfig, scalar_class: ScalarClass) -> bool:
    """Does this architecture scalarize instructions of this class?"""
    if scalar_class is ScalarClass.ALU_SCALAR:
        return arch.scalar_mode is not ScalarMode.NONE
    if scalar_class in (ScalarClass.SFU_SCALAR, ScalarClass.MEM_SCALAR):
        return arch.scalar_mode is ScalarMode.ALL_PIPELINES
    if scalar_class is ScalarClass.HALF_SCALAR:
        return arch.half_warp_scalar
    if scalar_class is ScalarClass.DIVERGENT_SCALAR:
        return arch.divergent_scalar
    return False


class ArchitectureView:
    """Stateful per-warp processor for one architecture.

    ``move_elision`` optionally enables the §3.3 compiler-assisted
    technique: a :class:`repro.scalar.compiler.MoveElisionAnalysis`
    whose verdicts suppress decompress-moves whose preserved values are
    provably dead.
    """

    def __init__(
        self,
        arch: ArchitectureConfig,
        warp_size: int,
        move_elision=None,
        static_widths=None,
    ):
        self.arch = arch
        self.warp_size = warp_size
        self.half_lanes = warp_size // 2
        self.move_elision = move_elision
        if arch.static_compression and static_widths is None:
            raise ConfigError(
                f"{arch.name}: static compression needs the kernel's "
                "per-register guaranteed widths (analyze_widths(...)."
                "register_enc)"
            )
        self.static_widths = static_widths
        self._scalar_rf: ScalarRegisterFile | None = (
            ScalarRegisterFile() if arch.dedicated_scalar_rf else None
        )

    # ------------------------------------------------------------------
    def process(self, item: ClassifiedEvent) -> ProcessedEvent:
        if self.arch.static_compression:
            return self._process_static_compressed(item)
        if self.arch.register_compression:
            return self._process_compressed(item)
        return self._process_uncompressed(item)

    # ------------------------------------------------------------------
    # Static compression: compile-time proven widths, no detector.
    # ------------------------------------------------------------------
    def _process_static_compressed(self, item: ClassifiedEvent) -> ProcessedEvent:
        """Compressed RF driven purely by the static width analysis.

        A register the analysis proves to keep ``enc`` zero prefix bytes
        on *every* path is stored compressed: reads activate only the
        live arrays and expand through the decompressor; full writes
        store the proven-narrow bytes.  There is no compressor energy
        anywhere — the width is a compile-time fact, nothing is detected
        at runtime — and no sidecar, because the encoding lives in the
        program text rather than in per-register metadata.  Divergent
        partial writes are billed at the baseline masked-array cost (a
        conservative over-estimate for compressed registers).
        """
        widths = self.static_widths
        assert widths is not None
        accesses: list[RegisterAccess] = []
        decompressor_ops = 0
        for source in item.sources:
            enc = widths[source.register]
            if enc > 0:
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.COMPRESSED_READ,
                        register=source.register,
                        enc=enc,
                    )
                )
                decompressor_ops += 1
            else:
                accesses.append(
                    RegisterAccess(kind=AccessKind.FULL_READ, register=source.register)
                )

        if item.dst_encoding is not None:
            event = item.event
            dst = event.dst
            assert dst is not None
            if item.divergent:
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.PARTIAL_WRITE,
                        register=dst,
                        active_mask=event.active_mask,
                    )
                )
            else:
                enc = widths[dst]
                if enc > 0:
                    accesses.append(
                        RegisterAccess(
                            kind=AccessKind.COMPRESSED_WRITE, register=dst, enc=enc
                        )
                    )
                else:
                    accesses.append(
                        RegisterAccess(kind=AccessKind.FULL_WRITE, register=dst)
                    )

        exec_lanes = self._exec_lanes(item, False, False, False)
        return ProcessedEvent(
            classified=item,
            scalar_executed=False,
            lo_half_scalar=False,
            hi_half_scalar=False,
            exec_lanes=exec_lanes,
            rf_accesses=tuple(accesses),
            extra_instructions=0,
            compressor_ops=0,
            decompressor_ops=decompressor_ops,
        )

    # ------------------------------------------------------------------
    # G-Scalar variants: compression-backed register file.
    # ------------------------------------------------------------------
    def _process_compressed(self, item: ClassifiedEvent) -> ProcessedEvent:
        accepts = _arch_accepts(self.arch, item.scalar_class)
        scalar_executed = accepts and item.scalar_class is not ScalarClass.HALF_SCALAR
        lo_half = accepts and item.lo_half_scalar_exec
        hi_half = accepts and item.hi_half_scalar_exec

        accesses: list[RegisterAccess] = []
        decompressor_ops = 0
        for source in item.sources:
            encoding = source.encoding
            if encoding.divergent:
                # D=1 registers are stored uncompressed; even a divergent-
                # scalar read brings all lanes from the arrays (§4.2).
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.FULL_READ,
                        register=source.register,
                        sidecar=True,
                    )
                )
            elif source.scalar_for_read:
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.SCALAR_READ,
                        register=source.register,
                        enc=encoding.enc,
                        sidecar=True,
                    )
                )
            else:
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.COMPRESSED_READ,
                        register=source.register,
                        enc=encoding.enc,
                        enc_lo=encoding.enc_lo,
                        enc_hi=encoding.enc_hi,
                        half_compressed=self.arch.half_register_compression,
                        sidecar=True,
                    )
                )
                if encoding.enc > 0 or (
                    self.arch.half_register_compression
                    and (encoding.enc_lo > 0 or encoding.enc_hi > 0)
                ):
                    decompressor_ops += 1

        extra_instructions = 0
        compressor_ops = 0
        if item.dst_encoding is not None:
            event = item.event
            needs_move = item.needs_decompress_move
            if (
                needs_move
                and self.move_elision is not None
                and event.dst is not None
                and self.move_elision.move_elidable(event.block_id, event.dst)
            ):
                needs_move = False
            if needs_move:
                # §3.3 hardware-assisted technique: a decompress-move
                # reads the compressed register and stores it back
                # uncompressed before the divergent partial write.
                before = item.dst_encoding_before
                assert before is not None
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.COMPRESSED_READ,
                        register=event.dst,
                        enc=before.enc,
                        enc_lo=before.enc_lo,
                        enc_hi=before.enc_hi,
                        half_compressed=self.arch.half_register_compression,
                        sidecar=True,
                    )
                )
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.FULL_WRITE, register=event.dst, sidecar=True
                    )
                )
                extra_instructions += 1
                decompressor_ops += 1
            if item.divergent:
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.PARTIAL_WRITE,
                        register=event.dst,
                        active_mask=event.active_mask,
                        sidecar=True,
                    )
                )
                compressor_ops += 1  # enc bits are still generated (§4.2)
            elif item.dst_encoding.is_scalar:
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.SCALAR_WRITE,
                        register=event.dst,
                        enc=4,
                        sidecar=True,
                    )
                )
                if not scalar_executed:
                    compressor_ops += 1
            else:
                encoding = item.dst_encoding
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.COMPRESSED_WRITE,
                        register=event.dst,
                        enc=encoding.enc,
                        enc_lo=encoding.enc_lo,
                        enc_hi=encoding.enc_hi,
                        half_compressed=self.arch.half_register_compression,
                        sidecar=True,
                    )
                )
                compressor_ops += 1

        exec_lanes = self._exec_lanes(item, scalar_executed, lo_half, hi_half)
        return ProcessedEvent(
            classified=item,
            scalar_executed=scalar_executed,
            lo_half_scalar=lo_half,
            hi_half_scalar=hi_half,
            exec_lanes=exec_lanes,
            rf_accesses=tuple(accesses),
            extra_instructions=extra_instructions,
            compressor_ops=compressor_ops,
            decompressor_ops=decompressor_ops,
        )

    # ------------------------------------------------------------------
    # Baseline and ALU-scalar: conventional register file.
    # ------------------------------------------------------------------
    def _process_uncompressed(self, item: ClassifiedEvent) -> ProcessedEvent:
        scalar_rf = self._scalar_rf
        accepts = _arch_accepts(self.arch, item.scalar_class)
        scalar_executed = accepts and item.scalar_class is ScalarClass.ALU_SCALAR

        accesses: list[RegisterAccess] = []
        if scalar_rf is not None and scalar_executed:
            # Scalar execution requires every register operand to be
            # resident in the dedicated scalar RF.
            scalar_executed = all(
                scalar_rf.is_resident(s.register) for s in item.sources
            )

        for source in item.sources:
            if scalar_rf is not None and scalar_rf.read(source.register):
                accesses.append(
                    RegisterAccess(
                        kind=AccessKind.SCALAR_RF_READ, register=source.register
                    )
                )
            else:
                accesses.append(
                    RegisterAccess(kind=AccessKind.FULL_READ, register=source.register)
                )

        extra_instructions = 0
        compressor_ops = 0
        if item.dst_encoding is not None:
            event = item.event
            dst = event.dst
            assert dst is not None
            if scalar_rf is not None:
                # The prior architecture detects scalar values with a
                # write-back comparison tree of its own [3]; §3.2 notes
                # ours is "almost the same" logic, so the same per-write
                # energy applies.
                compressor_ops += 1
            writes_scalar_rf = (
                scalar_rf is not None
                and not item.divergent
                and item.dst_encoding.is_scalar
            )
            if writes_scalar_rf:
                assert scalar_rf is not None
                scalar_rf.write_scalar(dst)
                accesses.append(
                    RegisterAccess(kind=AccessKind.SCALAR_RF_WRITE, register=dst)
                )
            else:
                if scalar_rf is not None and scalar_rf.is_resident(dst):
                    # The register leaves the scalar RF; a divergent
                    # partial write must first spill the scalar value to
                    # the vector RF so inactive lanes keep their data.
                    scalar_rf.invalidate(dst)
                    if item.divergent:
                        accesses.append(
                            RegisterAccess(kind=AccessKind.SCALAR_RF_READ, register=dst)
                        )
                        accesses.append(
                            RegisterAccess(kind=AccessKind.FULL_WRITE, register=dst)
                        )
                        extra_instructions += 1
                if item.divergent:
                    accesses.append(
                        RegisterAccess(
                            kind=AccessKind.PARTIAL_WRITE,
                            register=dst,
                            active_mask=event.active_mask,
                        )
                    )
                else:
                    accesses.append(
                        RegisterAccess(kind=AccessKind.FULL_WRITE, register=dst)
                    )

        exec_lanes = self._exec_lanes(item, scalar_executed, False, False)
        return ProcessedEvent(
            classified=item,
            scalar_executed=scalar_executed,
            lo_half_scalar=False,
            hi_half_scalar=False,
            exec_lanes=exec_lanes,
            rf_accesses=tuple(accesses),
            extra_instructions=extra_instructions,
            compressor_ops=compressor_ops,
            decompressor_ops=0,
        )

    # ------------------------------------------------------------------
    def _exec_lanes(
        self,
        item: ClassifiedEvent,
        scalar_executed: bool,
        lo_half: bool,
        hi_half: bool,
    ) -> int:
        """Lanes consuming execution energy (inactive lanes clock-gate)."""
        if item.category.value == "ctrl":
            return 0
        if scalar_executed:
            return 1
        active = item.event.active_lane_count()
        if lo_half or hi_half:
            lanes = 0
            lanes += 1 if lo_half else self.half_lanes
            lanes += 1 if hi_half else self.half_lanes
            return lanes
        return active


def process_trace(
    trace: KernelTrace,
    arch: ArchitectureConfig,
    num_registers: int,
    classifier: str = "batch",
    static_widths=None,
) -> list[list[ProcessedEvent]]:
    """Classify and process a whole kernel trace for one architecture.

    ``classifier`` selects the classification engine: ``"batch"`` (the
    default, vectorized) or ``"event"`` (the original per-event
    tracker) — both produce identical streams.
    """
    classified = classify_trace_with(trace, num_registers, classifier)
    processed: list[list[ProcessedEvent]] = []
    for warp_events in classified:
        view = ArchitectureView(arch, trace.warp_size, static_widths=static_widths)
        processed.append([view.process(item) for item in warp_events])
    return processed


def process_classified(
    classified: list[list[ClassifiedEvent]],
    arch: ArchitectureConfig,
    warp_size: int,
    move_elision=None,
    static_widths=None,
) -> list[list[ProcessedEvent]]:
    """Process pre-classified warps (lets callers classify once and
    evaluate many architectures).  ``move_elision`` optionally applies
    the §3.3 compiler-assisted decompress-move elision; ``static_widths``
    feeds the static-compression architecture its per-register proven
    ``enc`` table (required when ``arch.static_compression``)."""
    if warp_size < 1:
        raise ConfigError(f"warp_size must be >= 1, got {warp_size}")
    processed: list[list[ProcessedEvent]] = []
    for warp_events in classified:
        view = ArchitectureView(
            arch, warp_size, move_elision=move_elision, static_widths=static_widths
        )
        processed.append([view.process(item) for item in warp_events])
    return processed


@dataclass
class ProcessedStatistics:
    """Aggregate counters over processed events."""

    total_instructions: int = 0
    scalar_executed: int = 0
    half_scalar_executed: int = 0
    extra_instructions: int = 0
    compressor_ops: int = 0
    decompressor_ops: int = 0
    exec_lane_sum: int = 0
    class_counts: dict[ScalarClass, int] = field(
        default_factory=lambda: {c: 0 for c in ScalarClass}
    )

    @property
    def scalar_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.scalar_executed / self.total_instructions


def processed_statistics(processed: list[list[ProcessedEvent]]) -> ProcessedStatistics:
    """Roll up per-event results into one summary."""
    stats = ProcessedStatistics()
    for warp_events in processed:
        for item in warp_events:
            stats.total_instructions += 1
            stats.class_counts[item.scalar_class] += 1
            if item.scalar_executed:
                stats.scalar_executed += 1
            if item.lo_half_scalar or item.hi_half_scalar:
                stats.half_scalar_executed += 1
            stats.extra_instructions += item.extra_instructions
            stats.compressor_ops += item.compressor_ops
            stats.decompressor_ops += item.decompressor_ops
            stats.exec_lane_sum += item.exec_lanes
    return stats
