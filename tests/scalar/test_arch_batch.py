"""Differential tests: vectorized architecture interpretation vs events.

The batch engine (:mod:`repro.scalar.arch_batch`) must be *bit-identical*
to the per-event :class:`~repro.scalar.architectures.ArchitectureView` —
same per-event scalar/half/exec-lane columns, same RF-access stream,
same lowered timing ops and the same power report — on every workload
and every evaluated architecture.  These tests pin that contract at
each pipeline layer.
"""

import pytest

from repro.config import EVALUATED_ARCHITECTURES, ArchitectureConfig, GpuConfig
from repro.errors import ConfigError
from repro.power.accounting import PowerAccountant
from repro.scalar.arch_batch import process_columns
from repro.scalar.architectures import process_classified
from repro.scalar.batch import classify_columnar_batch
from repro.scalar.columns import (
    ClassifiedColumns,
    ProcessedColumns,
    processed_columns_diff,
)
from repro.scalar.compiler import MoveElisionAnalysis
from repro.scalar.tracker import classify_trace
from repro.simt import MemoryImage, run_kernel
from repro.timing.gpu import (
    lower_to_timing_ops,
    lower_to_timing_ops_columns,
    simulate_architecture,
)
from repro.analysis.static_.widths import analyze_widths
from repro.workloads.registry import all_workloads, build_workload

from tests.conftest import run_one_warp

ARCH_IDS = [arch.name for arch in EVALUATED_ARCHITECTURES]
WORKLOAD_ABBRS = [spec.abbr for spec in all_workloads()]

_CASE_CACHE: dict[str, tuple] = {}
_WIDTHS_CACHE: dict[str, tuple[int, ...]] = {}


def workload_case(abbr: str):
    """Trace + both classified forms for one small-scale workload."""
    if abbr not in _CASE_CACHE:
        built = build_workload(abbr, "small")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        columnar = trace.to_columnar()
        _, classified = classify_columnar_batch(
            columnar, built.kernel.num_registers
        )
        ccols = ClassifiedColumns.from_classified(
            classified, trace.warp_size, columnar=columnar
        )
        _CASE_CACHE[abbr] = (trace, classified, ccols)
    return _CASE_CACHE[abbr]


def static_widths_case(abbr: str) -> tuple[int, ...]:
    """Per-register static widths for one small-scale workload."""
    if abbr not in _WIDTHS_CACHE:
        built = build_workload(abbr, "small")
        trace, _, _ = workload_case(abbr)
        _WIDTHS_CACHE[abbr] = analyze_widths(
            built.kernel, warp_size=trace.warp_size
        ).register_enc
    return _WIDTHS_CACHE[abbr]


def assert_processed_identical(classified, ccols, arch, warp_size, **kwargs):
    expected = ProcessedColumns.from_events(
        process_classified(classified, arch, warp_size, **kwargs),
        warp_size,
    )
    actual = process_columns(ccols, arch, **kwargs)
    assert processed_columns_diff(expected, actual) == []
    return actual


class TestWorkloadMatrix:
    """Exact array equality on all 17 workloads x all 4 architectures."""

    @pytest.mark.parametrize("abbr", WORKLOAD_ABBRS)
    @pytest.mark.parametrize("arch", EVALUATED_ARCHITECTURES, ids=ARCH_IDS)
    def test_processed_columns_identical(self, abbr, arch):
        trace, classified, ccols = workload_case(abbr)
        assert_processed_identical(classified, ccols, arch, trace.warp_size)


class TestDownstreamParity:
    """Timing ops and power reports built from columns match the events."""

    BENCHES = ("BP", "SR2", "MQ", "HS")

    @pytest.mark.parametrize("abbr", BENCHES)
    @pytest.mark.parametrize("arch", EVALUATED_ARCHITECTURES, ids=ARCH_IDS)
    def test_timing_ops_and_power_identical(self, abbr, arch):
        trace, classified, ccols = workload_case(abbr)
        config = GpuConfig()
        processed = process_classified(classified, arch, trace.warp_size)
        pcols = process_columns(ccols, arch)
        assert lower_to_timing_ops_columns(
            ccols, pcols, arch, config
        ) == lower_to_timing_ops(processed, arch, config, trace.warp_size)
        timing = simulate_architecture(processed, arch, config, trace.warp_size)
        accountant = PowerAccountant(arch, config=config)
        assert accountant.account_columns(pcols, timing) == accountant.account(
            processed, timing
        )

    def test_scalar_fast_dispatch_ablation(self):
        trace, classified, ccols = workload_case("BP")
        arch = ArchitectureConfig.gscalar().replace(scalar_fast_dispatch=True)
        config = GpuConfig()
        processed = process_classified(classified, arch, trace.warp_size)
        pcols = process_columns(ccols, arch)
        assert lower_to_timing_ops_columns(
            ccols, pcols, arch, config
        ) == lower_to_timing_ops(processed, arch, config, trace.warp_size)


class TestMoveElision:
    def test_move_elision_matches_event_path(self):
        built = build_workload("BP", "small")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classified = classify_trace(trace, built.kernel.num_registers)
        ccols = ClassifiedColumns.from_classified(classified, trace.warp_size)
        elision = MoveElisionAnalysis(built.kernel)
        arch = ArchitectureConfig.gscalar()
        with_elision = assert_processed_identical(
            classified, ccols, arch, trace.warp_size, move_elision=elision
        )
        without = process_columns(ccols, arch)
        assert with_elision.extra_instructions.sum() <= without.extra_instructions.sum()


class TestScalarRfPath:
    """The stateful dedicated-scalar-RF walk stays bit-identical too."""

    def test_divergent_overwrite_stream(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage())
        classified = classify_trace(trace, divergent_kernel.num_registers)
        ccols = ClassifiedColumns.from_classified(classified, trace.warp_size)
        assert_processed_identical(
            classified, ccols, ArchitectureConfig.alu_scalar(), trace.warp_size
        )

    def test_capacity_pressure_stream(self):
        from repro.isa import KernelBuilder

        b = KernelBuilder("many_scalars")
        tid = b.tid()
        acc = b.mov(0)
        for i in range(40):
            acc = b.iadd(acc, i + 1, dst=acc)
        b.st_global(b.imad(tid, 4, 0x3000), acc)
        kernel = b.finish()
        trace = run_one_warp(kernel, MemoryImage())
        classified = classify_trace(trace, kernel.num_registers)
        ccols = ClassifiedColumns.from_classified(classified, trace.warp_size)
        assert_processed_identical(
            classified, ccols, ArchitectureConfig.alu_scalar(), trace.warp_size
        )


class TestValidation:
    def test_bad_warp_size_rejected(self):
        trace, classified, _ = workload_case("BP")
        ccols = ClassifiedColumns.from_classified(classified, trace.warp_size)
        ccols.warp_size = 0
        with pytest.raises(ConfigError):
            process_columns(ccols, ArchitectureConfig.baseline())


class TestStaticCompress:
    """The fifth architecture: compile-time widths, no runtime detection."""

    ARCH = ArchitectureConfig.static_compress()

    @pytest.mark.parametrize("abbr", WORKLOAD_ABBRS)
    def test_processed_columns_identical(self, abbr):
        trace, classified, ccols = workload_case(abbr)
        widths = static_widths_case(abbr)
        pcols = assert_processed_identical(
            classified, ccols, self.ARCH, trace.warp_size, static_widths=widths
        )
        # Statically compressed: no detection or compression hardware
        # ever runs, no sidecar rows exist, nothing executes scalar.
        assert int(pcols.compressor_ops.sum()) == 0
        assert int(pcols.extra_instructions.sum()) == 0
        assert not pcols.scalar_executed.any()
        assert not pcols.acc_sidecar.any()

    def test_narrow_registers_actually_compress(self):
        trace, classified, ccols = workload_case("BP")
        widths = static_widths_case("BP")
        assert any(enc > 0 for enc in widths)
        pcols = process_columns(ccols, self.ARCH, static_widths=widths)
        assert int(pcols.decompressor_ops.sum()) > 0

    @pytest.mark.parametrize("abbr", ("BP", "HS"))
    def test_downstream_timing_and_power_identical(self, abbr):
        trace, classified, ccols = workload_case(abbr)
        widths = static_widths_case(abbr)
        config = GpuConfig()
        processed = process_classified(
            classified, self.ARCH, trace.warp_size, static_widths=widths
        )
        pcols = process_columns(ccols, self.ARCH, static_widths=widths)
        assert lower_to_timing_ops_columns(
            ccols, pcols, self.ARCH, config
        ) == lower_to_timing_ops(processed, self.ARCH, config, trace.warp_size)
        timing = simulate_architecture(
            processed, self.ARCH, config, trace.warp_size
        )
        accountant = PowerAccountant(self.ARCH, config=config)
        assert accountant.account_columns(pcols, timing) == accountant.account(
            processed, timing
        )

    def test_missing_widths_rejected_by_both_engines(self):
        trace, classified, ccols = workload_case("BP")
        with pytest.raises(ConfigError):
            process_columns(ccols, self.ARCH)
        with pytest.raises(ConfigError):
            process_classified(classified, self.ARCH, trace.warp_size)
