"""``sad`` (SAD) proxy.

Signature reproduced: ~19% of total instructions divergent-scalar
(§5.2).  The sum-of-absolute-differences search clamps its motion
vectors at the frame border; warps near the border diverge on the clamp
and the clamp path operates on the shared search-window constants.
Pixel data are 8-bit values in 32-bit registers, so most registers are
3-byte-similar (zero top bytes).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1515


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the SAD proxy at the given scale."""
    candidates = 2 * scale.inner_iterations
    b = KernelBuilder("sad")
    tid = b.tid()
    window = load_broadcast(b, PARAMS_BASE)  # scalar search constants
    penalty = load_broadcast(b, PARAMS_BASE + 4)
    current = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    flag = load_thread_flag(b, tid)
    near_border = b.setne(flag, 0)
    best = b.mov(0xFFFF)

    with b.for_range(0, candidates) as candidate:
        ref_addr = b.imad(
            b.iadd(tid, candidate), 4, INPUT_B
        )
        reference = b.ld_global(ref_addr)
        diff = b.isub(current, reference)
        abs_diff = b.imax(diff, b.isub(reference, current))
        with b.if_(near_border) as branch:
            # Border clamp: shared window chain (divergent scalar).
            clamped = b.imin(window, b.mov(64))
            biased = b.iadd(clamped, penalty)
            cost_bias = b.shl(biased, 1)
            folded = b.imax(cost_bias, penalty)
            best = b.imin(best, folded, dst=best)
            with branch.else_():
                best = b.imin(best, abs_diff, dst=best)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), best)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(INPUT_A, datagen.small_ints(total_threads, 256, _SEED))
    memory.bind_array(
        INPUT_B, datagen.small_ints(total_threads + candidates + 1, 256, _SEED + 1)
    )
    memory.bind_array(PARAMS_BASE, np.array([48, 5], dtype=np.uint32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.95, _SEED + 2),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="motion-search SAD with border-clamp divergence",
    )
