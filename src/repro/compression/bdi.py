"""Base-Delta-Immediate compression [Pekhimenko et al., PACT 2012].

This is the scheme Warped-Compression [Lee et al., ISCA 2015] applies to
GPU vector registers and against which the paper compares its byte-wise
technique (Figure 12 and the §5.3 compression-ratio discussion).

For a vector register of 4-byte lane values we implement the 4-byte-base
variants: repeated-value (all lanes equal), base4-delta1 and
base4-delta2, falling back to uncompressed.  The compressed layout is a
32-bit base plus one signed delta per lane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError


class BdiMode(enum.Enum):
    """Which BDI variant a register compressed to."""

    REPEATED = "repeated"  # all lanes identical: base only
    DELTA1 = "delta1"  # 1-byte signed deltas
    DELTA2 = "delta2"  # 2-byte signed deltas
    UNCOMPRESSED = "uncompressed"

    @property
    def delta_bytes(self) -> int:
        return {"repeated": 0, "delta1": 1, "delta2": 2, "uncompressed": 4}[self.value]


@dataclass(frozen=True)
class BdiCompressed:
    """One register in BDI form."""

    mode: BdiMode
    base: int
    warp_size: int
    deltas: np.ndarray  # int64 view of lane - base (empty for REPEATED)

    @property
    def total_bits(self) -> int:
        """Base + per-lane deltas + a 2-bit mode tag."""
        if self.mode is BdiMode.UNCOMPRESSED:
            return self.warp_size * 32 + 2
        return 32 + self.warp_size * self.mode.delta_bytes * 8 + 2

    @property
    def compression_ratio(self) -> float:
        return (self.warp_size * 32) / self.total_bits


def bdi_compress(values: np.ndarray) -> BdiCompressed:
    """Compress one warp-wide register with 4-byte-base BDI."""
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if words.ndim != 1:
        raise CompressionError(f"expected a 1-D lane array, got shape {words.shape}")
    warp_size = words.shape[0]
    base = int(words[0])
    # Signed difference in 32-bit modular arithmetic, widened for analysis.
    raw = (words.astype(np.int64) - base) & 0xFFFFFFFF
    deltas = np.where(raw >= 2**31, raw - 2**32, raw)
    if not deltas.any():
        mode = BdiMode.REPEATED
    elif bool(np.all((-128 <= deltas) & (deltas <= 127))):
        mode = BdiMode.DELTA1
    elif bool(np.all((-32768 <= deltas) & (deltas <= 32767))):
        mode = BdiMode.DELTA2
    else:
        mode = BdiMode.UNCOMPRESSED
    return BdiCompressed(mode=mode, base=base, warp_size=warp_size, deltas=deltas)


def bdi_decompress(compressed: BdiCompressed) -> np.ndarray:
    """Reconstruct the lane values from BDI form."""
    if compressed.mode is BdiMode.REPEATED:
        return np.full(compressed.warp_size, compressed.base, dtype=np.uint32)
    return ((compressed.base + compressed.deltas) & 0xFFFFFFFF).astype(np.uint32)


def bdi_bytes_accessed(compressed: BdiCompressed) -> int:
    """Bytes moved for one access of the register in BDI form.

    Warped-Compression reads the base and the packed delta array; an
    uncompressed register moves all lanes.
    """
    if compressed.mode is BdiMode.UNCOMPRESSED:
        return compressed.warp_size * 4
    return 4 + compressed.warp_size * compressed.mode.delta_bytes
