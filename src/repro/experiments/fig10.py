"""Figure 10 — half-scalar eligibility versus warp size.

At warp size 64 the checking granularity stays at 16 threads, making
the metric "quarter-scalar".  Paper reference: the average rises from
~2% (32-thread warps) to ~5% (64-thread warps) because two scalar
32-thread instructions with different values merge into one 64-thread
instruction that is only chunk-scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.halfwarp import chunk_scalar_stats
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table

#: Fixed checking granularity (lanes), per the paper.
GRANULARITY = 16


@dataclass
class Fig10Row:
    abbr: str
    fraction_warp32: float
    fraction_warp64: float


@dataclass
class Fig10Data:
    rows: list[Fig10Row]

    @property
    def average_warp32(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.fraction_warp32 for r in self.rows) / len(self.rows)

    @property
    def average_warp64(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.fraction_warp64 for r in self.rows) / len(self.rows)


def compute(runner: ExperimentRunner) -> Fig10Data:
    """Regenerate Figure 10's warp-size sweep."""
    rows = []
    for abbr in runner.benchmark_names():
        trace32 = runner.trace_with_warp_size(abbr, 32)
        trace64 = runner.trace_with_warp_size(abbr, 64)
        stats32 = chunk_scalar_stats(trace32, GRANULARITY)
        stats64 = chunk_scalar_stats(trace64, GRANULARITY)
        rows.append(
            Fig10Row(
                abbr=abbr,
                fraction_warp32=stats32.chunk_scalar_fraction,
                fraction_warp64=stats64.chunk_scalar_fraction,
            )
        )
    return Fig10Data(rows=rows)


def render(data: Fig10Data) -> str:
    """Figure 10 as a text table."""
    table_rows = [
        (
            row.abbr,
            f"{100 * row.fraction_warp32:.1f}",
            f"{100 * row.fraction_warp64:.1f}",
        )
        for row in data.rows
    ]
    table_rows.append(
        ("AVG", f"{100 * data.average_warp32:.1f}", f"{100 * data.average_warp64:.1f}")
    )
    body = render_table(
        ["bench", "half-scalar @32 (%)", "quarter-scalar @64 (%)"],
        table_rows,
        title="Figure 10: chunk-scalar instructions vs warp size (16-lane checks)",
    )
    return body + "\npaper: average grows from ~2% at warp 32 to ~5% at warp 64"
