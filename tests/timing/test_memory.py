"""Unit tests for the cache/DRAM latency model."""

import pytest

from repro.errors import ConfigError
from repro.timing.memory import MemoryModel, SetAssociativeCache


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(1024)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_within_set(self):
        cache = SetAssociativeCache(4 * 128, ways=2)  # 2 sets x 2 ways
        # Segments 0, 2, 4 map to set 0 (num_sets=2).
        cache.access(0)
        cache.access(2)
        cache.access(4)  # evicts 0
        assert not cache.access(0)

    def test_hit_rate(self):
        cache = SetAssociativeCache(1024)
        cache.access(1)
        cache.access(1)
        assert cache.hit_rate() == 0.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(0)
        with pytest.raises(ConfigError):
            SetAssociativeCache(128, line_bytes=128, ways=4)


class TestMemoryModel:
    def test_latency_ordering(self):
        model = MemoryModel()
        cold = model.access_global((0,), is_store=False)
        warm = model.access_global((0,), is_store=False)
        assert cold == model.dram_latency
        assert warm == model.l1_hit_latency

    def test_l2_hit_after_l1_eviction(self):
        model = MemoryModel(l1_size_bytes=8 * 128)  # 2 sets x 4 ways
        model.access_global((0,), is_store=False)  # dram
        # Fill set 0 (even segments) until segment 0 is evicted.
        for segment in (2, 4, 6, 8):
            model.access_global((segment,), is_store=False)
        latency = model.access_global((0,), is_store=False)
        assert latency == model.l2_hit_latency

    def test_store_is_write_through(self):
        model = MemoryModel()
        latency = model.access_global((7,), is_store=True)
        assert latency == model.l1_hit_latency
        assert model.counts.l2_accesses == 1

    def test_multi_segment_takes_worst(self):
        model = MemoryModel()
        model.access_global((0,), is_store=False)  # warm one segment
        latency = model.access_global((0, 99), is_store=False)
        assert latency == model.dram_latency

    def test_empty_segment_list_is_l1_latency(self):
        model = MemoryModel()
        assert model.access_global((), is_store=False) == model.l1_hit_latency

    def test_shared_access(self):
        model = MemoryModel()
        assert model.access_shared() == model.shared_latency
        assert model.counts.shared_accesses == 1

    def test_counters_accumulate(self):
        model = MemoryModel()
        model.access_global((0, 1, 2), is_store=False)
        assert model.counts.l1_accesses == 3
        assert model.counts.dram_accesses == 3
