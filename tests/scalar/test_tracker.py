"""Unit tests for the register-state tracker (EBR/BVR/D/FS machine)."""

import numpy as np

from repro.isa import KernelBuilder
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import (
    RegisterStateTracker,
    classify_trace,
    classify_warp,
    trace_statistics,
)
from repro.simt import MemoryImage
from repro.simt.trace import TraceEvent
from repro.isa.opcodes import Opcode

from tests.conftest import run_one_warp

FULL = 0xFFFFFFFF
EVENS = 0x55555555


def write_event(dst, values, mask=FULL, srcs=(), opcode=Opcode.IADD):
    if opcode is Opcode.IADD and len(srcs) != 2:
        opcode = Opcode.MOV
        srcs = srcs or (99,)
        if len(srcs) != 1:
            opcode = Opcode.IADD
    return TraceEvent(
        opcode=opcode,
        dst=dst,
        src_regs=tuple(srcs),
        active_mask=mask,
        block_id=0,
        dst_values=np.asarray(values, dtype=np.uint32),
    )


class TestStateTransitions:
    def test_scalar_write_sets_enc_1111(self):
        tracker = RegisterStateTracker(8, 32)
        tracker.classify(write_event(0, np.full(32, 5), srcs=(1,)))
        state = tracker.state_of(0)
        assert state.enc == 4
        assert state.base == 5
        assert not state.divergent
        assert state.full_scalar

    def test_divergent_write_stores_mask_in_bvr(self):
        tracker = RegisterStateTracker(8, 32)
        values = np.zeros(32, dtype=np.uint32)
        values[::2] = 7
        tracker.classify(write_event(0, values, mask=EVENS, srcs=(1,)))
        state = tracker.state_of(0)
        assert state.divergent
        assert state.enc == 4  # active lanes all hold 7
        assert state.base == EVENS  # BVR repurposed as the mask

    def test_decompress_move_needed_only_for_compressed_dst(self):
        tracker = RegisterStateTracker(8, 32)
        # First write: compressed (scalar).
        tracker.classify(write_event(0, np.full(32, 5), srcs=(1,)))
        # Divergent overwrite -> needs the special move.
        item = tracker.classify(
            write_event(0, np.full(32, 9), mask=EVENS, srcs=(1,))
        )
        assert item.needs_decompress_move
        # Second divergent overwrite: already uncompressed -> no move.
        item2 = tracker.classify(
            write_event(0, np.full(32, 9), mask=EVENS, srcs=(1,))
        )
        assert not item2.needs_decompress_move

    def test_uncompressed_dst_needs_no_move(self):
        tracker = RegisterStateTracker(8, 32)
        rng = np.random.default_rng(0)
        random_values = rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(
            np.uint32
        )
        tracker.classify(write_event(0, random_values, srcs=(1,)))
        item = tracker.classify(
            write_event(0, np.full(32, 9), mask=EVENS, srcs=(1,))
        )
        assert not item.needs_decompress_move

    def test_nondivergent_write_clears_d_bit(self):
        tracker = RegisterStateTracker(8, 32)
        tracker.classify(write_event(0, np.full(32, 7), mask=EVENS, srcs=(1,)))
        assert tracker.state_of(0).divergent
        tracker.classify(write_event(0, np.full(32, 8), srcs=(1,)))
        assert not tracker.state_of(0).divergent

    def test_initial_state_is_uncompressed(self):
        tracker = RegisterStateTracker(8, 32)
        state = tracker.state_of(3)
        assert state.enc == 0 and not state.divergent


class TestMaskMatching:
    def test_figure7_scenario(self):
        """r2 written divergently under mask M; the other path must not
        treat it as scalar even though enc == 1111."""
        tracker = RegisterStateTracker(8, 32)
        mask_a = 0x0000FFFF
        mask_b = 0xFFFF0000
        values = np.zeros(32, dtype=np.uint32)
        values[:16] = 42
        tracker.classify(write_event(2, values, mask=mask_a, srcs=(1,)))
        # Same-mask reader: divergent scalar.
        same = tracker.classify(
            TraceEvent(
                opcode=Opcode.MOV,
                dst=3,
                src_regs=(2,),
                active_mask=mask_a,
                block_id=0,
                dst_values=values.copy(),
            )
        )
        assert same.scalar_class is ScalarClass.DIVERGENT_SCALAR
        # Other-path reader: not eligible.
        values_b = np.zeros(32, dtype=np.uint32)
        other = tracker.classify(
            TraceEvent(
                opcode=Opcode.MOV,
                dst=4,
                src_regs=(2,),
                active_mask=mask_b,
                block_id=0,
                dst_values=values_b,
            )
        )
        assert other.scalar_class is ScalarClass.NOT_ELIGIBLE


class TestTraceLevel:
    def test_classify_trace_per_warp_isolation(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage(), cta=64)
        classified = classify_trace(trace, divergent_kernel.num_registers)
        assert len(classified) == 2
        assert len(classified[0]) == len(trace.warps[0].events)

    def test_statistics_roll_up(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage())
        classified = classify_trace(trace, divergent_kernel.num_registers)
        stats = trace_statistics(classified)
        assert stats.total_instructions == trace.total_instructions
        assert stats.divergent_instructions > 0
        assert sum(stats.class_counts.values()) == stats.total_instructions

    def test_scalar_chain_fully_eligible(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        classified = classify_warp(trace.warps[0], scalar_heavy_kernel.num_registers)
        buckets = [item.scalar_class for item in classified]
        assert ScalarClass.SFU_SCALAR in buckets
        assert ScalarClass.ALU_SCALAR in buckets

    def test_divergent_scalar_chain_detected(self):
        b = KernelBuilder("divscalar")
        tid = b.tid()
        c = b.mov(10)
        cond = b.seteq(b.and_(tid, 1), 0)
        with b.if_(cond):
            x = b.iadd(c, 1)  # scalar sources under divergence
            y = b.iadd(x, 2)  # x is D=1, enc=1111, same mask
            b.iadd(y, 3)
        kernel = b.finish()
        trace = run_one_warp(kernel, MemoryImage())
        classified = classify_warp(trace.warps[0], kernel.num_registers)
        divergent_scalars = [
            i for i in classified if i.scalar_class is ScalarClass.DIVERGENT_SCALAR
        ]
        assert len(divergent_scalars) == 3
