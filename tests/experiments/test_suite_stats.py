"""Tests for the workload-suite statistics command."""

import pytest

from repro.experiments import suite
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def data():
    return suite.compute(ExperimentRunner(scale="tiny"))


class TestSuiteStats:
    def test_all_benchmarks_present(self, data):
        assert len(data.rows) == 17
        assert [row.abbr for row in data.rows][0] == "BT"

    def test_fractions_are_fractions(self, data):
        for row in data.rows:
            for value in (
                row.divergent, row.alu_scalar, row.sfu_scalar, row.mem_scalar,
                row.half_scalar, row.divergent_scalar, row.eligible,
                row.sfu_mix, row.mem_mix,
            ):
                assert 0.0 <= value <= 1.0, row.abbr

    def test_eligible_is_sum_of_classes(self, data):
        for row in data.rows:
            total = (
                row.alu_scalar + row.sfu_scalar + row.mem_scalar
                + row.half_scalar + row.divergent_scalar
            )
            assert row.eligible == pytest.approx(total, abs=1e-9)

    def test_averages_row(self, data):
        averages = data.averages()
        assert averages.abbr == "AVG"
        assert averages.instructions == sum(r.instructions for r in data.rows)
        assert 0.0 < averages.eligible < 1.0

    def test_render(self, data):
        text = suite.render(data)
        assert "Workload-suite" in text
        assert "AVG" in text
        assert "LBM" in text
