"""Prometheus text-format exposition of a telemetry registry.

Renders counters, gauges and histograms in the plain-text exposition format
(``# TYPE`` comments, ``name{label="value"} number`` samples).  Metric
names are prefixed ``repro_`` and sanitized; counter names get the
conventional ``_total`` suffix when they lack one.  Histograms are
discrete value -> count maps in the registry and are exported with the
standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``, one ``le`` boundary per distinct observed value (exact, no
binning loss — the pipeline's histograms have small discrete domains).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.telemetry import LabelKey, Telemetry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: ``# HELP`` text for the flight-recorder time series (raw registry
#: names; see :mod:`repro.obs.timeline`).  Interval labels are
#: zero-padded, so sorting the samples lexically = time order.
_HELP = {
    "timeline_issued": "Instructions issued per timeline interval (issued-IPC series).",
    "timeline_occupancy_warp_cycles": "Integrated resident warp-cycles per timeline interval (occupancy series).",
    "timeline_events_recorded": "Flight-recorder lifecycle events recorded (ring inserts).",
    "timeline_events_dropped": "Flight-recorder events dropped by the bounded ring.",
    "sm_stall_scheduler_cycles": "Idle scheduler-cycles attributed per stall cause.",
    "sm_issued_instructions": "Instructions issued per scheduler.",
    "sm_cycles": "Total simulated SM cycles.",
    "peak_rss_bytes": "Peak resident set size of the recording process (high-water mark).",
    "bytes_in_flight": "Peak live chunk-array bytes across streamed pipeline chunks.",
}


def _metric_name(name: str, *, counter: bool) -> str:
    clean = _NAME_OK.sub("_", name)
    if not clean.startswith("repro_"):
        clean = f"repro_{clean}"
    if counter and not clean.endswith("_total"):
        clean = f"{clean}_total"
    return clean


def _escape(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _labels_text(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def _number(value: float) -> str:
    if isinstance(value, bool):  # guard: bools are ints in python
        value = int(value)
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def prometheus_text(telemetry: Telemetry) -> str:
    """The registry as one Prometheus text-exposition document."""
    lines: list[str] = []

    by_counter: dict[str, list[tuple[LabelKey, float]]] = {}
    for (name, labels), value in telemetry.counters.items():
        by_counter.setdefault(name, []).append((labels, value))
    for name in sorted(by_counter):
        metric = _metric_name(name, counter=True)
        if name in _HELP:
            lines.append(f"# HELP {metric} {_HELP[name]}")
        lines.append(f"# TYPE {metric} counter")
        for labels, value in sorted(by_counter[name]):
            lines.append(f"{metric}{_labels_text(labels)} {_number(value)}")

    by_gauge: dict[str, list[tuple[LabelKey, float]]] = {}
    for (name, labels), value in telemetry.gauges.items():
        by_gauge.setdefault(name, []).append((labels, value))
    for name in sorted(by_gauge):
        metric = _metric_name(name, counter=False)
        if name in _HELP:
            lines.append(f"# HELP {metric} {_HELP[name]}")
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in sorted(by_gauge[name]):
            lines.append(f"{metric}{_labels_text(labels)} {_number(value)}")

    by_histogram: dict[str, list[tuple[LabelKey, dict[float, int]]]] = {}
    for (name, labels), bucket in telemetry.histograms.items():
        by_histogram.setdefault(name, []).append((labels, bucket))
    for name in sorted(by_histogram):
        metric = _metric_name(name, counter=False)
        lines.append(f"# TYPE {metric} histogram")
        for labels, bucket in sorted(by_histogram[name]):
            cumulative = 0
            total = 0.0
            for value in sorted(bucket):
                count = bucket[value]
                cumulative += count
                total += value * count
                lines.append(
                    f"{metric}_bucket"
                    f"{_labels_text(labels, (('le', _number(value)),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{metric}_bucket{_labels_text(labels, (('le', '+Inf'),))} {cumulative}"
            )
            lines.append(f"{metric}_sum{_labels_text(labels)} {_number(total)}")
            lines.append(f"{metric}_count{_labels_text(labels)} {cumulative}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(telemetry: Telemetry, path: str | Path) -> Path:
    """Write the text exposition to ``path`` and return it."""
    path = Path(path)
    path.write_text(prometheus_text(telemetry), encoding="utf-8")
    return path
