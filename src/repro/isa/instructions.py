"""Instruction and operand representations.

Registers are warp-wide vector registers holding one 32-bit value per
lane.  Special registers expose per-thread identity (lane id, global
thread id, CTA id) the way PTX's ``%tid``/``%ctaid`` do.  Immediates are
32-bit constants shared by all lanes; an immediate source is always a
"scalar" operand for eligibility purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import KernelValidationError
from repro.isa.opcodes import Opcode, has_destination, source_arity


@dataclass(frozen=True)
class Reg:
    """A numbered warp-wide vector register (``r0``, ``r1``, ...)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise KernelValidationError(f"register index must be >= 0, got {self.index}")

    def __repr__(self) -> str:
        return f"r{self.index}"


class SpecialReg(enum.Enum):
    """Read-only special registers exposing thread identity.

    ``TID`` is the global thread index (``ctaid * ntid + tid_in_cta``),
    ``LANE`` the lane within the warp, ``CTAID`` the CTA index,
    ``WARP_IN_CTA`` the warp index within its CTA and ``NTID`` the CTA
    size in threads.
    """

    TID = "tid"
    LANE = "lane"
    CTAID = "ctaid"
    WARP_IN_CTA = "warp_in_cta"
    NTID = "ntid"

    def __repr__(self) -> str:
        return f"%{self.value}"


@dataclass(frozen=True)
class Imm:
    """A 32-bit immediate constant, stored as its unsigned bit pattern."""

    value: int

    def __post_init__(self) -> None:
        if not -(2**31) <= self.value < 2**32:
            raise KernelValidationError(f"immediate out of 32-bit range: {self.value}")
        object.__setattr__(self, "value", self.value & 0xFFFFFFFF)

    @staticmethod
    def from_float(x: float) -> "Imm":
        """Encode a Python float as its IEEE-754 binary32 bit pattern."""
        import struct

        return Imm(struct.unpack("<I", struct.pack("<f", x))[0])

    def as_float(self) -> float:
        """Decode the bit pattern back to a float."""
        import struct

        return struct.unpack("<f", struct.pack("<I", self.value))[0]

    def __repr__(self) -> str:
        return f"#{self.value:#x}"


Operand = Reg | Imm | SpecialReg


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``dst`` is ``None`` for stores.  ``srcs`` has exactly
    :func:`repro.isa.opcodes.source_arity` entries.  Control opcodes
    never appear here — they live in block terminators
    (:mod:`repro.isa.kernel`).
    """

    opcode: Opcode
    dst: Reg | None
    srcs: tuple[Operand, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        from repro.isa.opcodes import Opcode, is_control

        if is_control(self.opcode) and self.opcode is not Opcode.BAR:
            raise KernelValidationError(
                f"{self.opcode.value} is a terminator, not a body instruction"
            )
        expected = source_arity(self.opcode)
        if len(self.srcs) != expected:
            raise KernelValidationError(
                f"{self.opcode.value} takes {expected} sources, got {len(self.srcs)}"
            )
        if has_destination(self.opcode):
            if self.dst is None:
                raise KernelValidationError(f"{self.opcode.value} requires a destination")
        elif self.dst is not None:
            raise KernelValidationError(f"{self.opcode.value} takes no destination")

    @property
    def source_registers(self) -> tuple[Reg, ...]:
        """The vector-register sources (immediates/specials excluded)."""
        return tuple(s for s in self.srcs if isinstance(s, Reg))

    def __repr__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dst is not None:
            operands.append(repr(self.dst))
        operands.extend(repr(s) for s in self.srcs)
        return f"{parts[0]} " + ", ".join(operands) if operands else parts[0]
