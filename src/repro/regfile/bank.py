"""A structural model of one byte-rotated register-file bank.

This actually stores register bytes in the rotated array layout of
Figure 3 — array ``(byte_position, half)`` holds byte ``byte_position``
of 16 lanes — with per-byte write enables (§3.3), and reconstructs
values through the decompression path of Figure 5.  It exists to prove
the layout works: the trace-driven models elsewhere only need the
*arrays-activated* arithmetic in :mod:`repro.regfile.layout`, but the
tests here round-trip real values through real arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.compression.encoding import SCALAR_PREFIX
from repro.compression.gscalar import common_prefix_bytes
from repro.regfile.layout import BankGeometry


@dataclass
class AccessRecord:
    """Arrays touched by one bank operation (returned for inspection)."""

    data_arrays: int
    sidecar: bool


class RegisterBank:
    """One bank of ``num_registers`` byte-rotated vector registers."""

    def __init__(self, num_registers: int = 64, geometry: BankGeometry | None = None):
        if num_registers < 1:
            raise ConfigError(f"num_registers must be >= 1, got {num_registers}")
        self.geometry = geometry or BankGeometry()
        self.num_registers = num_registers
        lanes = self.geometry.warp_size
        # arrays[byte_position][register] -> one byte per lane.
        self._arrays = np.zeros((4, num_registers, lanes), dtype=np.uint8)
        self._bvr = np.zeros(num_registers, dtype=np.uint64)  # holds base or mask
        self._ebr = np.zeros(num_registers, dtype=np.uint8)  # prefix length 0..4
        self._dbit = np.zeros(num_registers, dtype=bool)

    def _check_register(self, register: int) -> None:
        if not 0 <= register < self.num_registers:
            raise ConfigError(
                f"register {register} out of range 0..{self.num_registers - 1}"
            )

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def write_compressed(self, register: int, values: np.ndarray) -> AccessRecord:
        """Non-divergent write: compress, store only non-prefix bytes."""
        self._check_register(register)
        words = np.ascontiguousarray(values, dtype=np.uint32)
        enc = common_prefix_bytes(words)
        # Bytes are *always* stored rotated (the crossbar reorders them
        # unconditionally, §3.2), but prefix bytes are simply not driven.
        for byte_position in range(4 - enc):
            self._arrays[byte_position, register] = (
                words >> (8 * byte_position)
            ) & 0xFF
        self._ebr[register] = enc
        self._bvr[register] = np.uint64(words[0])
        self._dbit[register] = False
        arrays = (4 - enc) * self.geometry.arrays_per_byte_position
        return AccessRecord(data_arrays=arrays, sidecar=True)

    def write_divergent(
        self, register: int, values: np.ndarray, mask: np.ndarray
    ) -> AccessRecord:
        """Divergent partial write: store uncompressed, D=1, BVR=mask.

        Requires the register to be currently uncompressed (the
        scoreboard inserts a decompress-move otherwise, §3.3); call
        :meth:`decompress_in_place` first when needed.
        """
        self._check_register(register)
        if self._ebr[register] != 0 and not self._dbit[register]:
            raise ConfigError(
                f"register {register} is compressed; decompress before a "
                "divergent partial write"
            )
        words = np.ascontiguousarray(values, dtype=np.uint32)
        lane_mask = np.asarray(mask, dtype=bool)
        for byte_position in range(4):
            byte_column = ((words >> (8 * byte_position)) & 0xFF).astype(np.uint8)
            np.copyto(self._arrays[byte_position, register], byte_column, where=lane_mask)
        active = words[lane_mask]
        self._ebr[register] = common_prefix_bytes(active) if active.size else SCALAR_PREFIX
        mask_bits = 0
        for lane in np.flatnonzero(lane_mask):
            mask_bits |= 1 << int(lane)
        self._bvr[register] = np.uint64(mask_bits)
        self._dbit[register] = True
        return AccessRecord(data_arrays=self.geometry.arrays_per_bank, sidecar=True)

    def decompress_in_place(self, register: int) -> AccessRecord:
        """The special register-to-register move of §3.3: read,
        decompress, store back uncompressed (ignoring any active mask)."""
        self._check_register(register)
        values, _ = self.read(register)
        for byte_position in range(4):
            self._arrays[byte_position, register] = (
                (values >> (8 * byte_position)) & 0xFF
            ).astype(np.uint8)
        self._ebr[register] = 0
        self._dbit[register] = False
        self._bvr[register] = np.uint64(0)
        return AccessRecord(data_arrays=2 * self.geometry.arrays_per_bank, sidecar=True)

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def read(self, register: int) -> tuple[np.ndarray, AccessRecord]:
        """Read and (if needed) decompress a register's full contents."""
        self._check_register(register)
        lanes = self.geometry.warp_size
        divergent = bool(self._dbit[register])
        enc = 0 if divergent else int(self._ebr[register])
        values = np.zeros(lanes, dtype=np.uint32)
        for byte_position in range(4 - enc):
            values |= self._arrays[byte_position, register].astype(np.uint32) << np.uint32(
                8 * byte_position
            )
        if enc:
            prefix_mask = np.uint32((0xFFFFFFFF << (8 * (4 - enc))) & 0xFFFFFFFF)
            base = np.uint32(int(self._bvr[register]) & 0xFFFFFFFF)
            values |= np.uint32(base & prefix_mask)
        arrays = (4 - enc) * self.geometry.arrays_per_byte_position
        return values, AccessRecord(data_arrays=arrays, sidecar=True)

    # ------------------------------------------------------------------
    # Sidecar inspection.
    # ------------------------------------------------------------------
    def encoding_of(self, register: int) -> tuple[int, bool, int]:
        """(enc prefix length, D bit, BVR contents) of a register."""
        self._check_register(register)
        return int(self._ebr[register]), bool(self._dbit[register]), int(self._bvr[register])

    def is_scalar(self, register: int) -> bool:
        """True when enc says all lanes hold one value (non-divergent)."""
        self._check_register(register)
        return not self._dbit[register] and int(self._ebr[register]) == SCALAR_PREFIX
