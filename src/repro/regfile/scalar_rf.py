"""The prior-work dedicated scalar register file [Gilani et al., HPCA'13].

The ALU-scalar baseline stores registers detected to hold one scalar
value in a single small scalar RF bank.  Two properties matter for the
evaluation:

* each scalar access is cheap (a 4-byte read instead of 128 bytes), and
* there is only **one** bank, so concurrent scalar-operand reads from
  different operand collectors serialize — the §4.1 bottleneck G-Scalar
  removes by giving every bank its own BVR array.

This model tracks residency (which architectural registers currently
live in the scalar RF) and counts port conflicts given per-cycle access
sequences; the timing model consumes :meth:`port_cycles_for`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Energy of one scalar-RF access relative to a full vector-register
#: access.  A 4-byte single-bank RF read against a 128-byte banked read;
#: calibrated so the ALU-scalar architecture lands at the paper's
#: "scalar RF consumes 37% less power than baseline" (§5.3, Figure 12).
SCALAR_RF_ENERGY_FRACTION = 0.045


@dataclass
class ScalarRegisterFile:
    """Residency + access accounting for the single-bank scalar RF."""

    capacity: int = 256
    read_ports: int = 1
    resident: set[int] = field(default_factory=set)
    scalar_reads: int = 0
    scalar_writes: int = 0
    vector_fallback_reads: int = 0
    evictions: int = 0
    _lru: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {self.capacity}")
        if self.read_ports < 1:
            raise ConfigError(f"read_ports must be >= 1, got {self.read_ports}")

    def _touch(self, register: int) -> None:
        if register in self._lru:
            self._lru.remove(register)
        self._lru.append(register)

    def write_scalar(self, register: int) -> None:
        """A scalar value was written; allocate a scalar-RF slot."""
        if register not in self.resident and len(self.resident) >= self.capacity:
            victim = self._lru.pop(0)
            self.resident.discard(victim)
            self.evictions += 1
        self.resident.add(register)
        self._touch(register)
        self.scalar_writes += 1

    def invalidate(self, register: int) -> None:
        """A vector value was written; the register leaves the scalar RF."""
        if register in self.resident:
            self.resident.discard(register)
            self._lru.remove(register)

    def read(self, register: int) -> bool:
        """Read a register; returns True if served by the scalar RF."""
        if register in self.resident:
            self._touch(register)
            self.scalar_reads += 1
            return True
        self.vector_fallback_reads += 1
        return False

    def is_resident(self, register: int) -> bool:
        return register in self.resident

    def port_cycles_for(self, concurrent_scalar_reads: int) -> int:
        """Cycles the single bank needs to serve N concurrent reads.

        With one read port, N concurrent scalar-operand reads take N
        cycles instead of 1 — the burst-of-scalar-instructions
        serialization the paper describes in §4.1.
        """
        if concurrent_scalar_reads < 0:
            raise ConfigError("concurrent_scalar_reads must be >= 0")
        if concurrent_scalar_reads == 0:
            return 0
        return (concurrent_scalar_reads + self.read_ports - 1) // self.read_ports
