"""Tests for the caching experiment runner."""

import pytest

from repro.config import ArchitectureConfig
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="tiny")


class TestRunner:
    def test_benchmark_names_in_table2_order(self, runner):
        names = runner.benchmark_names()
        assert names[0] == "BT"
        assert names[-1] == "ACF"
        assert len(names) == 17

    def test_run_caches_trace(self, runner):
        first = runner.run("BP")
        second = runner.run("bp")  # case-insensitive
        assert first is second

    def test_processed_cached_per_architecture(self, runner):
        arch = ArchitectureConfig.gscalar()
        first = runner.processed("BP", arch)
        second = runner.processed("BP", arch)
        assert first is second

    def test_timing_and_power(self, runner):
        arch = ArchitectureConfig.baseline()
        timing = runner.timing("HS", arch)
        power = runner.power("HS", arch)
        assert timing.cycles > 0
        assert power.cycles == timing.cycles
        assert power.ipc_per_watt > 0

    def test_warp64_traces(self, runner):
        trace32 = runner.trace_with_warp_size("HS", 32)
        trace64 = runner.trace_with_warp_size("HS", 64)
        assert trace32.warp_size == 32
        assert trace64.warp_size == 64

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="nope")


class TestTraceCache:
    def test_disk_cache_round_trip(self, tmp_path):
        first = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        run_a = first.run("HS")
        assert (tmp_path / "HS_tiny.npz").exists()
        second = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        run_b = second.run("HS")
        assert run_a.trace.total_instructions == run_b.trace.total_instructions
        masks_a = [e.active_mask for e in run_a.trace.all_events()]
        masks_b = [e.active_mask for e in run_b.trace.all_events()]
        assert masks_a == masks_b
