"""Path-sensitive uninitialized-read detection (reaching definitions).

The whole-kernel set check this replaces (``read - written``) misses a
classic bug: a register written only inside one branch arm but read
unconditionally after the join is "written somewhere", yet on the other
path the read observes garbage.  The definite-assignment dataflow here
is a *must* analysis — a register is definitely assigned at a point
only when every path from the entry defines it first — so that case is
flagged precisely, at the offending read site.

Rule codes: ``GS-E001`` for reads of registers no block ever writes
(the old check, now localized per read), ``GS-E002`` for reads that are
unprotected on at least one path.
"""

from __future__ import annotations

from repro.isa.kernel import Branch, Kernel

from repro.analysis.static_.diagnostics import Diagnostic
from repro.analysis.static_.framework import AnalysisContext, LintPass


def definite_assignment(kernel: Kernel) -> dict[int, set[int]]:
    """Registers definitely assigned on entry to each block.

    Forward *must* dataflow: ``IN[b] = intersection(OUT[p] for p in
    preds(b))`` with ``OUT[b] = IN[b] | defs(b)``; the entry block
    starts empty, everything else starts at TOP (all registers) so the
    intersection over a loop's back edge converges from above.
    """
    universe = set(range(kernel.num_registers))
    defs: dict[int, set[int]] = {}
    for block in kernel.blocks:
        defined: set[int] = set()
        for inst in block.instructions:
            if inst.dst is not None:
                defined.add(inst.dst.index)
        defs[block.block_id] = defined

    preds = kernel.predecessors()
    entry_in: dict[int, set[int]] = {b.block_id: set(universe) for b in kernel.blocks}
    entry_in[0] = set()
    out_state: dict[int, set[int]] = {
        b.block_id: (set(universe) if b.block_id != 0 else defs[0] | set())
        for b in kernel.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in kernel.blocks:
            block_id = block.block_id
            if block_id == 0:
                new_in: set[int] = set()
            else:
                new_in = set(universe)
                for pred in preds[block_id]:
                    new_in &= out_state[pred]
            new_out = new_in | defs[block_id]
            if new_in != entry_in[block_id] or new_out != out_state[block_id]:
                entry_in[block_id] = new_in
                out_state[block_id] = new_out
                changed = True
    return entry_in


def uninitialized_reads(kernel: Kernel) -> list[Diagnostic]:
    """All reads of maybe-uninitialized registers, in program order."""
    ever_written: set[int] = set()
    for block in kernel.blocks:
        for inst in block.instructions:
            if inst.dst is not None:
                ever_written.add(inst.dst.index)

    entry_in = definite_assignment(kernel)
    findings: list[Diagnostic] = []

    def flag(register: int, block_id: int, inst_index: int | None, what: str) -> None:
        if register in ever_written:
            rule = "GS-E002"
            detail = (
                f"r{register} read by {what} may be uninitialized: no "
                "definition reaches it on at least one path from entry"
            )
        else:
            rule = "GS-E001"
            detail = f"r{register} read by {what} but never written by any block"
        findings.append(
            Diagnostic(
                rule=rule,
                kernel=kernel.name,
                message=detail,
                block_id=block_id,
                inst_index=inst_index,
            )
        )

    for block in kernel.blocks:
        assigned = set(entry_in[block.block_id])
        for index, inst in enumerate(block.instructions):
            for src in inst.source_registers:
                if src.index not in assigned:
                    flag(src.index, block.block_id, index, inst.opcode.value)
            if inst.dst is not None:
                assigned.add(inst.dst.index)
        terminator = block.terminator
        if isinstance(terminator, Branch) and terminator.cond.index not in assigned:
            flag(terminator.cond.index, block.block_id, None, "branch condition")
    return findings


class UninitializedReadPass(LintPass):
    """Reaching-definitions lint pass (GS-E001 / GS-E002)."""

    name = "uninitialized-read"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        return uninitialized_reads(ctx.kernel)
