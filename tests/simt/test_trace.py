"""Unit tests for trace containers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa.opcodes import OpCategory, Opcode
from repro.simt.trace import KernelTrace, TraceEvent, WarpTrace


def make_event(mask=0xFFFFFFFF, opcode=Opcode.IADD, dst=0):
    return TraceEvent(
        opcode=opcode,
        dst=dst,
        src_regs=(1, 2),
        active_mask=mask,
        block_id=0,
        dst_values=np.zeros(32, dtype=np.uint32),
    )


class TestTraceEvent:
    def test_divergence_detection(self):
        assert not make_event().is_divergent(32)
        assert make_event(mask=0x0000FFFF).is_divergent(32)

    def test_active_lane_count(self):
        assert make_event(mask=0xF).active_lane_count() == 4

    def test_category_derived_from_opcode(self):
        assert make_event(opcode=Opcode.SIN).category is OpCategory.SFU


class TestWarpTrace:
    def test_append_and_iterate(self):
        warp = WarpTrace(warp_id=0, warp_size=32)
        warp.append(make_event())
        assert len(warp) == 1
        assert list(warp)[0].dst == 0

    def test_oversized_mask_rejected(self):
        warp = WarpTrace(warp_id=0, warp_size=16)
        with pytest.raises(TraceError):
            warp.append(make_event(mask=1 << 20))


class TestKernelTrace:
    def test_aggregates(self):
        trace = KernelTrace(kernel_name="k", warp_size=32)
        warp = WarpTrace(warp_id=0, warp_size=32)
        warp.append(make_event())
        warp.append(make_event(mask=0xFF))
        trace.warps.append(warp)
        assert trace.total_instructions == 2
        assert trace.divergent_fraction() == 0.5

    def test_category_histogram(self):
        trace = KernelTrace(kernel_name="k", warp_size=32)
        warp = WarpTrace(warp_id=0, warp_size=32)
        warp.append(make_event())
        warp.append(make_event(opcode=Opcode.SIN))
        trace.warps.append(warp)
        histogram = trace.category_histogram()
        assert histogram[OpCategory.ALU] == 1
        assert histogram[OpCategory.SFU] == 1

    def test_empty_trace(self):
        trace = KernelTrace(kernel_name="k", warp_size=32)
        assert trace.total_instructions == 0
        assert trace.divergent_fraction() == 0.0
