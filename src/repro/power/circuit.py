"""Analytic gate-level cost model of the compressor and decompressor.

The paper synthesizes both blocks with a commercial 40 nm standard-cell
library and reports area, delay and power including the 1024-bit
pipeline registers (Table 3).  We reproduce those constants from first
principles: count gate equivalents (GE) of every sub-block, then apply
40 nm per-GE area/delay/energy constants plus a wiring/overhead factor.

The derivation (32-lane warp, 4-byte lanes):

* **Compressor** (Figure 3 (2) + the Figure 7 adaptations): 31
  neighbour comparisons, each 32 XNORs plus four 8-input per-byte AND
  reductions; four global 31-input AND trees producing eq[3:0]; the
  active-lane broadcast network (one 32-bit 2:1 mux per lane driven by
  a find-first-active select — Figure 7(a)); the divergent-mask
  comparator and FS/half-register control (Figure 7(b,c)); enc encode;
  and a 1024-bit pipeline register.
* **Decompressor** (Figure 5): one 2:1 mux per lane-bit choosing array
  byte vs base byte (32 lanes x 32 bits), select decode from the enc
  bits, and a 1024-bit pipeline register.

Clocked at 1.4 GHz the pipeline registers dominate power, which is why
both blocks land near 16 mW despite very different logic depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

# 40 nm standard-cell constants (typical commercial library).
GATE_AREA_UM2 = 0.71  # area of one NAND2-equivalent
GATE_DELAY_NS = 0.024  # loaded NAND2 delay
FF_GE = 4.5  # D flip-flop in gate equivalents
FF_CLOCK_ENERGY_FJ = 10.0  # per-cycle clock+internal energy of one FF
GATE_TOGGLE_ENERGY_FJ = 1.1  # dynamic energy of one gate toggle
LOGIC_ACTIVITY = 0.18  # average switching activity of datapath logic
WIRING_OVERHEAD = 1.42  # routing + cell-utilization factor

# Gate-equivalent costs of small structures.
XNOR_GE = 1.6
MUX2_GE = 2.3
AND_TREE_GE_PER_INPUT = 1.1


@dataclass(frozen=True)
class CircuitEstimate:
    """Area/delay/power of one block, Table 3 style."""

    name: str
    logic_ge: float
    flipflops: int
    depth_gates: int
    frequency_ghz: float = 1.4

    def __post_init__(self) -> None:
        if self.logic_ge < 0 or self.flipflops < 0 or self.depth_gates < 1:
            raise ConfigError("circuit estimate parameters out of range")
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency must be positive")

    @property
    def area_um2(self) -> float:
        cells = self.logic_ge + self.flipflops * FF_GE
        return cells * GATE_AREA_UM2 * WIRING_OVERHEAD

    @property
    def delay_ns(self) -> float:
        return self.depth_gates * GATE_DELAY_NS

    @property
    def power_mw(self) -> float:
        freq_hz = self.frequency_ghz * 1e9
        ff_w = self.flipflops * FF_CLOCK_ENERGY_FJ * 1e-15 * freq_hz
        logic_w = self.logic_ge * GATE_TOGGLE_ENERGY_FJ * 1e-15 * LOGIC_ACTIVITY * freq_hz
        return (ff_w + logic_w) * 1e3

    @property
    def energy_per_op_pj(self) -> float:
        return self.power_mw / self.frequency_ghz


def compressor_estimate(warp_size: int = 32) -> CircuitEstimate:
    """The comparison logic of Figure 3 (2) with the Figure 7 additions."""
    if warp_size < 2:
        raise ConfigError(f"warp_size must be >= 2, got {warp_size}")
    comparisons = warp_size - 1
    # Per-comparison: 32 XNORs + four 8-input per-byte AND reductions.
    xnor_ge = comparisons * 32 * XNOR_GE
    byte_reduce_ge = comparisons * 4 * 8 * AND_TREE_GE_PER_INPUT
    # Global per-byte AND over all comparisons -> eq[3:0].
    global_and_ge = 4 * comparisons * AND_TREE_GE_PER_INPUT
    # Figure 7(a): broadcast one active lane's value into inactive lanes.
    broadcast_ge = warp_size * 32 * MUX2_GE
    priority_select_ge = warp_size * 4.0
    # Figure 7(b): 32-bit active-mask comparator.
    mask_compare_ge = warp_size * XNOR_GE + warp_size * AND_TREE_GE_PER_INPUT
    # Figure 7(c): FS flag, half-register merge and write-path control.
    half_control_ge = 700.0
    encode_ge = 60.0
    logic = (
        xnor_ge
        + byte_reduce_ge
        + global_and_ge
        + broadcast_ge
        + priority_select_ge
        + mask_compare_ge
        + half_control_ge
        + encode_ge
    )
    # Depth: broadcast mux (2) + XNOR (1) + byte reduce (3) + global AND
    # over 31 (5) + encode (3) + wire/margin (14) = 28 levels.
    return CircuitEstimate(
        name="compressor",
        logic_ge=logic,
        flipflops=warp_size * 32,  # 1024-bit pipeline register
        depth_gates=28,
    )


def decompressor_estimate(warp_size: int = 32) -> CircuitEstimate:
    """The Figure 5 byte-select network."""
    if warp_size < 2:
        raise ConfigError(f"warp_size must be >= 2, got {warp_size}")
    byte_muxes_ge = warp_size * 32 * MUX2_GE  # a 2:1 mux per lane-bit
    select_ge = 40.0  # enc[3:0] -> per-byte select decode + buffering
    logic = byte_muxes_ge + select_ge
    # Depth: select decode (3) + mux (2) + buffering/wire margin (10).
    return CircuitEstimate(
        name="decompressor",
        logic_ge=logic,
        flipflops=warp_size * 32,  # 1024-bit pipeline register
        depth_gates=15,
    )


#: Paper Table 3 reference values for comparison in tests/benches.
PAPER_TABLE3 = {
    "decompressor": {"area_um2": 7332.0, "delay_ns": 0.35, "power_mw": 15.86},
    "compressor": {"area_um2": 11624.0, "delay_ns": 0.67, "power_mw": 16.22},
}


def per_sm_overhead(
    num_collectors: int = 16, num_pipelines: int = 4
) -> tuple[float, float]:
    """(power W, area mm^2) added per SM: one decompressor per operand
    collector and one compressor per execution pipeline (§5.1).

    The paper reports 0.32 W (1.6%) and 0.16 mm^2 (0.7%) per SM.
    """
    comp = compressor_estimate()
    decomp = decompressor_estimate()
    power_w = (num_pipelines * comp.power_mw + num_collectors * decomp.power_mw) / 1e3
    area_mm2 = (num_pipelines * comp.area_um2 + num_collectors * decomp.area_um2) / 1e6
    return power_w, area_mm2
