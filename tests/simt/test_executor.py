"""Functional tests for the SIMT executor: semantics and divergence."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage, run_kernel

from tests.conftest import run_one_warp


def output(memory, count=32, base=0x3000):
    return memory.read_array(base, count)


class TestArithmetic:
    def test_integer_wraparound(self):
        b = KernelBuilder("wrap")
        x = b.mov(0xFFFFFFFF)
        y = b.iadd(x, 1)
        b.st_global(b.imad(b.tid(), 4, 0x3000), y)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 0

    def test_signed_division_semantics(self):
        b = KernelBuilder("div")
        x = b.mov(-7 & 0xFFFFFFFF)
        q = b.idiv(x, 2)
        r = b.irem(x, 2)
        b.st_global(b.imad(b.tid(), 4, 0x3000), q)
        b.st_global(b.imad(b.tid(), 4, 0x4000), r)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == (-3 & 0xFFFFFFFF)  # trunc toward zero
        assert output(memory, base=0x4000)[0] == (-1 & 0xFFFFFFFF)

    def test_division_by_zero_returns_all_ones(self):
        b = KernelBuilder("div0")
        q = b.idiv(b.mov(5), b.mov(0))
        b.st_global(b.imad(b.tid(), 4, 0x3000), q)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 0xFFFFFFFF

    def test_signed_comparisons(self):
        b = KernelBuilder("cmp")
        neg = b.mov(-5 & 0xFFFFFFFF)
        lt = b.setlt(neg, 3)  # -5 < 3 signed
        b.st_global(b.imad(b.tid(), 4, 0x3000), lt)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 1

    def test_selp(self):
        b = KernelBuilder("selp")
        tid = b.tid()
        odd = b.and_(tid, 1)
        chosen = b.selp(b.mov(111), b.mov(222), odd)
        b.st_global(b.imad(tid, 4, 0x3000), chosen)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        out = output(memory)
        assert out[0] == 222 and out[1] == 111

    def test_float_ops_are_float32(self):
        b = KernelBuilder("fp")
        x = b.fadd(b.fimm(0.1), b.fimm(0.2))
        b.st_global(b.imad(b.tid(), 4, 0x3000), x)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        value = output(memory)[0:1].view(np.float32)[0]
        assert value == np.float32(0.1) + np.float32(0.2)

    def test_fabs_fneg_bit_semantics(self):
        b = KernelBuilder("signs")
        x = b.fneg(b.fimm(1.0))
        y = b.fabs(x)
        b.st_global(b.imad(b.tid(), 4, 0x3000), x)
        b.st_global(b.imad(b.tid(), 4, 0x4000), y)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 0xBF800000
        assert output(memory, base=0x4000)[0] == 0x3F800000

    def test_conversions(self):
        b = KernelBuilder("cvt")
        f = b.i2f(b.mov(7))
        i = b.f2i(b.fmul(f, b.fimm(2.0)))
        b.st_global(b.imad(b.tid(), 4, 0x3000), i)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 14

    def test_shifts_mask_amount(self):
        b = KernelBuilder("shift")
        x = b.shl(b.mov(1), b.mov(33))  # 33 & 31 == 1
        b.st_global(b.imad(b.tid(), 4, 0x3000), x)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 2


class TestControlFlow:
    def test_if_else_divergence(self, divergent_kernel):
        memory = MemoryImage()
        run_one_warp(divergent_kernel, memory)
        out = output(memory)
        assert np.array_equal(out[::2], np.full(16, 10))
        assert np.array_equal(out[1::2], np.full(16, 20))

    def test_uniform_branch_takes_one_path(self):
        b = KernelBuilder("uniform")
        value = b.mov(0)
        cond = b.mov(1)
        with b.if_(cond) as branch:
            value = b.iadd(value, 5, dst=value)
            with branch.else_():
                value = b.iadd(value, 9, dst=value)
        b.st_global(b.imad(b.tid(), 4, 0x3000), value)
        memory = MemoryImage()
        trace = run_one_warp(b.finish(), memory)
        assert output(memory)[0] == 5
        # A uniform branch must not create divergent events.
        assert trace.divergent_fraction() == 0.0

    def test_nested_divergence_reconverges(self):
        b = KernelBuilder("nested")
        tid = b.tid()
        value = b.mov(0)
        outer = b.setlt(b.and_(tid, 3), 2)  # lanes 0,1 mod 4
        inner = b.seteq(b.and_(tid, 1), 0)  # even lanes
        with b.if_(outer) as br:
            with b.if_(inner):
                value = b.iadd(value, 1, dst=value)
            value = b.iadd(value, 10, dst=value)
            with br.else_():
                value = b.iadd(value, 100, dst=value)
        value = b.iadd(value, 1000, dst=value)  # all lanes after reconvergence
        b.st_global(b.imad(tid, 4, 0x3000), value)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        out = output(memory)
        assert out[0] == 1011  # outer+inner
        assert out[1] == 1010  # outer only
        assert out[2] == 1100  # else path
        assert out[3] == 1100

    def test_data_dependent_loop_trip_counts(self):
        b = KernelBuilder("ragged")
        tid = b.tid()
        bound = b.and_(tid, 3)
        count = b.mov(0)
        i = b.mov(0)
        with b.while_(lambda: b.setlt(i, bound)):
            count = b.iadd(count, 1, dst=count)
            i = b.iadd(i, 1, dst=i)
        b.st_global(b.imad(tid, 4, 0x3000), count)
        memory = MemoryImage()
        run_one_warp(b.finish(), memory)
        out = output(memory)
        assert np.array_equal(out[:4], np.array([0, 1, 2, 3]))

    def test_runaway_loop_detected(self):
        b = KernelBuilder("forever")
        one = b.mov(1)
        with b.while_(lambda: one):
            b.iadd(one, 0)
        kernel = b.finish()
        with pytest.raises(ExecutionError, match="exceeded"):
            run_kernel(
                kernel,
                LaunchConfig(1, 32),
                MemoryImage(),
                max_warp_instructions=1000,
            )


class TestLaunchShapes:
    def test_multi_cta(self, saxpy_kernel, simple_memory):
        run_kernel(saxpy_kernel, LaunchConfig(grid_dim=2, cta_dim=32), simple_memory)
        out = simple_memory.read_array(0x3000, 64)
        expected = 2 * np.arange(64) + 100 + np.arange(64)
        assert np.array_equal(out, expected.astype(np.uint32))

    def test_partial_tail_warp_lanes_inactive(self):
        b = KernelBuilder("partial")
        tid = b.tid()
        b.st_global(b.imad(tid, 4, 0x3000), b.iadd(tid, 1))
        memory = MemoryImage()
        run_kernel(b.finish(), LaunchConfig(grid_dim=1, cta_dim=40), memory)
        out = memory.read_array(0x3000, 48)
        assert np.array_equal(out[:40], np.arange(1, 41, dtype=np.uint32))
        assert not out[40:].any()  # inactive lanes never stored

    def test_warp_size_64(self, saxpy_kernel, simple_memory):
        trace = run_kernel(
            saxpy_kernel, LaunchConfig(grid_dim=1, cta_dim=64), simple_memory, warp_size=64
        )
        assert len(trace.warps) == 1
        assert trace.warp_size == 64

    def test_special_registers(self):
        b = KernelBuilder("specials")
        total = b.iadd(b.imul(b.ctaid(), b.ntid()), b.lane())
        b.st_global(b.imad(b.tid(), 4, 0x3000), total)
        memory = MemoryImage()
        run_kernel(b.finish(), LaunchConfig(grid_dim=2, cta_dim=32), memory)
        out = memory.read_array(0x3000, 64)
        assert np.array_equal(out, np.arange(64, dtype=np.uint32))


class TestSharedMemory:
    def test_shared_is_per_cta(self):
        b = KernelBuilder("shared")
        lane_addr = b.imul(b.lane(), 4)
        b.st_shared(lane_addr, b.ctaid())
        value = b.ld_shared(lane_addr)
        b.st_global(b.imad(b.tid(), 4, 0x3000), value)
        memory = MemoryImage()
        run_kernel(b.finish(), LaunchConfig(grid_dim=2, cta_dim=32), memory)
        out = memory.read_array(0x3000, 64)
        assert np.array_equal(out[:32], np.zeros(32, dtype=np.uint32))
        assert np.array_equal(out[32:], np.ones(32, dtype=np.uint32))


class TestTraceContents:
    def test_dst_values_snapshot_full_register(self, divergent_kernel):
        memory = MemoryImage()
        trace = run_one_warp(divergent_kernel, memory)
        writes = [e for e in trace.warps[0] if e.dst_values is not None]
        assert all(e.dst_values.shape == (32,) for e in writes)

    def test_branch_events_recorded(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage())
        from repro.isa.opcodes import Opcode

        branches = [e for e in trace.warps[0] if e.opcode is Opcode.BRA]
        assert len(branches) == 1
        assert branches[0].active_mask == 0xFFFFFFFF

    def test_varying_special_flagged(self):
        b = KernelBuilder("varying")
        b.tid()
        b.ctaid()
        trace = run_one_warp(b.finish(), MemoryImage())
        events = list(trace.warps[0])
        assert events[0].varying_special_src  # mov from %tid
        assert not events[1].varying_special_src  # mov from %ctaid

    def test_addresses_recorded_for_memory_ops(self, saxpy_kernel, simple_memory):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        from repro.isa.opcodes import OpCategory

        mem_events = [e for e in trace.warps[0] if e.category is OpCategory.MEM]
        assert len(mem_events) == 3
        assert all(e.addresses is not None for e in mem_events)
