"""Kernel disassembler: render a CFG as readable PTX-like text.

Useful when debugging workload proxies or builder lowering::

    print(disassemble(kernel))

    // kernel backprop: 7 blocks, 34 instructions, 19 registers
    B0:
        mov   r0, %tid
        imad  r1, r0, #0x4, #0x100000
        ...
        bra   r5 ? B1 : B2
    B1:
        ...
        jmp   B3
"""

from __future__ import annotations

from repro.isa.instructions import Imm, Instruction, Reg, SpecialReg
from repro.isa.kernel import Branch, Exit, Jump, Kernel


def _operand(operand) -> str:
    if isinstance(operand, Reg):
        return f"r{operand.index}"
    if isinstance(operand, Imm):
        return f"#{operand.value:#x}"
    if isinstance(operand, SpecialReg):
        return f"%{operand.value}"
    return repr(operand)


def _instruction(inst: Instruction) -> str:
    operands = []
    if inst.dst is not None:
        operands.append(f"r{inst.dst.index}")
    operands.extend(_operand(s) for s in inst.srcs)
    mnemonic = inst.opcode.value
    if operands:
        return f"{mnemonic:<10s} " + ", ".join(operands)
    return mnemonic


def _terminator(terminator) -> str:
    if isinstance(terminator, Branch):
        return (
            f"bra        r{terminator.cond.index} ? "
            f"B{terminator.taken} : B{terminator.not_taken}"
        )
    if isinstance(terminator, Jump):
        return f"jmp        B{terminator.target}"
    if isinstance(terminator, Exit):
        return "exit"
    return repr(terminator)


def disassemble(kernel: Kernel) -> str:
    """Render the whole kernel as text."""
    lines = [
        f"// kernel {kernel.name}: {len(kernel.blocks)} blocks, "
        f"{kernel.static_instruction_count()} instructions, "
        f"{kernel.num_registers} registers"
    ]
    for block in kernel.blocks:
        lines.append(f"B{block.block_id}:")
        for inst in block.instructions:
            lines.append(f"    {_instruction(inst)}")
        lines.append(f"    {_terminator(block.terminator)}")
    return "\n".join(lines)
