"""Cross-module integration tests: invariants of the full pipeline.

Each test runs the complete stack (builder -> executor -> tracker ->
architecture views -> timing -> power) on one benchmark and checks a
relationship the paper's argument depends on.
"""

import pytest

from repro.config import EVALUATED_ARCHITECTURES, ArchitectureConfig
from repro.power.accounting import PowerAccountant
from repro.scalar.architectures import process_classified, processed_statistics
from repro.scalar.tracker import trace_statistics
from repro.simt.executor import run_kernel
from repro.timing.gpu import simulate_architecture
from repro.workloads.registry import SCALES, build_workload

ARCHES = {arch.name: arch for arch in EVALUATED_ARCHITECTURES}


@pytest.fixture(scope="module")
def pipeline():
    """Run HS (divergent) and BP (scalar/SFU heavy) through everything."""
    results = {}
    for abbr in ("HS", "BP"):
        built = build_workload(abbr, scale="tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        from repro.scalar.tracker import classify_trace

        classified = classify_trace(trace, built.kernel.num_registers)
        per_arch = {}
        for arch in EVALUATED_ARCHITECTURES:
            processed = process_classified(classified, arch, trace.warp_size)
            timing = simulate_architecture(processed, arch)
            power = PowerAccountant(arch).account(processed, timing)
            per_arch[arch.name] = (processed, timing, power)
        results[abbr] = (trace, classified, per_arch)
    return results


class TestScalarExecutionMonotonicity:
    def test_capability_ordering(self, pipeline):
        """More capable architectures scalarize at least as much."""
        for abbr, (_, _, per_arch) in pipeline.items():
            counts = {
                name: processed_statistics(processed).scalar_executed
                for name, (processed, _, _) in per_arch.items()
            }
            assert counts["baseline"] == 0
            assert counts["alu_scalar"] <= counts["gscalar_no_divergent"]
            assert counts["gscalar_no_divergent"] <= counts["gscalar"]

    def test_exec_lane_ordering(self, pipeline):
        for abbr, (_, _, per_arch) in pipeline.items():
            lanes = {
                name: processed_statistics(processed).exec_lane_sum
                for name, (processed, _, _) in per_arch.items()
            }
            assert lanes["gscalar"] <= lanes["gscalar_no_divergent"]
            assert lanes["gscalar"] < lanes["baseline"]


class TestEnergyInvariants:
    def test_rf_energy_ordering(self, pipeline):
        """Compression never increases RF energy versus baseline."""
        for abbr, (_, _, per_arch) in pipeline.items():
            baseline_rf = per_arch["baseline"][2].breakdown.rf_pj
            gscalar_rf = per_arch["gscalar"][2].breakdown.rf_pj
            assert gscalar_rf < baseline_rf

    def test_total_instructions_match_timing(self, pipeline):
        for abbr, (trace, _, per_arch) in pipeline.items():
            for name, (processed, timing, _) in per_arch.items():
                stats = processed_statistics(processed)
                expected = stats.total_instructions + stats.extra_instructions
                assert timing.instructions == expected
                assert timing.useful_instructions == stats.total_instructions

    def test_gscalar_pipeline_latency_costs_cycles_or_equal(self, pipeline):
        for abbr, (_, _, per_arch) in pipeline.items():
            baseline_cycles = per_arch["baseline"][1].cycles
            gscalar_cycles = per_arch["gscalar"][1].cycles
            # +3 cycles cannot make the machine dramatically faster; allow
            # small scheduling noise in the other direction.
            assert gscalar_cycles > 0.93 * baseline_cycles

    def test_memory_traffic_is_architecture_independent(self, pipeline):
        for abbr, (_, _, per_arch) in pipeline.items():
            counts = {
                name: (
                    timing.memory_counts.l1_accesses,
                    timing.memory_counts.shared_accesses,
                )
                for name, (_, timing, _) in per_arch.items()
            }
            assert len(set(counts.values())) == 1


class TestStatisticsConsistency:
    def test_tracker_and_views_agree_on_totals(self, pipeline):
        for abbr, (trace, classified, per_arch) in pipeline.items():
            tracker_stats = trace_statistics(classified)
            assert tracker_stats.total_instructions == trace.total_instructions
            for name, (processed, _, _) in per_arch.items():
                view_stats = processed_statistics(processed)
                assert (
                    view_stats.total_instructions
                    == tracker_stats.total_instructions
                )

    def test_decompress_moves_only_on_compression_archs(self, pipeline):
        for abbr, (_, classified, per_arch) in pipeline.items():
            for name, (processed, _, _) in per_arch.items():
                stats = processed_statistics(processed)
                if name == "baseline":
                    assert stats.extra_instructions == 0


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self):
        def run_once():
            built = build_workload("SR1", scale="tiny")
            trace = run_kernel(built.kernel, built.launch, built.memory)
            from repro.scalar.tracker import classify_trace

            classified = classify_trace(trace, built.kernel.num_registers)
            arch = ArchitectureConfig.gscalar()
            processed = process_classified(classified, arch, trace.warp_size)
            timing = simulate_architecture(processed, arch)
            report = PowerAccountant(arch).account(processed, timing)
            return timing.cycles, report.total_power_w

        assert run_once() == run_once()
