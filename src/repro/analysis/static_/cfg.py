"""CFG structural lint: reachability and reconvergence shape.

:class:`repro.isa.kernel.Kernel` refuses outright-broken graphs at
construction, but shapes that are *legal* can still be performance or
correctness hazards for a SIMT machine:

* a branch whose immediate post-dominator is the virtual exit never
  reconverges — a divergent warp stays split for the rest of the
  kernel, the §1 worst case (``GS-W102``);
* a two-way branch whose arms are the same block is a conditional that
  cannot diverge and should be a jump (``GS-I203``);
* unreachable blocks (possible when a CFG is mutated after validation)
  silently skew static statistics (``GS-W103``).
"""

from __future__ import annotations

from repro.isa.kernel import EXIT_NODE, Branch

from repro.analysis.static_.diagnostics import Diagnostic
from repro.analysis.static_.framework import AnalysisContext, LintPass


class CfgStructurePass(LintPass):
    """Structural checks over the block graph (GS-W102/GS-W103/GS-I203)."""

    name = "cfg-structure"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        kernel = ctx.kernel
        findings: list[Diagnostic] = []

        reachable = {0}
        worklist = [0]
        while worklist:
            node = worklist.pop()
            for successor in kernel.blocks[node].successors():
                if successor != EXIT_NODE and successor not in reachable:
                    reachable.add(successor)
                    worklist.append(successor)
        for block in kernel.blocks:
            if block.block_id not in reachable:
                findings.append(
                    Diagnostic(
                        rule="GS-W103",
                        kernel=kernel.name,
                        message="block is unreachable from the entry block",
                        block_id=block.block_id,
                    )
                )

        for block in kernel.blocks:
            terminator = block.terminator
            if not isinstance(terminator, Branch):
                continue
            if terminator.taken == terminator.not_taken:
                findings.append(
                    Diagnostic(
                        rule="GS-I203",
                        kernel=kernel.name,
                        message=(
                            "branch arms are identical "
                            f"(both target block {terminator.taken}); "
                            "cannot diverge, could be a jump"
                        ),
                        block_id=block.block_id,
                    )
                )
                continue
            if block.block_id in reachable and ctx.ipdom[block.block_id] == EXIT_NODE:
                findings.append(
                    Diagnostic(
                        rule="GS-W102",
                        kernel=kernel.name,
                        message=(
                            "branch arms never reconverge before kernel exit; "
                            "a divergent warp stays split to the end"
                        ),
                        block_id=block.block_id,
                    )
                )
        return findings
