"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_static_tables_run(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert main(["table2"]) == 0
        assert "backprop" in capsys.readouterr().out
        assert main(["table3"]) == 0
        assert "compressor" in capsys.readouterr().out

    def test_figure_at_tiny_scale(self, capsys):
        assert main(["fig1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "LBM" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_experiment_list_is_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig8", "fig9", "fig10", "fig11", "fig12",
            "table1", "table2", "table3", "extras", "scorecard", "suite",
            "staticdyn", "stalls",
        }

    def test_zero_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--jobs", "0"])


class TestLintCommand:
    def test_all_workloads_lint_clean_at_error(self, capsys):
        assert main(["lint", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "GS-I201" in out  # scalarization summary per kernel

    def test_single_kernel_selection(self, capsys):
        assert main(["lint", "BP", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out
        assert "sgemm" not in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(["lint", "MM", "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        report = payload[0]
        assert report["kernel"] == "sgemm"
        assert report["counts"]["error"] == 0
        assert all("rule" in d for d in report["diagnostics"])

    def test_fail_on_warning_escalates(self, capsys):
        # LBM carries structural warnings; gating on warnings fails it.
        assert main(["lint", "LBM", "--scale", "tiny"]) == 0
        capsys.readouterr()
        assert main(["lint", "LBM", "--scale", "tiny",
                     "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_tight_register_budget_fails(self, capsys):
        assert main(["lint", "ST", "--scale", "tiny",
                     "--max-registers", "8"]) == 1
        assert "GS-E003" in capsys.readouterr().out

    def test_min_severity_hides_info(self, capsys):
        assert main(["lint", "MM", "--scale", "tiny",
                     "--min-severity", "warning"]) == 0
        out = capsys.readouterr().out
        assert "GS-I" not in out
        # The width pass's narrow-register warnings still show.
        assert "GS-W104" in out

    def test_unknown_kernel_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["lint", "NOPE"])

    def test_flat_json_format_shape_is_pinned(self, capsys):
        import json

        assert main(["lint", "MM", "--scale", "tiny",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload
        # One flat object per diagnostic with exactly these keys — CI
        # artifact consumers parse this shape.
        for entry in payload:
            assert set(entry) == {
                "rule", "severity", "kernel", "block", "instruction",
                "message",
            }
        assert all(entry["kernel"] == "sgemm" for entry in payload)
        rules = {entry["rule"] for entry in payload}
        assert "GS-I204" in rules  # the compressibility report is on

    def test_format_text_is_default(self, capsys):
        assert main(["lint", "MM", "--scale", "tiny",
                     "--format", "text"]) == 0
        out = capsys.readouterr().out
        with pytest.raises(Exception):
            import json

            json.loads(out)

    def test_baseline_round_trip_flips_gate(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        # BP carries GS-W104 narrow-register warnings: gating on
        # warnings fails without a baseline...
        assert main(["lint", "BP", "--scale", "tiny",
                     "--fail-on", "warning"]) == 1
        capsys.readouterr()
        assert main(["lint", "BP", "--scale", "tiny",
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # ...and passes once the recorded findings are suppressed.
        assert main(["lint", "BP", "--scale", "tiny",
                     "--baseline", str(baseline),
                     "--fail-on", "warning"]) == 0
        err = capsys.readouterr().err
        assert "baselined" in err

    def test_missing_baseline_file_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "BP", "--scale", "tiny",
                  "--baseline", "/nonexistent/baseline.json"])


class TestStaticdynWidths:
    def test_widths_gate_is_sound_at_tiny_scale(self, capsys):
        assert main(["staticdyn", "--widths", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "SOUND" in out and "UNSOUND" not in out
        assert "over-claims" in out

    def test_widths_flag_requires_staticdyn(self):
        with pytest.raises(SystemExit):
            main(["tables", "--widths", "--scale", "tiny"])


class TestCacheAndJobs:
    def test_cache_dir_populates_and_replays(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["fig1", "--scale", "tiny", "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr().out
        assert any(cache.glob("*.v5.json"))
        assert main(["fig1", "--scale", "tiny", "--cache-dir", str(cache)]) == 0
        assert capsys.readouterr().out == first

    def test_stats_json_counts_cold_and_warm(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        stats_path = tmp_path / "stats.json"
        argv = [
            "fig1", "--scale", "tiny", "--jobs", "2",
            "--cache-dir", str(cache), "--stats-json", str(stats_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        cold = json.loads(stats_path.read_text())
        assert cold["jobs"] == 2
        assert cold["counters"]["trace_executions"] == 17
        assert "fig1" in cold["experiment_seconds"]
        assert main(argv) == 0
        capsys.readouterr()
        warm = json.loads(stats_path.read_text())
        assert warm["counters"].get("trace_executions", 0) == 0
        assert warm["counters"]["trace_cache_hits"] >= 17

    def test_parallel_output_matches_serial(self, tmp_path, capsys):
        assert main(["fig10", "--scale", "tiny"]) == 0
        serial = capsys.readouterr().out
        cache = tmp_path / "cache"
        argv = [
            "fig10", "--scale", "tiny", "--jobs", "2", "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        assert capsys.readouterr().out == serial
        assert any(cache.glob("*_w64.v5.json"))


class TestCacheCommand:
    def test_stats_reports_stage_inventory(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        assert main(["fig1", "--scale", "tiny", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stages"]["trace"]["entries"] == 17
        assert report["stages"]["trace"]["bytes"] > 0
        assert report["total_bytes"] > 0
        assert report["orphans"]["tmp_files"] == 0

    def test_sweep_reclaims_debris(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / "half-written.123.tmp").write_bytes(b"x" * 10)
        argv = ["cache", "sweep", "--cache-dir", str(cache), "--max-age", "0"]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tmp_files"] == 1
        assert report["bytes_freed"] == 10
        assert list(cache.iterdir()) == []

    def test_json_written(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        cache = tmp_path / "cache"
        cache.mkdir()
        argv = ["cache", "stats", "--cache-dir", str(cache), "--json", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["total_bytes"] == 0

    def test_cache_dir_required(self):
        with pytest.raises(SystemExit):
            main(["cache", "stats"])


class TestTimelineCommand:
    def test_attribution_table_printed(self, capsys):
        assert main(["timeline", "bp", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "BP on baseline" in out
        for cause in ("scoreboard", "branch_shadow", "barrier",
                      "stream_exhausted", "collectors_full", "bank_conflict"):
            assert cause in out

    def test_compare_engines_agree(self, capsys):
        argv = ["timeline", "hs", "--scale", "tiny", "--compare-engines"]
        assert main(argv) == 0
        assert "engines agree" in capsys.readouterr().err

    def test_exports_written(self, tmp_path, capsys):
        import json

        trace = tmp_path / "bp.trace.json"
        prom = tmp_path / "bp.prom"
        argv = [
            "timeline", "bp", "--scale", "tiny",
            "--trace-out", str(trace), "--metrics-out", str(prom),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert any(e.get("cat") == "issue" for e in events)
        assert any(e["name"] == "thread_name" for e in events)
        text = prom.read_text()
        assert "repro_sm_stall_scheduler_cycles_total" in text
        assert "repro_timeline_issued_total" in text

    def test_arch_and_engine_selection(self, capsys):
        argv = [
            "timeline", "bp", "--scale", "tiny",
            "--arch", "gscalar", "--sm-engine", "cycle",
        ]
        assert main(argv) == 0
        assert "gscalar (cycle engine)" in capsys.readouterr().out

    def test_bad_capacity_rejected(self):
        with pytest.raises(SystemExit):
            main(["timeline", "bp", "--capacity", "0"])

    def test_bad_interval_rejected(self):
        with pytest.raises(SystemExit):
            main(["timeline", "bp", "--interval-cycles", "0"])
