"""Unit tests for instruction and operand representations."""

import pytest

from repro.errors import KernelValidationError
from repro.isa.instructions import Imm, Instruction, Reg, SpecialReg
from repro.isa.opcodes import Opcode


class TestReg:
    def test_repr(self):
        assert repr(Reg(5)) == "r5"

    def test_negative_index_rejected(self):
        with pytest.raises(KernelValidationError):
            Reg(-1)

    def test_equality_and_hash(self):
        assert Reg(3) == Reg(3)
        assert hash(Reg(3)) == hash(Reg(3))
        assert Reg(3) != Reg(4)


class TestImm:
    def test_wraps_to_unsigned(self):
        assert Imm(-1).value == 0xFFFFFFFF

    def test_out_of_range_rejected(self):
        with pytest.raises(KernelValidationError):
            Imm(2**32)
        with pytest.raises(KernelValidationError):
            Imm(-(2**31) - 1)

    def test_float_round_trip(self):
        imm = Imm.from_float(3.5)
        assert imm.as_float() == 3.5

    def test_float_one_is_known_pattern(self):
        assert Imm.from_float(1.0).value == 0x3F800000

    def test_float_negative_zero(self):
        assert Imm.from_float(-0.0).value == 0x80000000


class TestInstruction:
    def test_wrong_arity_rejected(self):
        with pytest.raises(KernelValidationError):
            Instruction(opcode=Opcode.IADD, dst=Reg(0), srcs=(Reg(1),))

    def test_missing_destination_rejected(self):
        with pytest.raises(KernelValidationError):
            Instruction(opcode=Opcode.IADD, dst=None, srcs=(Reg(1), Reg(2)))

    def test_store_takes_no_destination(self):
        with pytest.raises(KernelValidationError):
            Instruction(opcode=Opcode.ST_GLOBAL, dst=Reg(0), srcs=(Reg(1), Reg(2)))

    def test_control_opcode_rejected_as_body(self):
        with pytest.raises(KernelValidationError):
            Instruction(opcode=Opcode.BRA, dst=None, srcs=(Reg(0),))

    def test_source_registers_filters_non_registers(self):
        inst = Instruction(
            opcode=Opcode.IMAD,
            dst=Reg(0),
            srcs=(Reg(1), Imm(4), SpecialReg.TID),
        )
        assert inst.source_registers == (Reg(1),)

    def test_valid_instruction_reprs(self):
        inst = Instruction(opcode=Opcode.IADD, dst=Reg(0), srcs=(Reg(1), Imm(2)))
        assert "iadd" in repr(inst)
        assert "r0" in repr(inst)
