"""Exporter tests: Chrome trace, Prometheus text, summary, sinks."""

import io
import json
import os

from repro.obs.chrome_trace import chrome_trace, write_chrome_trace
from repro.obs.prometheus import prometheus_text, write_prometheus
from repro.obs.sinks import JsonlSink, NullSink
from repro.obs.summary import summary_table
from repro.obs.telemetry import SpanEvent, Telemetry


def _registry_with_spans():
    t = Telemetry()
    with t.span("outer", cat="stage", tid=1, benchmark="BP"):
        with t.span("inner", cat="warp", tid=2):
            pass
    return t


class TestChromeTrace:
    def test_structure_and_phases(self):
        trace = chrome_trace(_registry_with_spans())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        phases = sorted({event["ph"] for event in trace["traceEvents"]})
        assert phases == ["M", "X"]

    def test_timestamps_rebased_to_zero(self):
        trace = chrome_trace(_registry_with_spans())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(event["ts"] for event in complete) == 0

    def test_span_fields_carried_through(self):
        trace = chrome_trace(_registry_with_spans())
        by_name = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        assert by_name["outer"]["cat"] == "stage"
        assert by_name["outer"]["tid"] == 1
        assert by_name["outer"]["args"] == {"benchmark": "BP"}
        assert by_name["inner"]["cat"] == "warp"

    def test_current_process_labelled_parent(self):
        t = Telemetry()
        # A merged worker span arriving before any parent span must not
        # steal the "parent" label from the exporting process.
        t.spans.append(SpanEvent("w", "stage", 10, 5, pid=99_999_999, tid=1))
        with t.span("p", cat="stage"):
            pass
        trace = chrome_trace(t)
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[99_999_999].startswith("repro worker")
        assert names[os.getpid()].startswith("repro parent")

    def test_written_file_is_valid_json(self, tmp_path):
        path = write_chrome_trace(_registry_with_spans(), tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestPrometheus:
    def test_counter_exposition(self):
        t = Telemetry()
        t.count("scalar_class", 7, **{"class": "alu_scalar"})
        text = prometheus_text(t)
        assert "# TYPE repro_scalar_class_total counter" in text
        assert 'repro_scalar_class_total{class="alu_scalar"} 7' in text

    def test_counter_total_suffix_not_doubled(self):
        t = Telemetry()
        t.count("bytes_total", 3)
        assert "repro_bytes_total 3" in prometheus_text(t)
        assert "total_total" not in prometheus_text(t)

    def test_histogram_cumulative_buckets(self):
        t = Telemetry()
        t.observe("depth", 1, count=2)
        t.observe("depth", 3, count=1)
        text = prometheus_text(t)
        assert 'repro_depth_bucket{le="1"} 2' in text
        assert 'repro_depth_bucket{le="3"} 3' in text
        assert 'repro_depth_bucket{le="+Inf"} 3' in text
        assert "repro_depth_sum 5" in text
        assert "repro_depth_count 3" in text

    def test_label_value_escaping(self):
        t = Telemetry()
        t.count("odd", kernel='quo"te')
        assert 'kernel="quo\\"te"' in prometheus_text(t)

    def test_metric_name_sanitized(self):
        t = Telemetry()
        t.count("weird-name.here")
        assert "repro_weird_name_here_total 1" in prometheus_text(t)

    def test_write_prometheus(self, tmp_path):
        t = Telemetry()
        t.count("hits")
        path = write_prometheus(t, tmp_path / "m.prom")
        assert "repro_hits_total 1" in path.read_text()

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(Telemetry()) == ""


class TestSummary:
    def test_sections_present(self):
        t = _registry_with_spans()
        t.count("scalar_class", 7, **{"class": "alu_scalar"})
        t.observe("depth", 2)
        text = summary_table(t)
        assert "Counters" in text
        assert "Histograms" in text
        assert "Spans" in text
        assert "scalar_class" in text
        assert "class=alu_scalar" in text

    def test_series_overflow_is_rolled_up(self):
        t = Telemetry()
        for bank in range(30):
            t.count("banks", bank + 1, bank=bank)
        text = summary_table(t, max_rows_per_metric=4)
        assert "... 26 more series" in text

    def test_empty_registry(self):
        assert summary_table(Telemetry()) == "telemetry registry is empty"


class TestSinks:
    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit({"a": 1})
        sink.close()

    def test_jsonl_sink_streams_spans(self):
        buffer = io.StringIO()
        t = Telemetry(sink=JsonlSink(buffer))
        with t.span("stage", cat="test"):
            pass
        t.event({"kind": "marker"})
        t.close()
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [line["type"] for line in lines] == ["span", "event"]
        assert lines[0]["name"] == "stage"
        assert lines[1]["kind"] == "marker"

    def test_jsonl_sink_owns_path_handle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"n": 1})
        sink.close()
        assert json.loads(path.read_text()) == {"n": 1}
        assert sink.emitted == 1
