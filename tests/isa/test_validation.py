"""Unit tests for the extra kernel validation passes."""

import pytest

from repro.errors import KernelValidationError
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction, Reg
from repro.isa.kernel import BasicBlock, Exit, Kernel
from repro.isa.opcodes import Opcode
from repro.isa.validation import validate_kernel


def test_clean_kernel_passes():
    b = KernelBuilder("clean")
    x = b.mov(1)
    b.iadd(x, 2)
    report = validate_kernel(b.finish())
    assert report.num_instructions == 2
    assert report.never_written == set()


def test_undefined_read_rejected():
    kernel = Kernel(
        name="undef",
        blocks=[
            BasicBlock(
                0,
                [Instruction(opcode=Opcode.IADD, dst=Reg(0), srcs=(Reg(5), Reg(6)))],
                Exit(),
            )
        ],
    )
    with pytest.raises(KernelValidationError, match="read"):
        validate_kernel(kernel)


def test_register_budget_enforced():
    b = KernelBuilder("pressure")
    regs = [b.mov(i) for i in range(70)]
    b.iadd(regs[0], regs[1])
    kernel = b.finish()
    with pytest.raises(KernelValidationError, match="budget"):
        validate_kernel(kernel, max_registers=64)
    report = validate_kernel(kernel, max_registers=128)
    assert report.num_registers == 71


def test_report_tracks_read_and_written_sets():
    b = KernelBuilder("sets")
    x = b.mov(1)
    y = b.iadd(x, 2)
    b.st_global(b.mov(0x100), y)
    report = validate_kernel(b.finish())
    assert x.index in report.written_registers
    assert x.index in report.read_registers
