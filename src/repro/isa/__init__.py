"""The PTX-like SIMT instruction set: opcodes, instructions, kernels.

Public surface:

* :class:`~repro.isa.opcodes.Opcode` / :class:`~repro.isa.opcodes.OpCategory`
* :class:`~repro.isa.instructions.Instruction`,
  :class:`~repro.isa.instructions.Reg`,
  :class:`~repro.isa.instructions.Imm`,
  :class:`~repro.isa.instructions.SpecialReg`
* :class:`~repro.isa.kernel.Kernel` and friends
* :class:`~repro.isa.builder.KernelBuilder` — the way kernels are written
"""

from repro.isa.builder import KernelBuilder
from repro.isa.disasm import disassemble
from repro.isa.instructions import Imm, Instruction, Reg, SpecialReg
from repro.isa.kernel import (
    EXIT_NODE,
    BasicBlock,
    Branch,
    Exit,
    Jump,
    Kernel,
    immediate_postdominators,
)
from repro.isa.liveness import (
    BlockLiveness,
    BranchRegion,
    block_liveness,
    branch_regions,
)
from repro.isa.opcodes import (
    LONG_LATENCY_ALU,
    SFU_ENERGY_FACTOR,
    OpCategory,
    Opcode,
    category_of,
    has_destination,
    is_control,
    is_load,
    is_sfu,
    is_store,
    source_arity,
)
from repro.isa.validation import KernelReport, validate_kernel

__all__ = [
    "EXIT_NODE",
    "LONG_LATENCY_ALU",
    "SFU_ENERGY_FACTOR",
    "BasicBlock",
    "BlockLiveness",
    "BranchRegion",
    "Branch",
    "Exit",
    "Imm",
    "Instruction",
    "Jump",
    "Kernel",
    "KernelBuilder",
    "KernelReport",
    "OpCategory",
    "Opcode",
    "Reg",
    "SpecialReg",
    "block_liveness",
    "branch_regions",
    "category_of",
    "disassemble",
    "has_destination",
    "immediate_postdominators",
    "is_control",
    "is_load",
    "is_sfu",
    "is_store",
    "source_arity",
    "validate_kernel",
]
