"""``mri-grid`` (MG) proxy.

Signature reproduced: low full-scalar population but many 3-byte and
2-byte register values (§5.3: with MV, the benchmark where byte-wise
compression beats the scalar-only RF by >40%).  Gridding: each thread
loads sample coordinates that share their top bytes (samples cluster in
k-space), computes bin indices (affine), and scatters weighted
contributions — memory-intensive, light on broadcast constants.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    INPUT_C,
    OUTPUT_A,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1414

_GRID = 0x60_0000


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the MG proxy at the given scale."""
    b = KernelBuilder("mri_grid")
    tid = b.tid()
    flag = load_thread_flag(b, tid)
    on_edge = b.setne(flag, 0)

    with b.for_range(0, scale.inner_iterations) as pass_index:
        sample_base = b.imad(pass_index, 4, 0)
        coord = b.ld_global(
            b.imad(b.iadd(tid, sample_base), 4, INPUT_A)
        )  # 2-byte-similar coordinates
        weight = b.ld_global(
            b.imad(b.iadd(tid, sample_base), 4, INPUT_B)
        )  # 3-byte-similar weights
        density = b.ld_global(
            b.imad(b.iadd(tid, sample_base), 4, INPUT_C)
        )
        # Bin computation: per-thread shifts keep top bytes similar.
        bin_index = b.shr(coord, 20)
        bin_offset = b.and_(coord, 0xFFF)
        contribution = b.imul(weight, density)
        spread = b.iadd(contribution, bin_offset)
        with b.if_(on_edge):
            # Edge samples fold back (small divergent population).
            spread = b.shr(spread, 1, dst=spread)
        grid_addr = b.imad(bin_index, 4, _GRID)
        b.st_global(grid_addr, spread)  # scatter
        b.st_global(thread_element_addr(b, tid, OUTPUT_A), contribution)

    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    count = total_threads + scale.inner_iterations + 1
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.shared_prefix_words(count, 2, _SEED, base=0x3F400000)
    )
    memory.bind_array(
        INPUT_B, datagen.shared_prefix_words(count, 3, _SEED + 1, base=0x00014000)
    )
    memory.bind_array(
        INPUT_C, datagen.shared_prefix_words(count, 3, _SEED + 2, base=0x00028000)
    )
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.25, _SEED + 3),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="k-space gridding scatter with partial-byte similarity",
    )
