"""Functional memory for the trace-driven executor.

:class:`MemoryImage` models a flat, word-addressed (4-byte) address
space backed by lazily-allocated pages of uint32.  Workloads bind numpy
arrays at base addresses before launch and read results back after;
loads and stores take per-lane byte addresses and a lane mask.

Unwritten memory reads as zero by default (``strict=False``) or raises
(``strict=True``) — strict mode is useful in tests to catch address
bugs in workload kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryError_

_PAGE_WORDS = 1 << 14  # 64 KB pages


class MemoryImage:
    """A sparse 32-bit word-addressable functional memory."""

    def __init__(self, strict: bool = False):
        self._pages: dict[int, np.ndarray] = {}
        self._strict = strict

    def _page_for(self, page_index: int, create: bool) -> np.ndarray | None:
        page = self._pages.get(page_index)
        if page is None and create:
            page = np.zeros(_PAGE_WORDS, dtype=np.uint32)
            self._pages[page_index] = page
        return page

    # ------------------------------------------------------------------
    # Array binding (workload setup / teardown).
    # ------------------------------------------------------------------
    def bind_array(self, base_addr: int, values: np.ndarray) -> None:
        """Copy a 1-D array of 32-bit values to ``base_addr`` (bytes).

        Float arrays are stored as their IEEE-754 bit patterns.
        """
        if base_addr % 4 != 0:
            raise MemoryError_(f"base address {base_addr:#x} is not word-aligned")
        flat = np.ascontiguousarray(values).reshape(-1)
        if flat.dtype == np.float32:
            words = flat.view(np.uint32)
        elif flat.dtype in (np.uint32, np.int32):
            words = flat.astype(np.uint32, copy=False).view(np.uint32)
        else:
            raise MemoryError_(f"cannot bind array of dtype {flat.dtype}")
        word_addr = base_addr // 4
        for offset, value in enumerate(words):
            self._store_word(word_addr + offset, int(value))

    def read_array(self, base_addr: int, count: int, dtype: type = np.uint32) -> np.ndarray:
        """Read ``count`` consecutive words starting at ``base_addr``."""
        if base_addr % 4 != 0:
            raise MemoryError_(f"base address {base_addr:#x} is not word-aligned")
        word_addr = base_addr // 4
        out = np.empty(count, dtype=np.uint32)
        for offset in range(count):
            out[offset] = self._load_word(word_addr + offset)
        if dtype == np.float32:
            return out.view(np.float32)
        return out.astype(dtype)

    # ------------------------------------------------------------------
    # Word-level access used by the executor.
    # ------------------------------------------------------------------
    def _store_word(self, word_addr: int, value: int) -> None:
        page = self._page_for(word_addr // _PAGE_WORDS, create=True)
        assert page is not None
        page[word_addr % _PAGE_WORDS] = value

    def _load_word(self, word_addr: int) -> int:
        page = self._page_for(word_addr // _PAGE_WORDS, create=False)
        if page is None:
            if self._strict:
                raise MemoryError_(f"read of unmapped word address {word_addr * 4:#x}")
            return 0
        return int(page[word_addr % _PAGE_WORDS])

    # ------------------------------------------------------------------
    # Warp-wide vector access.
    # ------------------------------------------------------------------
    def load(self, byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Gather one word per active lane; inactive lanes return zero."""
        values = np.zeros(byte_addrs.shape[0], dtype=np.uint32)
        word_addrs = byte_addrs >> 2
        for lane in np.flatnonzero(mask):
            values[lane] = self._load_word(int(word_addrs[lane]))
        return values

    def store(self, byte_addrs: np.ndarray, values: np.ndarray, mask: np.ndarray) -> None:
        """Scatter one word per active lane.

        Lanes are written in ascending lane order, so intra-warp address
        collisions resolve to the highest-numbered lane, matching the
        "one of the colliding writes wins" guarantee of real hardware.
        """
        word_addrs = byte_addrs >> 2
        for lane in np.flatnonzero(mask):
            self._store_word(int(word_addrs[lane]), int(values[lane]))

    @property
    def mapped_bytes(self) -> int:
        """Bytes of backing store currently allocated."""
        return len(self._pages) * _PAGE_WORDS * 4
