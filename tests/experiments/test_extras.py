"""Tests for the §5-text extras experiment."""

import pytest

from repro.experiments import extras
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_bar_chart


@pytest.fixture(scope="module")
def data():
    return extras.compute(ExperimentRunner(scale="tiny"))


class TestExtras:
    def test_compression_ratios_track_each_other(self, data):
        assert data.ours_ratio > 1.5
        assert data.bdi_ratio > 1.5
        # Ours slightly ahead, as in §5.3.
        assert data.ours_ratio > data.bdi_ratio
        assert data.ours_ratio / data.bdi_ratio < 1.3

    def test_move_overhead_bands(self, data):
        assert 0.0 < data.decompress_move_overhead < 0.06
        assert data.decompress_move_overhead_compiler <= data.decompress_move_overhead

    def test_compiler_shortfall(self, data):
        assert data.static_scalar_fraction < data.dynamic_scalar_fraction
        assert 0.05 < data.compiler_shortfall < 0.60

    def test_address_width_direction(self, data):
        assert data.address_savings_64bit > data.address_savings_32bit

    def test_codec_ratio_in_paper_band(self, data):
        assert 0.15 <= data.codec_cost_ratio <= 0.35

    def test_sidecar_constants(self, data):
        assert data.sidecar_energy_fraction == 0.052
        assert 0.05 < data.sidecar_area_fraction < 0.09

    def test_render(self, data):
        text = extras.render(data)
        assert "compression ratio" in text
        assert "compiler" in text


class TestBarChart:
    def test_basic_render(self):
        chart = render_bar_chart(
            ["A", "B"],
            {"x": [1.0, 0.5], "y": [0.25, 0.75]},
            width=20,
            title="T",
        )
        assert chart.startswith("T")
        assert "#" * 20 in chart  # the peak bar is full width
        assert "0.25" in chart

    def test_reference_tick(self):
        chart = render_bar_chart(["A"], {"x": [0.5]}, width=10, reference=1.0)
        assert "|" in chart

    def test_empty_series(self):
        assert render_bar_chart([], {}, title="nothing") == "nothing"
