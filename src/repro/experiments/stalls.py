"""Stall-cause attribution across the benchmark suite (not in the paper).

For every benchmark, attributes each idle scheduler-cycle of the SM
timing model to one of the six stall causes
(:data:`repro.timing.sm.STALL_CAUSES`) on the baseline GPU and on full
G-Scalar.  The columns are percentages of the SM's *issue slots*
(``cycles × schedulers``), so each row's issue column plus its six
stall columns sums to 100% — the accounting invariant both timing
engines maintain and the differential suite pins bit-identically.

This is the batch counterpart of ``repro timeline``, which drills into
one benchmark with the per-warp flight recorder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ArchitectureConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.timing.sm import STALL_CAUSES


@dataclass
class StallRow:
    abbr: str
    arch: str
    cycles: int
    schedulers: int
    issued: int
    stalls: dict[str, int]  # cause name -> idle scheduler-cycles

    @property
    def slots(self) -> int:
        """Total issue slots (``cycles × schedulers``)."""
        return self.cycles * self.schedulers

    def issue_fraction(self) -> float:
        return self.issued / self.slots if self.slots else 0.0

    def stall_fraction(self, cause: str) -> float:
        return self.stalls[cause] / self.slots if self.slots else 0.0


@dataclass
class StallData:
    rows: list[StallRow]
    arch_names: tuple[str, ...]

    def average_stall_fraction(self, arch: str, cause: str) -> float:
        rows = [r for r in self.rows if r.arch == arch]
        if not rows:
            return 0.0
        return sum(r.stall_fraction(cause) for r in rows) / len(rows)


_ARCHES = (ArchitectureConfig.baseline(), ArchitectureConfig.gscalar())


def compute(runner: ExperimentRunner) -> StallData:
    """Attribute every idle scheduler-cycle, baseline vs G-Scalar."""
    rows = []
    for abbr in runner.benchmark_names():
        for arch in _ARCHES:
            timing = runner.timing(abbr, arch)
            rows.append(
                StallRow(
                    abbr=abbr,
                    arch=arch.name,
                    cycles=timing.cycles,
                    schedulers=len(timing.stalls_per_scheduler)
                    or runner.config.schedulers_per_sm,
                    issued=sum(timing.issued_per_scheduler),
                    stalls=timing.stalls.as_dict(),
                )
            )
    return StallData(rows=rows, arch_names=tuple(a.name for a in _ARCHES))


_HEADERS = (
    "bench",
    "arch",
    "cycles",
    "issue%",
    "scoreboard%",
    "branch%",
    "barrier%",
    "drain%",
    "coll.full%",
    "bank.conf%",
)


def _pct(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}"


def render(data: StallData) -> str:
    """The attribution as a text table (percent of issue slots)."""
    table_rows = []
    for row in data.rows:
        table_rows.append(
            (
                row.abbr,
                row.arch,
                str(row.cycles),
                _pct(row.issue_fraction()),
            )
            + tuple(_pct(row.stall_fraction(cause)) for cause in STALL_CAUSES)
        )
    for arch in data.arch_names:
        arch_rows = [r for r in data.rows if r.arch == arch]
        if not arch_rows:
            continue
        mean_issue = sum(r.issue_fraction() for r in arch_rows) / len(arch_rows)
        table_rows.append(
            ("AVG", arch, "", _pct(mean_issue))
            + tuple(
                _pct(data.average_stall_fraction(arch, cause))
                for cause in STALL_CAUSES
            )
        )
    body = render_table(
        list(_HEADERS),
        table_rows,
        title="Stall attribution: % of issue slots per cause "
        "(issue + causes = 100)",
    )
    return body + (
        "\ncauses: scoreboard=RAW/WAW wait, branch=post-branch shadow, "
        "barrier=bar.sync wait,\n        drain=instruction stream exhausted, "
        "coll.full=operand collectors full,\n        bank.conf=RF bank-conflict "
        "serialization backpressure"
    )
