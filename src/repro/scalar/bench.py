"""Pipeline microbenchmarks: batch vs per-event engines.

Two benchmark modes, both differential (the engines' outputs are
checked for equality before any timing, so a reported speedup can
never come from a divergent result) and both warmed up before timing
(every timed function runs ``--warmup`` untimed iterations first, so a
cold numpy/allocator path or CI jitter cannot fail a threshold
spuriously):

* **classify** (default): times the classification stage alone —
  :func:`repro.scalar.tracker.classify_trace` (per-event reference)
  vs :func:`repro.scalar.batch.classify_trace_batch` (vectorized).
  The committed ``BENCH_classify.json`` is this output.
* **--streaming**: measures the chunk-streaming pipeline's throughput
  and *memory boundedness* on the replicated synthetic stream: the
  streamed arm (:class:`repro.experiments.streaming.StreamingPipeline`
  in aggregates-only mode) and the whole-trace arm (materialize +
  classify + interpret) each run in a child process, optionally under
  a hard ``RLIMIT_AS`` ceiling (``--rss-limit-mb``) — at the large
  tier the streamed arm completes where the whole-trace arm dies of
  :class:`MemoryError`.  Reports events/s, peak RSS and peak
  bytes-in-flight per arm; ``speedup`` is the memory ratio (whole-arm
  over streamed-arm peak), so ``--min-speedup`` gates boundedness.
  The committed ``BENCH_streaming.json`` is this output.
* **--pipeline**: times the whole classify → interpret → lower →
  **simulate** → account spine over all four paper architectures —
  reference path (``classify_trace`` + ``process_classified`` +
  ``build_timing_ops`` + the cycle-level ``SmSimulator`` +
  ``PowerAccountant.account``) vs fast path (``classify_columnar_
  batch`` + ``ClassifiedColumns`` + ``process_columns`` +
  ``build_timing_ops_columns`` + the event-driven ``EventSmSimulator``
  + ``account_columns``).  The SM simulation is *inside* the timed
  region (``sm_simulation_excluded: false``): each engine pair runs
  its own SM engine, and the equivalence gate pins the two
  :class:`~repro.timing.sm.TimingResult` objects bit-equal before any
  timing.  The committed ``BENCH_pipeline.json`` is this output.

Prints a JSON object (also written to ``--json`` when given) and exits
non-zero when any benchmark's speedup falls below ``--min-speedup`` —
which makes the command directly usable as the CI perf-smoke gate.
Usage::

    PYTHONPATH=src python -m repro.scalar.bench BP LC LBM --scale default \
        --min-speedup 2.0 --json BENCH_classify.json
    PYTHONPATH=src python -m repro.scalar.bench BP LC LBM --pipeline \
        --min-speedup 3.0 --json BENCH_pipeline.json

The report records which suite benchmarks were *not* measured under
``skipped_benchmarks``, so a truncated run is visible in the artifact
rather than silently looking like full coverage.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable

from repro.config import GpuConfig
from repro.experiments.runner import paper_architectures
from repro.power.accounting import PowerAccountant
from repro.scalar.arch_batch import process_columns
from repro.scalar.architectures import process_classified
from repro.scalar.batch import classify_columnar_batch, classify_trace_batch
from repro.scalar.columns import (
    ClassifiedColumns,
    ProcessedColumns,
    processed_columns_equal,
)
from repro.scalar.tracker import classify_trace, trace_statistics
from repro.simt.executor import run_kernel
from repro.simt.trace import KernelTrace
from repro.timing.gpu import (
    lower_to_timing_ops,
    lower_to_timing_ops_columns,
    simulate_architecture,
    simulate_architecture_columns,
)
from repro.workloads.registry import SCALES, all_workloads, build_workload

# BP and LC exercise the compute-heavy paths; LBM (memory_intensive in
# the registry) keeps a DRAM-bound workload in the committed perf-smoke
# set so memory-system regressions surface too.
DEFAULT_BENCHMARKS = ("BP", "LC", "LBM")
#: Streaming mode runs each arm once over a 10^6+-event stream; one
#: benchmark keeps the committed artifact's runtime reasonable (HS has
#: a mid-sized seed and both uniform and divergent phases).
DEFAULT_STREAMING_BENCHMARKS = ("HS",)
DEFAULT_WARMUP = 1


def _median_seconds(
    fn: Callable[[], object], repeats: int, warmup: int = DEFAULT_WARMUP
) -> float:
    """Median timed seconds after ``warmup`` untimed iterations."""
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def measure(
    benchmark: str, scale: str, repeats: int, warmup: int = DEFAULT_WARMUP
) -> dict:
    """Median classify seconds per engine for one benchmark."""
    built = build_workload(benchmark, scale)
    trace: KernelTrace = run_kernel(built.kernel, built.launch, built.memory)
    num_registers = built.kernel.num_registers

    # Equivalence gate: identical statistics (class counts, divergence,
    # decompress-moves) or the timing numbers are meaningless.
    event_stats = trace_statistics(classify_trace(trace, num_registers))
    batch_stats = trace_statistics(classify_trace_batch(trace, num_registers))
    if event_stats != batch_stats:
        raise AssertionError(
            f"{benchmark}: engines disagree — event {event_stats} "
            f"!= batch {batch_stats}"
        )

    event_seconds = _median_seconds(
        lambda: classify_trace(trace, num_registers), repeats, warmup
    )
    batch_seconds = _median_seconds(
        lambda: classify_trace_batch(trace, num_registers), repeats, warmup
    )
    return {
        "benchmark": benchmark,
        "scale": scale,
        "repeats": repeats,
        "warmup": warmup,
        "events": trace.total_instructions,
        "event_seconds": round(event_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(event_seconds / batch_seconds, 3),
    }


def measure_pipeline(
    benchmark: str, scale: str, repeats: int, warmup: int = DEFAULT_WARMUP
) -> dict:
    """Median classify→simulate→power pipeline seconds per engine.

    Times the full architecture-evaluation spine — classification,
    per-architecture interpretation, timing-op lowering, **SM timing
    simulation** and power accounting over all four paper
    architectures.  The reference path runs the per-event engines and
    the cycle-level SM model; the fast path runs the columnar engines
    and the event-driven SM engine.  Before any timing, an equivalence
    gate pins every intermediate equal across the paths — processed
    columns, lowered timing ops, the full
    :class:`~repro.timing.sm.TimingResult` (cycles, instruction and
    memory counters, per-scheduler issue, conflict and stall counters)
    and the power report — so a reported speedup can never come from a
    divergent result.
    """
    built = build_workload(benchmark, scale)
    trace: KernelTrace = run_kernel(built.kernel, built.launch, built.memory)
    columnar = trace.to_columnar()
    num_registers = built.kernel.num_registers
    config = GpuConfig()
    arches = paper_architectures()
    warp_size = trace.warp_size
    warps_per_cta = built.launch.warps_per_cta(warp_size)

    # Untimed differential gate over every stage, SM engines included.
    classified = classify_trace(trace, num_registers)
    _, batch_classified = classify_columnar_batch(columnar, num_registers)
    ccols = ClassifiedColumns.from_classified(
        batch_classified, warp_size, columnar=columnar
    )
    for arch in arches:
        processed = process_classified(classified, arch, warp_size)
        pcols = process_columns(ccols, arch)
        if not processed_columns_equal(
            ProcessedColumns.from_events(processed, warp_size), pcols
        ):
            raise AssertionError(
                f"{benchmark}/{arch.name}: engines disagree on processed columns"
            )
        event_ops = lower_to_timing_ops(processed, arch, config, warp_size)
        if event_ops != lower_to_timing_ops_columns(ccols, pcols, arch, config):
            raise AssertionError(
                f"{benchmark}/{arch.name}: engines disagree on timing ops"
            )
        cycle_timing = simulate_architecture(
            processed,
            arch,
            config,
            warp_size,
            warps_per_cta=warps_per_cta,
            sm_engine="cycle",
        )
        event_timing = simulate_architecture_columns(
            ccols,
            pcols,
            arch,
            config,
            warps_per_cta=warps_per_cta,
            sm_engine="event",
        )
        if cycle_timing != event_timing:
            raise AssertionError(
                f"{benchmark}/{arch.name}: SM engines disagree — "
                f"cycle {cycle_timing} != event {event_timing}"
            )
        accountant = PowerAccountant(arch, config=config)
        event_report = accountant.account(processed, cycle_timing)
        batch_report = accountant.account_columns(pcols, event_timing)
        if event_report != batch_report:
            raise AssertionError(
                f"{benchmark}/{arch.name}: engines disagree on the power report"
            )

    def event_pipeline() -> None:
        run_classified = classify_trace(trace, num_registers)
        for arch in arches:
            processed = process_classified(run_classified, arch, warp_size)
            timing = simulate_architecture(
                processed,
                arch,
                config,
                warp_size,
                warps_per_cta=warps_per_cta,
                sm_engine="cycle",
            )
            PowerAccountant(arch, config=config).account(processed, timing)

    def batch_pipeline() -> None:
        _, run_classified = classify_columnar_batch(columnar, num_registers)
        run_ccols = ClassifiedColumns.from_classified(
            run_classified, warp_size, columnar=columnar
        )
        for arch in arches:
            pcols = process_columns(run_ccols, arch)
            timing = simulate_architecture_columns(
                run_ccols,
                pcols,
                arch,
                config,
                warps_per_cta=warps_per_cta,
                sm_engine="event",
            )
            PowerAccountant(arch, config=config).account_columns(pcols, timing)

    event_seconds = _median_seconds(event_pipeline, repeats, warmup)
    batch_seconds = _median_seconds(batch_pipeline, repeats, warmup)
    return {
        "benchmark": benchmark,
        "scale": scale,
        "repeats": repeats,
        "warmup": warmup,
        "events": trace.total_instructions,
        "architectures": [arch.name for arch in arches],
        "sm_simulation_excluded": False,
        "event_seconds": round(event_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(event_seconds / batch_seconds, 3),
    }


def measure_transport(
    benchmark: str, scale: str, repeats: int, warmup: int = DEFAULT_WARMUP
) -> dict:
    """Median cache-transport seconds per arm for one benchmark.

    Times the trace transport itself — the serialization layer the
    :class:`~repro.experiments.runner.ExperimentRunner` cache sits on —
    with the kernel executed once up front so workload construction
    never pollutes the warm arms:

    * **cold miss** — execute the kernel and write a fresh v5 entry:
      what a cache miss costs, for context.
    * **legacy warm hit** — :func:`~repro.simt.serialize.load_columnar`
      on the v3 ``.npz`` archive: decompress and copy every array.
    * **mmap warm hit** — :func:`~repro.simt.serialize.
      load_columnar_v5`: map the page-aligned banks read-only.  Two
      numbers: the lazy map alone (``mmap_warm_seconds``, what a
      sidecar-replay run pays — results replay without ever faulting
      the trace pages in) and the map plus a full read of every array
      (``mmap_warm_touch_seconds``, the worst case where a consumer
      touches every page).

    The reported ``speedup`` — the number the perf-smoke gate pins —
    is deliberately the *conservative* ratio, legacy-warm over
    mmap-warm-**touch**: even charged for faulting in every page, the
    map must beat the decompress.  An equivalence gate pins the two
    warm traces bit-identical array by array before any timing.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.simt.serialize import (
        _ARRAY_FIELDS,
        load_columnar,
        load_columnar_v5,
        save_columnar_v5,
        save_trace,
    )

    built = build_workload(benchmark, scale)
    trace: KernelTrace = run_kernel(built.kernel, built.launch, built.memory)
    columnar = trace.to_columnar()
    fingerprint = "bench-transport"
    with tempfile.TemporaryDirectory(prefix="bench-transport-") as root:
        root_path = Path(root)
        npz_path = root_path / f"{benchmark}.npz"
        save_trace(trace, npz_path, fingerprint=fingerprint)
        save_columnar_v5(columnar, root_path, benchmark, fingerprint)

        # Equivalence gate: the mapped v5 trace is bit-identical to the
        # decompressed legacy one, or the timings are meaningless.
        legacy_columnar = load_columnar(npz_path, expected_fingerprint=fingerprint)
        mapped_columnar, status, _ = load_columnar_v5(
            root_path, benchmark, fingerprint
        )
        assert status == "hit", f"{benchmark}: v5 entry unreadable ({status})"
        for name in _ARRAY_FIELDS:
            if not np.array_equal(
                getattr(legacy_columnar, name), getattr(mapped_columnar, name)
            ):
                raise AssertionError(
                    f"{benchmark}: transports disagree on trace array {name!r}"
                )
        trace_bytes = sum(
            int(getattr(mapped_columnar, name).nbytes) for name in _ARRAY_FIELDS
        )
        del legacy_columnar, mapped_columnar

        cold_index = 0

        def cold_miss() -> None:
            nonlocal cold_index
            cold_index += 1
            fresh = run_kernel(built.kernel, built.launch, built.memory)
            save_columnar_v5(
                fresh.to_columnar(),
                root_path / f"cold{cold_index}",
                benchmark,
                fingerprint,
            )

        def legacy_warm() -> None:
            load_columnar(npz_path, expected_fingerprint=fingerprint)

        def mmap_warm() -> None:
            loaded, loaded_status, _ = load_columnar_v5(
                root_path, benchmark, fingerprint
            )
            assert loaded_status == "hit"

        def mmap_warm_touch() -> None:
            loaded, loaded_status, _ = load_columnar_v5(
                root_path, benchmark, fingerprint
            )
            assert loaded_status == "hit"
            for name in _ARRAY_FIELDS:
                array = getattr(loaded, name)
                if array.size:  # fault every page in
                    array.any() if array.dtype == np.bool_ else array.sum()

        cold_seconds = _median_seconds(cold_miss, repeats, warmup)
        legacy_seconds = _median_seconds(legacy_warm, repeats, warmup)
        mmap_seconds = _median_seconds(mmap_warm, repeats, warmup)
        touch_seconds = _median_seconds(mmap_warm_touch, repeats, warmup)
    return {
        "benchmark": benchmark,
        "scale": scale,
        "repeats": repeats,
        "warmup": warmup,
        "events": trace.total_instructions,
        "trace_bytes": trace_bytes,
        "cold_miss_seconds": round(cold_seconds, 6),
        "legacy_warm_seconds": round(legacy_seconds, 6),
        "mmap_warm_seconds": round(mmap_seconds, 6),
        "mmap_warm_touch_seconds": round(touch_seconds, 6),
        "speedup": round(legacy_seconds / touch_seconds, 3),
    }


def _run_streaming_arm(
    benchmark: str, scale_name: str, arm: str, chunk_events: int
) -> dict:
    """One memory-measurement arm over the replicated synthetic stream.

    ``streamed`` feeds :class:`~repro.experiments.streaming.
    StreamingPipeline` (aggregates-only mode: the bounded spine, no
    timing-op accumulation) one generated chunk at a time; ``whole``
    materializes the full replicated trace and runs the whole-trace
    engines over it — the arm whose footprint grows with the stream.
    """
    from repro.experiments.streaming import StreamingPipeline, _array_bytes
    from repro.obs.memory import peak_rss_bytes
    from repro.workloads.synth import (
        iter_synthetic_chunks,
        materialize_synthetic,
        synthetic_replicas,
    )

    built = build_workload(benchmark, scale_name)
    trace = run_kernel(built.kernel, built.launch, built.memory)
    seed = trace.to_columnar()
    num_registers = built.kernel.num_registers
    del trace, built
    scale = SCALES[scale_name]
    replicas = synthetic_replicas(seed, scale)
    arches = paper_architectures()
    if arm == "streamed":
        pipeline = StreamingPipeline(
            arches, num_registers, collect_timing_ops=False
        )
        for chunk in iter_synthetic_chunks(seed, replicas, chunk_events):
            pipeline.feed(chunk)
        peak_in_flight = pipeline.peak_bytes_in_flight
    else:
        whole = materialize_synthetic(seed, replicas)
        _, classified = classify_columnar_batch(whole, num_registers)
        ccols = ClassifiedColumns.from_classified(
            classified, whole.warp_size, columnar=whole
        )
        del classified
        peak_in_flight = _array_bytes(whole) + _array_bytes(ccols)
        for arch in arches:
            pcols = process_columns(ccols, arch)
            PowerAccountant(arch).aggregates_from_columns(pcols)
            peak_in_flight = max(
                peak_in_flight,
                _array_bytes(whole) + _array_bytes(ccols) + _array_bytes(pcols),
            )
    return {
        "events": seed.num_events * replicas,
        "replicas": replicas,
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_bytes_in_flight": peak_in_flight,
    }


def _probe_main(argv: list[str]) -> int:
    """Hidden child-process entry point for one streaming arm.

    Applies the address-space ceiling *to this process only*, runs the
    arm, and prints one JSON line.  Exit 3 means the arm exceeded the
    ceiling (:class:`MemoryError`) — an expected outcome the parent
    records, distinct from real failures.
    """
    import resource

    benchmark, scale_name, arm, chunk_events, limit_mb = argv
    limit_mb = int(limit_mb)
    if limit_mb > 0:
        limit = limit_mb * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    started = time.perf_counter()
    try:
        result = _run_streaming_arm(
            benchmark, scale_name, arm, int(chunk_events)
        )
    except MemoryError:
        print(json.dumps({"completed": False, "error": "MemoryError"}))
        return 3
    result["completed"] = True
    result["seconds"] = round(time.perf_counter() - started, 6)
    print(json.dumps(result))
    return 0


def measure_streaming(
    benchmark: str, scale: str, chunk_events: int, rss_limit_mb: int
) -> dict:
    """Streamed vs whole-trace memory arms for one benchmark.

    Bit-equality gate first (on the seed trace, whole outputs
    included): the streamed pipeline's timing and power must equal the
    whole-trace engines' exactly.  Then each arm runs once in a child
    process — so one arm's allocator high-water mark can never pollute
    the other's RSS, and the ``--rss-limit-mb`` ceiling kills only the
    arm that actually exceeds it.
    """
    import os
    import subprocess

    from repro.experiments.streaming import stream_pipeline
    from repro.simt.trace import iter_chunks

    built = build_workload(benchmark, scale)
    trace: KernelTrace = run_kernel(built.kernel, built.launch, built.memory)
    seed = trace.to_columnar()
    num_registers = built.kernel.num_registers
    config = GpuConfig()
    arches = paper_architectures()
    warps_per_cta = built.launch.warps_per_cta(seed.warp_size)

    outcome = stream_pipeline(
        iter_chunks(seed, max(1, seed.num_events // 7)),
        arches,
        num_registers,
        config=config,
        warps_per_cta=warps_per_cta,
    )
    _, classified = classify_columnar_batch(seed, num_registers)
    ccols = ClassifiedColumns.from_classified(
        classified, seed.warp_size, columnar=seed
    )
    for arch in arches:
        pcols = process_columns(ccols, arch)
        timing = simulate_architecture_columns(
            ccols, pcols, arch, config,
            warps_per_cta=warps_per_cta, sm_engine="event",
        )
        report = PowerAccountant(arch, config=config).account_columns(
            pcols, timing
        )
        if outcome.timing[arch.name] != timing or outcome.power[arch.name] != report:
            raise AssertionError(
                f"{benchmark}/{arch.name}: streamed pipeline disagrees "
                "with the whole-trace engines"
            )
    del trace, classified, ccols

    def spawn(arm: str) -> dict:
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.scalar.bench", "--_probe",
                benchmark, scale, arm, str(chunk_events), str(rss_limit_mb),
            ],
            capture_output=True, text=True, env=env,
        )
        if proc.returncode == 0:
            return json.loads(proc.stdout.strip().splitlines()[-1])
        if proc.returncode == 3:
            return {"completed": False, "error": "MemoryError"}
        raise RuntimeError(
            f"{benchmark}: probe arm {arm!r} failed "
            f"(exit {proc.returncode}): {proc.stderr[-2000:]}"
        )

    streamed = spawn("streamed")
    whole = spawn("whole")
    if not streamed["completed"]:
        raise AssertionError(
            f"{benchmark}: the streamed arm itself exceeded the "
            f"{rss_limit_mb} MiB ceiling — streaming is not bounded"
        )
    if whole.get("completed"):
        # Both fit: the honest memory ratio is live-bytes over live-bytes.
        memory_ratio = (
            whole["peak_bytes_in_flight"] / streamed["peak_bytes_in_flight"]
        )
    else:
        # The whole-trace arm needed more than the ceiling, so the
        # ceiling itself is its (conservative) footprint lower bound.
        memory_ratio = (
            rss_limit_mb * 1024 * 1024 / streamed["peak_rss_bytes"]
        )
    return {
        "benchmark": benchmark,
        "scale": scale,
        "chunk_events": chunk_events,
        "rss_limit_mb": rss_limit_mb,
        "events": streamed["events"],
        "replicas": streamed["replicas"],
        "events_per_second": round(streamed["events"] / streamed["seconds"], 1),
        "streamed": streamed,
        "whole_trace": whole,
        "speedup": round(memory_ratio, 3),
    }


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["--_probe"]:
        return _probe_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="repro.scalar.bench",
        description="Benchmark batch vs per-event pipeline engines.",
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        default=[],
        help=f"workload abbreviations (default: {' '.join(DEFAULT_BENCHMARKS)}; "
        f"--streaming defaults to {' '.join(DEFAULT_STREAMING_BENCHMARKS)})",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="workload problem size (default: default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        metavar="N",
        help="timed repetitions per engine; medians are reported (default: 5)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=DEFAULT_WARMUP,
        metavar="N",
        help="untimed warmup iterations per engine before timing "
        f"(default: {DEFAULT_WARMUP})",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="benchmark the full classify->interpret->lower->simulate->"
        "account pipeline over the four paper architectures instead of "
        "classification alone (SM timing simulation included: the "
        "reference path runs the cycle SM engine, the fast path the "
        "event SM engine)",
    )
    parser.add_argument(
        "--transport",
        action="store_true",
        help="benchmark cache transports instead of engines: cold miss "
        "(execute + write) vs legacy warm hit (npz decompress) vs mmap "
        "warm hit (v5 zero-copy map); speedup is legacy-warm over "
        "mmap-warm",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="benchmark the chunk-streaming pipeline's memory boundedness "
        "on the replicated synthetic stream: streamed vs whole-trace "
        "arms in child processes (optionally under --rss-limit-mb); "
        "speedup is the whole-over-streamed peak-memory ratio",
    )
    parser.add_argument(
        "--chunk-events",
        type=int,
        default=None,
        metavar="N",
        help="streaming only: chunk size in events "
        "(default: the runner's streaming default)",
    )
    parser.add_argument(
        "--rss-limit-mb",
        type=int,
        default=0,
        metavar="MB",
        help="streaming only: hard RLIMIT_AS ceiling per arm child "
        "process (default: 0, unlimited)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless every benchmark's batch speedup is >= X",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report to PATH",
    )
    args = parser.parse_args(arguments)
    if sum((args.pipeline, args.transport, args.streaming)) > 1:
        parser.error(
            "--pipeline, --transport and --streaming are mutually exclusive"
        )
    if args.chunk_events is not None and not args.streaming:
        parser.error("--chunk-events only applies to --streaming")
    if args.chunk_events is not None and args.chunk_events < 1:
        parser.error("--chunk-events must be >= 1")
    defaults = (
        DEFAULT_STREAMING_BENCHMARKS if args.streaming else DEFAULT_BENCHMARKS
    )
    benchmarks = [
        name.strip().upper() for name in (args.benchmarks or defaults)
    ]

    if args.streaming:
        from repro.experiments.runner import DEFAULT_STREAM_CHUNK

        chunk_events = args.chunk_events or DEFAULT_STREAM_CHUNK
        results = [
            measure_streaming(name, args.scale, chunk_events, args.rss_limit_mb)
            for name in benchmarks
        ]
    else:
        if args.transport:
            measurer = measure_transport
        elif args.pipeline:
            measurer = measure_pipeline
        else:
            measurer = measure
        results = [
            measurer(name, args.scale, args.repeats, args.warmup)
            for name in benchmarks
        ]
    worst = min(result["speedup"] for result in results)
    measured = set(benchmarks)
    skipped = [
        spec.abbr for spec in all_workloads() if spec.abbr not in measured
    ]
    if args.streaming:
        mode = "streaming"
    elif args.transport:
        mode = "transport"
    elif args.pipeline:
        mode = "pipeline"
    else:
        mode = "classify"
    report = {
        "mode": mode,
        "scale": args.scale,
        "repeats": args.repeats,
        "warmup": args.warmup,
        "min_speedup_required": args.min_speedup,
        "worst_speedup": worst,
        "skipped_benchmarks": skipped,
        "results": results,
    }
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.json is not None:
        with open(args.json, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"[wrote report to {args.json}]", file=sys.stderr)
    if args.min_speedup is not None and worst < args.min_speedup:
        print(
            f"FAIL: worst speedup {worst:.2f}x < required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
