"""Tests for CTA-barrier coordination in the SM timing model."""

import numpy as np

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa import KernelBuilder
from repro.isa.opcodes import OpCategory
from repro.scalar.architectures import process_trace
from repro.simt import LaunchConfig, MemoryImage, run_kernel
from repro.timing.gpu import lower_to_timing_ops, simulate_architecture
from repro.timing.ops import TimingOp
from repro.timing.sm import SmSimulator

CONFIG = GpuConfig()


def alu_op(dst=None, srcs=(), long_latency=False):
    return TimingOp(
        category=OpCategory.ALU,
        dst=dst,
        src_regs=tuple(srcs),
        src_banks=tuple(r % 16 for r in srcs),
        dispatch_cycles=2,
        long_latency=long_latency,
        is_store=False,
    )


BARRIER = TimingOp(
    category=OpCategory.CTRL,
    dst=None,
    src_regs=(),
    src_banks=(),
    dispatch_cycles=1,
    long_latency=False,
    is_store=False,
    is_barrier=True,
)


class TestBarrierCoordination:
    def test_fast_warp_waits_for_slow_warp(self):
        slow = [alu_op(dst=0, long_latency=True)]
        for _ in range(3):
            slow.append(alu_op(dst=0, srcs=(0,), long_latency=True))
        slow.append(BARRIER)
        fast_tail = [alu_op(dst=1, srcs=(1,)) for _ in range(5)]
        fast = [alu_op(dst=1), BARRIER] + fast_tail

        together = SmSimulator([fast, slow], CONFIG, warps_per_cta=2).run()
        # The fast warp's tail cannot start before the slow warp's
        # dependent IDIV chain (~4 x 120 cycles) reaches the barrier.
        assert together.cycles > 4 * 100

    def test_independent_ctas_do_not_wait(self):
        slow = [alu_op(dst=0, long_latency=True) for _ in range(1)]
        slow += [alu_op(dst=0, srcs=(0,), long_latency=True) for _ in range(3)]
        slow.append(BARRIER)
        fast = [alu_op(dst=1), BARRIER]
        # Same streams, but each warp in its own CTA: barriers are local.
        result = SmSimulator([fast, slow], CONFIG, warps_per_cta=1).run()
        assert result.instructions == len(fast) + len(slow)

    def test_all_barrier_instructions_retire(self):
        warps = [[alu_op(dst=0), BARRIER, alu_op(dst=1)] for _ in range(4)]
        result = SmSimulator(warps, CONFIG, warps_per_cta=4).run()
        assert result.instructions == 12
        assert result.useful_instructions == 12

    def test_warp_finishing_before_sibling_barriers_is_tolerated_when_uniform(self):
        # All warps of the CTA have the same barrier count: fine.
        warps = [[BARRIER, alu_op(dst=0)] for _ in range(3)]
        result = SmSimulator(warps, CONFIG, warps_per_cta=3).run()
        assert result.instructions == 6


class TestEndToEndBarrierKernel:
    def test_reduction_kernel_through_timing(self):
        b = KernelBuilder("reduce_timing")
        lane_in_cta = b.iadd(b.imul(b.warp_in_cta(), 32), b.lane())
        b.st_shared(b.imul(lane_in_cta, 4), lane_in_cta)
        b.barrier()
        partner = b.ld_shared(b.imul(b.xor(lane_in_cta, 32), 4))
        b.st_global(b.imad(b.tid(), 4, 0x2000), partner)
        kernel = b.finish()
        memory = MemoryImage()
        trace = run_kernel(kernel, LaunchConfig(1, 64), memory)
        arch = ArchitectureConfig.gscalar()
        processed = process_trace(trace, arch, kernel.num_registers)
        result = simulate_architecture(processed, arch, warps_per_cta=2)
        assert result.instructions == trace.total_instructions
        # And the functional output is the partner lane's id.
        out = memory.read_array(0x2000, 64)
        assert np.array_equal(out, (np.arange(64) ^ 32).astype(np.uint32))

    def test_barrier_lowering(self):
        b = KernelBuilder("lower")
        b.barrier()
        b.mov(1)
        kernel = b.finish()
        trace = run_kernel(kernel, LaunchConfig(1, 32), MemoryImage())
        arch = ArchitectureConfig.baseline()
        processed = process_trace(trace, arch, kernel.num_registers)
        ops = lower_to_timing_ops(processed, arch, CONFIG, 32)
        assert ops[0][0].is_barrier
        assert not ops[0][1].is_barrier
