"""Process-local telemetry registry: counters, histograms, gauges, spans.

One :class:`Telemetry` instance is a self-contained metrics registry:

* **counters** — monotonically growing numbers keyed by metric name
  plus a (sorted) label set, e.g. ``scalar_class_total{class="alu"}``;
* **histograms** — discrete value -> count maps per (name, labels),
  suited to the pipeline's small-domain distributions (enc prefix
  0..4, reconvergence-stack depth) and exported with cumulative
  ``le`` buckets in the Prometheus text format;
* **gauges** — point-in-time levels (peak RSS, bytes in flight) with
  high-water-mark merge semantics: :meth:`Telemetry.gauge_max` keeps
  the largest value seen and :meth:`Telemetry.merge` folds gauges by
  max, so a worker pool reports fleet-wide peaks;
* **spans** — nestable wall-clock intervals carrying a process id and
  a logical thread id, the raw material of the Chrome trace-event
  export (:mod:`repro.obs.chrome_trace`).

The module also owns the *process-global* instance used by the
instrumented pipeline.  It defaults to :data:`NULL_TELEMETRY`, a
subclass whose every operation is a no-op and whose ``enabled`` flag is
False — instrumentation sites hoist one ``get_telemetry().enabled``
check outside their hot loops, so a disabled registry costs one
attribute read per warp or pipeline stage, not per instruction
(guarded by ``tests/obs/test_overhead.py``).

Registries merge: :meth:`Telemetry.snapshot` produces a plain-builtins
payload that travels through pickle/JSON across process boundaries and
:meth:`Telemetry.merge` folds it back, which is how the experiment
runner's pool workers report back to the parent.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "LabelKey",
    "SpanEvent",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
]

#: Canonical label representation: sorted (key, value-as-str) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


@dataclass(slots=True)
class SpanEvent:
    """One finished wall-clock interval.

    ``ts_us`` is microseconds since the Unix epoch (wall clock), so
    spans recorded by different worker processes share one timeline;
    ``pid``/``tid`` pick the Chrome-trace row the span renders on.
    """

    name: str
    cat: str
    ts_us: int
    dur_us: int
    pid: int
    tid: int
    args: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanEvent":
        return cls(
            name=payload["name"],
            cat=payload.get("cat", ""),
            ts_us=int(payload["ts_us"]),
            dur_us=int(payload["dur_us"]),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            args=dict(payload.get("args", {})),
        )


class _Span:
    """Context manager recording one span into a registry."""

    __slots__ = ("_telemetry", "_name", "_cat", "_tid", "_args", "_started")

    def __init__(self, telemetry: "Telemetry", name: str, cat: str, tid: int | None, args: dict):
        self._telemetry = telemetry
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        ended = time.perf_counter()
        telemetry = self._telemetry
        ts_us = int((telemetry._epoch + self._started) * 1e6)
        dur_us = max(0, int((ended - self._started) * 1e6))
        tid = self._tid if self._tid is not None else threading.get_ident() % 1_000_000
        telemetry.spans.append(
            SpanEvent(
                name=self._name,
                cat=self._cat,
                ts_us=ts_us,
                dur_us=dur_us,
                pid=os.getpid(),
                tid=tid,
                args=self._args,
            )
        )
        if telemetry._sink is not None:
            telemetry._sink.emit({"type": "span", **telemetry.spans[-1].to_dict()})


class _NullSpan:
    """Reusable no-op context manager (shared; carries no state)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """A process-local metrics registry with pluggable sinks.

    ``sink`` (optional, see :mod:`repro.obs.sinks`) receives one dict
    per finished span as it closes — a live event stream; counters and
    histograms are pull-style and exported at the end via
    :meth:`snapshot` or the exporters.
    """

    enabled = True

    def __init__(self, sink=None):
        self.counters: dict[tuple[str, LabelKey], float] = {}
        self.histograms: dict[tuple[str, LabelKey], dict[float, int]] = {}
        self.gauges: dict[tuple[str, LabelKey], float] = {}
        self.spans: list[SpanEvent] = []
        self._sink = sink
        # Anchor perf_counter to the wall clock once, so span
        # timestamps are epoch-based and comparable across processes.
        self._epoch = time.time() - time.perf_counter()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` to a (labelled) counter."""
        key = (name, _label_key(labels))
        self.counters[key] = self.counters.get(key, 0) + amount

    def observe(self, name: str, value: float, count: int = 1, **labels: Any) -> None:
        """Record ``count`` observations of ``value`` in a histogram."""
        bucket = self.histograms.setdefault((name, _label_key(labels)), {})
        bucket[value] = bucket.get(value, 0) + count

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        """Set a (labelled) gauge to ``value`` (last write wins)."""
        self.gauges[(name, _label_key(labels))] = value

    def gauge_max(self, name: str, value: float, **labels: Any) -> None:
        """Raise a (labelled) gauge to ``value`` if it is higher.

        High-water-mark semantics (peak RSS, peak bytes in flight):
        recording sites call this freely and the gauge keeps the
        maximum ever seen; :meth:`merge` folds gauges with the same
        max rule, so a pool of workers reports the fleet-wide peak.
        """
        key = (name, _label_key(labels))
        current = self.gauges.get(key)
        if current is None or value > current:
            self.gauges[key] = value

    def span(self, name: str, cat: str = "", tid: int | None = None, **args: Any):
        """Nestable wall-clock span (use as a context manager)."""
        return _Span(self, name, cat, tid, args)

    def event(self, payload: dict) -> None:
        """Stream one free-form event to the sink (if any)."""
        if self._sink is not None:
            self._sink.emit({"type": "event", **payload})

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        return self.counters.get((name, _label_key(labels)), 0)

    def counters_named(self, name: str) -> dict[LabelKey, float]:
        """All label sets (and values) recorded under one counter name."""
        return {
            labels: value
            for (metric, labels), value in self.counters.items()
            if metric == name
        }

    def histogram(self, name: str, **labels: Any) -> dict[float, int]:
        return dict(self.histograms.get((name, _label_key(labels)), {}))

    def gauge_value(self, name: str, **labels: Any) -> float | None:
        return self.gauges.get((name, _label_key(labels)))

    def gauges_named(self, name: str) -> dict[LabelKey, float]:
        """All label sets (and values) recorded under one gauge name."""
        return {
            labels: value
            for (metric, labels), value in self.gauges.items()
            if metric == name
        }

    def counter_names(self) -> Iterator[str]:
        seen: set[str] = set()
        for metric, _ in self.counters:
            if metric not in seen:
                seen.add(metric)
                yield metric

    # ------------------------------------------------------------------
    # Cross-process plumbing.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-builtins payload for pickling across processes."""
        return {
            "counters": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in self.counters.items()
            ],
            "histograms": [
                [name, [list(pair) for pair in labels], sorted(bucket.items())]
                for (name, labels), bucket in self.histograms.items()
            ],
            "gauges": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in self.gauges.items()
            ],
            "spans": [span.to_dict() for span in self.spans],
        }

    def merge(self, other: "Telemetry | dict | None") -> None:
        """Fold another registry (or its :meth:`snapshot`) into this one."""
        if other is None:
            return
        if isinstance(other, Telemetry):
            other = other.snapshot()
        for name, labels, value in other.get("counters", ()):
            key = (name, tuple((str(k), str(v)) for k, v in labels))
            self.counters[key] = self.counters.get(key, 0) + value
        for name, labels, items in other.get("histograms", ()):
            key = (name, tuple((str(k), str(v)) for k, v in labels))
            bucket = self.histograms.setdefault(key, {})
            for value, count in items:
                bucket[value] = bucket.get(value, 0) + count
        for name, labels, value in other.get("gauges", ()):
            key = (name, tuple((str(k), str(v)) for k, v in labels))
            current = self.gauges.get(key)
            if current is None or value > current:
                self.gauges[key] = value
        for payload in other.get("spans", ()):
            self.spans.append(SpanEvent.from_dict(payload))

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()


class NullTelemetry(Telemetry):
    """Disabled registry: every operation is a no-op.

    Instrumentation sites check :attr:`enabled` once and skip their
    aggregation passes entirely, so this class's methods are only a
    second line of defence; they still cost nothing but a call.
    """

    enabled = False

    def __init__(self):
        super().__init__(sink=None)

    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, count: int = 1, **labels: Any) -> None:
        return None

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        return None

    def gauge_max(self, name: str, value: float, **labels: Any) -> None:
        return None

    def span(self, name: str, cat: str = "", tid: int | None = None, **args: Any):
        return _NULL_SPAN

    def event(self, payload: dict) -> None:
        return None

    def merge(self, other: "Telemetry | dict | None") -> None:
        return None


#: The shared disabled registry every process starts with.
NULL_TELEMETRY = NullTelemetry()

_ACTIVE: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-global registry (the null registry when disabled)."""
    return _ACTIVE


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install (or, with ``None``, disable) the process-global registry."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL_TELEMETRY
    return _ACTIVE


class telemetry_session:
    """Context manager: install a registry for a scope, then restore.

    >>> with telemetry_session() as telemetry:
    ...     ...  # instrumented code records into ``telemetry``
    """

    def __init__(self, telemetry: Telemetry | None = None, sink=None):
        self._telemetry = telemetry if telemetry is not None else Telemetry(sink=sink)
        self._previous: Telemetry | None = None

    def __enter__(self) -> Telemetry:
        self._previous = get_telemetry()
        return set_telemetry(self._telemetry)

    def __exit__(self, *exc_info) -> None:
        set_telemetry(self._previous)
        self._telemetry.close()
