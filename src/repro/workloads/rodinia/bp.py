"""``backprop`` (BP) proxy — the paper's headline benchmark.

Signature reproduced (§5.3): very compute-intensive; a large
special-function fraction that is almost entirely *scalar* (each thread
raises 2.0 to the n-th power across iterations — ``ex2`` on the shared
loop counter — plus sigmoid evaluations on shared bias terms); a
visible half-warp-scalar population (~12%, Figure 9) from per-half
layer parameters; and almost no divergence.  This is the benchmark
where G-Scalar's SFU scalarization produces the 79% power-efficiency
gain.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    OUTPUT_A,
    OUTPUT_B,
    PARAMS_BASE,
    half_parameter,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 101


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the BP proxy at the given scale."""
    iterations = 2 * scale.inner_iterations
    b = KernelBuilder("backprop")
    tid = b.tid()
    x = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    weight = load_broadcast(b, PARAMS_BASE)
    eta = load_broadcast(b, PARAMS_BASE + 4)
    half_param = half_parameter(b, PARAMS_BASE + 8)
    one = b.mov(b.fimm(1.0))
    acc = b.mov(b.fimm(0.0))
    half_acc = b.mov(b.fimm(0.0))
    bias = b.mov(b.fimm(0.5))

    with b.for_range(0, iterations) as k:
        k_float = b.i2f(k)  # ALU scalar
        power = b.ex2(k_float)  # SFU scalar: 2.0 ** k
        scaled_weight = b.fmul(weight, power)  # ALU scalar
        term = b.fmul(x, scaled_weight)  # vector
        acc = b.fadd(acc, term, dst=acc)  # vector
        half_term = b.fmul(half_param, power)  # half-warp scalar
        half_acc = b.fadd(half_acc, half_term, dst=half_acc)  # half-warp scalar
        bias = b.fadd(bias, scaled_weight, dst=bias)  # ALU scalar
        neg_bias = b.fneg(bias)  # ALU scalar
        exponent = b.ex2(neg_bias)  # SFU scalar (sigmoid)
        denominator = b.fadd(one, exponent)  # ALU scalar
        sigmoid = b.rcp(denominator)  # SFU scalar
        delta = b.ffma(term, sigmoid, acc)  # vector
        acc = b.fadd(acc, delta, dst=acc)  # vector

    # Sparse weight-update path: only a few threads adjust (BP's tiny
    # divergent tail).
    flag = load_thread_flag(b, tid)
    condition = b.setne(flag, 0)
    with b.if_(condition):
        acc = b.fmul(acc, eta, dst=acc)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), acc)
    b.st_global(thread_element_addr(b, tid, OUTPUT_B), half_acc)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(INPUT_A, datagen.narrow_floats(total_threads, 1.0, 0.05, _SEED))
    memory.bind_array(
        PARAMS_BASE,
        np.array([0.8, 0.05, 0.3, 0.7], dtype=np.float32),
    )
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.08, _SEED + 1),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="feed-forward + weight-update layer with scalar SFU chains",
    )
