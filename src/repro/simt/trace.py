"""Dynamic-trace containers produced by the functional executor.

A :class:`TraceEvent` is one dynamic instruction executed by one warp:
opcode, register numbers, the active mask it ran under, and — for
instructions that write a register — a snapshot of the destination
register's full contents *after* the write.  That snapshot is what the
compression / scalar-eligibility machinery consumes, so a trace is
self-contained: no re-execution is ever needed downstream.

Two equivalent representations exist:

* the *event* form (:class:`KernelTrace` of :class:`WarpTrace` of
  :class:`TraceEvent`) — one Python object per dynamic instruction,
  convenient for sequential consumers, and
* the *columnar* form (:class:`ColumnarTrace`) — a struct-of-arrays
  layout packing every per-event field into flat numpy arrays with
  offset tables for the ragged ones, plus one ``(n_rows, warp_size)``
  uint32 matrix of destination snapshots.  This is what the batch
  classifier (:mod:`repro.scalar.batch`) and the on-disk format
  (:mod:`repro.simt.serialize`) operate on.

:meth:`KernelTrace.to_columnar` / :meth:`KernelTrace.from_columnar`
convert losslessly in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.isa.opcodes import OpCategory, Opcode, category_of

#: Stable opcode numbering shared by the columnar form and the on-disk
#: format (enum order would silently re-map if opcodes were reordered).
OPCODE_TO_ID = {
    opcode: index
    for index, opcode in enumerate(sorted(Opcode, key=lambda o: o.value))
}
ID_TO_OPCODE = {index: opcode for opcode, index in OPCODE_TO_ID.items()}


def opcode_labels() -> dict[int, tuple[str, str]]:
    """Stored opcode id -> ``(category, opcode)`` telemetry label pair.

    Feeds :func:`repro.obs.instrument.record_columnar_warps`, which
    must not import simulation packages itself.
    """
    return {
        index: (category_of(opcode).value, opcode.value)
        for index, opcode in ID_TO_OPCODE.items()
    }


@dataclass(slots=True)
class TraceEvent:
    """One dynamic instruction from one warp.

    ``dst_values`` is the destination register's full warp-wide contents
    after the write (``None`` for stores and branches).  ``active_mask``
    is an integer bitmask, lane 0 in bit 0.  ``varying_special_src`` is
    True when a non-register source varies per lane (``%tid``/``%lane``),
    which disqualifies the operand from being scalar.
    """

    opcode: Opcode
    dst: int | None
    src_regs: tuple[int, ...]
    active_mask: int
    block_id: int
    dst_values: np.ndarray | None = None
    addresses: np.ndarray | None = None
    varying_special_src: bool = False
    scalar_nonreg_srcs: int = 0

    @property
    def category(self) -> OpCategory:
        return category_of(self.opcode)

    def is_divergent(self, warp_size: int) -> bool:
        """True when the event ran under a non-full active mask."""
        return self.active_mask != (1 << warp_size) - 1

    def active_lane_count(self) -> int:
        return int(self.active_mask).bit_count()


@dataclass
class WarpTrace:
    """All events of one warp, in program order."""

    warp_id: int
    warp_size: int
    events: list[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        if event.active_mask >> self.warp_size:
            raise TraceError(
                f"event mask {event.active_mask:#x} wider than warp size "
                f"{self.warp_size}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclass
class KernelTrace:
    """The full dynamic trace of one kernel launch."""

    kernel_name: str
    warp_size: int
    warps: list[WarpTrace] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(len(w) for w in self.warps)

    def all_events(self):
        """Iterate events warp-major (warp 0's stream, then warp 1's...)."""
        for warp in self.warps:
            yield from warp.events

    def category_histogram(self) -> dict[OpCategory, int]:
        """Dynamic instruction count per pipeline category."""
        histogram: dict[OpCategory, int] = {c: 0 for c in OpCategory}
        for event in self.all_events():
            histogram[event.category] += 1
        return histogram

    def divergent_fraction(self) -> float:
        """Fraction of dynamic instructions with a non-full active mask."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        divergent = sum(
            1 for e in self.all_events() if e.is_divergent(self.warp_size)
        )
        return divergent / total

    def to_columnar(self) -> "ColumnarTrace":
        """Pack this trace into the struct-of-arrays form (lossless)."""
        return ColumnarTrace.from_trace(self)

    @staticmethod
    def from_columnar(columnar: "ColumnarTrace") -> "KernelTrace":
        """Rebuild the event form from a columnar trace (lossless)."""
        return columnar.to_trace()


@dataclass
class ColumnarTrace:
    """Struct-of-arrays representation of one kernel trace.

    Events of all warps are concatenated warp-major (warp 0's stream,
    then warp 1's, ...); ``warp_ids``/``warp_lengths`` delimit the
    per-warp segments.  Fixed-width per-event fields are flat arrays;
    the ragged ones use offset/index tables:

    * ``src_offsets``/``src_flat`` — event *i*'s source registers are
      ``src_flat[src_offsets[i]:src_offsets[i + 1]]``,
    * ``values_index`` — row of ``values`` holding event *i*'s
      destination snapshot (``-1`` when the event writes no register),
    * ``addr_index``/``addresses`` — ditto for per-lane addresses.

    ``values`` is the ``(n_rows, warp_size)`` uint32 matrix the batch
    classifier's whole-trace array kernels run over; ``dst`` encodes a
    missing destination as ``-1``.  Opcodes are stored as
    :data:`OPCODE_TO_ID` codes.
    """

    kernel_name: str
    warp_size: int
    warp_ids: np.ndarray  # (n_warps,) int32
    warp_lengths: np.ndarray  # (n_warps,) int64
    opcode_ids: np.ndarray  # (n,) uint16
    dst: np.ndarray  # (n,) int32, -1 = no destination
    masks: np.ndarray  # (n,) uint64
    blocks: np.ndarray  # (n,) int32
    varying: np.ndarray  # (n,) bool
    scalar_nonreg: np.ndarray  # (n,) uint8
    src_offsets: np.ndarray  # (n + 1,) int64
    src_flat: np.ndarray  # int32
    values_index: np.ndarray  # (n,) int64, -1 = no snapshot
    values: np.ndarray  # (n_value_rows, warp_size) uint32
    addr_index: np.ndarray  # (n,) int64, -1 = no addresses
    addresses: np.ndarray  # (n_addr_rows, warp_size) uint32

    @property
    def num_events(self) -> int:
        return int(self.opcode_ids.shape[0])

    @property
    def num_warps(self) -> int:
        return int(self.warp_ids.shape[0])

    @property
    def total_instructions(self) -> int:
        return self.num_events

    def warp_slices(self) -> list[tuple[int, slice]]:
        """``(warp_id, event-range slice)`` per warp, in stored order."""
        slices: list[tuple[int, slice]] = []
        position = 0
        for warp_id, length in zip(
            self.warp_ids.tolist(), self.warp_lengths.tolist()
        ):
            slices.append((warp_id, slice(position, position + length)))
            position += length
        return slices

    @classmethod
    def from_trace(cls, trace: KernelTrace) -> "ColumnarTrace":
        """Pack an event-form trace (one pass, no event mutation)."""
        events = [event for warp in trace.warps for event in warp.events]
        count = len(events)

        opcode_ids = np.empty(count, dtype=np.uint16)
        dst = np.empty(count, dtype=np.int32)
        masks = np.empty(count, dtype=np.uint64)
        blocks = np.empty(count, dtype=np.int32)
        varying = np.empty(count, dtype=bool)
        scalar_nonreg = np.empty(count, dtype=np.uint8)
        src_offsets = np.zeros(count + 1, dtype=np.int64)
        src_flat: list[int] = []
        values_index = np.full(count, -1, dtype=np.int64)
        values_rows: list[np.ndarray] = []
        addr_index = np.full(count, -1, dtype=np.int64)
        addr_rows: list[np.ndarray] = []

        for position, event in enumerate(events):
            opcode_ids[position] = OPCODE_TO_ID[event.opcode]
            dst[position] = -1 if event.dst is None else event.dst
            masks[position] = event.active_mask
            blocks[position] = event.block_id
            varying[position] = event.varying_special_src
            scalar_nonreg[position] = event.scalar_nonreg_srcs
            src_flat.extend(event.src_regs)
            src_offsets[position + 1] = len(src_flat)
            if event.dst_values is not None:
                values_index[position] = len(values_rows)
                values_rows.append(event.dst_values)
            if event.addresses is not None:
                addr_index[position] = len(addr_rows)
                addr_rows.append(event.addresses)

        empty = np.empty((0, trace.warp_size), dtype=np.uint32)
        return cls(
            kernel_name=trace.kernel_name,
            warp_size=trace.warp_size,
            warp_ids=np.array(
                [warp.warp_id for warp in trace.warps], dtype=np.int32
            ),
            warp_lengths=np.array(
                [len(warp) for warp in trace.warps], dtype=np.int64
            ),
            opcode_ids=opcode_ids,
            dst=dst,
            masks=masks,
            blocks=blocks,
            varying=varying,
            scalar_nonreg=scalar_nonreg,
            src_offsets=src_offsets,
            src_flat=np.array(src_flat, dtype=np.int32),
            values_index=values_index,
            values=np.stack(values_rows) if values_rows else empty,
            addr_index=addr_index,
            addresses=np.stack(addr_rows) if addr_rows else empty,
        )

    def slice_events(self, start: int, stop: int) -> "ColumnarTrace":
        """View-based sub-trace over the event range ``[start, stop)``.

        Fixed-width columns come back as views of this trace's arrays;
        the ragged tables (``src_offsets``/``values_index``/
        ``addr_index``) are rebased to the range, which is cheap — the
        snapshot and address *rows* stay views because
        :meth:`from_trace` appends them in event order, so any event
        range maps to a contiguous row range.  Warp tables cover the
        warps whose segments intersect the range, with boundary warps'
        lengths clipped to it (:class:`TraceChunk` records whether they
        continue across the cut).
        """
        warp_lo, warp_hi, warp_lengths = self._warps_in_range(start, stop)
        src_offsets = (
            self.src_offsets[start : stop + 1] - self.src_offsets[start]
        )
        src_flat = self.src_flat[
            self.src_offsets[start] : self.src_offsets[stop]
        ]
        values_index, values = _rebase_rows(
            self.values_index[start:stop], self.values, self.warp_size
        )
        addr_index, addresses = _rebase_rows(
            self.addr_index[start:stop], self.addresses, self.warp_size
        )
        return ColumnarTrace(
            kernel_name=self.kernel_name,
            warp_size=self.warp_size,
            warp_ids=self.warp_ids[warp_lo:warp_hi],
            warp_lengths=warp_lengths,
            opcode_ids=self.opcode_ids[start:stop],
            dst=self.dst[start:stop],
            masks=self.masks[start:stop],
            blocks=self.blocks[start:stop],
            varying=self.varying[start:stop],
            scalar_nonreg=self.scalar_nonreg[start:stop],
            src_offsets=src_offsets,
            src_flat=src_flat,
            values_index=values_index,
            values=values,
            addr_index=addr_index,
            addresses=addresses,
        )

    def _warp_bounds(self) -> np.ndarray:
        """Cumulative event bounds: warp *w* owns ``[b[w], b[w + 1])``."""
        bounds = np.zeros(self.num_warps + 1, dtype=np.int64)
        np.cumsum(self.warp_lengths, out=bounds[1:])
        return bounds

    def _warps_in_range(
        self, start: int, stop: int
    ) -> tuple[int, int, np.ndarray]:
        """Warps whose segments touch ``[start, stop)``.

        Returns ``(first_warp, one_past_last_warp, clipped_lengths)``.
        A zero-length warp sitting exactly on a chunk boundary goes to
        the chunk *starting* there (or, at the end of the trace, to the
        final chunk), so every warp lands in exactly one chunk.
        """
        bounds = self._warp_bounds()
        starts, ends = bounds[:-1], bounds[1:]
        total = int(bounds[-1])
        include = (starts < stop) & (ends > start)
        zero = starts == ends
        include |= zero & (starts >= start) & (
            (starts < stop) | ((stop == total) & (starts == stop))
        )
        selected = np.flatnonzero(include)
        if selected.size == 0:
            return 0, 0, np.zeros(0, dtype=np.int64)
        warp_lo = int(selected[0])
        warp_hi = int(selected[-1]) + 1
        lengths = np.clip(ends[warp_lo:warp_hi], start, stop) - np.clip(
            starts[warp_lo:warp_hi], start, stop
        )
        return warp_lo, warp_hi, lengths.astype(np.int64)

    def to_trace(self) -> KernelTrace:
        """Materialize the event form (each snapshot row copied out)."""
        if int(self.warp_lengths.sum()) != self.num_events:
            raise TraceError(
                f"columnar trace {self.kernel_name!r}: warp lengths sum to "
                f"{int(self.warp_lengths.sum())}, have "
                f"{self.num_events} events"
            )
        trace = KernelTrace(
            kernel_name=self.kernel_name, warp_size=self.warp_size
        )
        opcode_ids = self.opcode_ids.tolist()
        dst = self.dst.tolist()
        masks = self.masks.tolist()
        blocks = self.blocks.tolist()
        varying = self.varying.tolist()
        scalar_nonreg = self.scalar_nonreg.tolist()
        src_offsets = self.src_offsets.tolist()
        src_flat = self.src_flat.tolist()
        values_index = self.values_index.tolist()
        addr_index = self.addr_index.tolist()

        position = 0
        for warp_id, length in zip(
            self.warp_ids.tolist(), self.warp_lengths.tolist()
        ):
            warp = WarpTrace(warp_id=warp_id, warp_size=self.warp_size)
            for _ in range(length):
                value_row = values_index[position]
                addr_row = addr_index[position]
                warp.append(
                    TraceEvent(
                        opcode=ID_TO_OPCODE[opcode_ids[position]],
                        dst=None if dst[position] < 0 else dst[position],
                        src_regs=tuple(
                            src_flat[src_offsets[position]:src_offsets[position + 1]]
                        ),
                        active_mask=masks[position],
                        block_id=blocks[position],
                        dst_values=self.values[value_row].copy()
                        if value_row >= 0
                        else None,
                        addresses=self.addresses[addr_row].copy()
                        if addr_row >= 0
                        else None,
                        varying_special_src=varying[position],
                        scalar_nonreg_srcs=scalar_nonreg[position],
                    )
                )
                position += 1
            trace.warps.append(warp)
        return trace


def _rebase_rows(
    index: np.ndarray, rows: np.ndarray, warp_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rebase a row-index column to a sliced row matrix.

    ``index`` is a slice of ``values_index``/``addr_index``; the rows it
    references are contiguous (appended in event order), so the slice's
    rows are ``rows[first:last + 1]`` and the rebased index subtracts
    ``first``.  Events without a row keep ``-1``.
    """
    present = index >= 0
    if not present.any():
        return (
            np.full(index.shape[0], -1, dtype=np.int64),
            np.empty((0, warp_size), dtype=rows.dtype),
        )
    referenced = index[present]
    first = int(referenced[0])
    last = int(referenced[-1])
    rebased = np.where(present, index - first, -1).astype(np.int64)
    return rebased, rows[first : last + 1]


@dataclass
class TraceChunk:
    """One event-range window of a streamed trace.

    ``columnar`` is a self-consistent :class:`ColumnarTrace` covering
    this chunk's events only (views of the parent's arrays when produced
    by :func:`iter_chunks`).  Warps split by a chunk boundary appear in
    both neighbouring chunks with clipped lengths;
    ``first_warp_continued`` / ``last_warp_continues`` tell a streaming
    consumer which carry-state to thread across the cut, and
    ``warp_start`` gives the *global* index of the chunk's first warp so
    per-warp carries can be keyed consistently across chunks.
    """

    columnar: ColumnarTrace
    index: int
    start_event: int
    warp_start: int
    first_warp_continued: bool
    last_warp_continues: bool

    @property
    def num_events(self) -> int:
        return self.columnar.num_events


def iter_chunks(columnar: ColumnarTrace, chunk_events: int):
    """Stream a columnar trace as :class:`TraceChunk` windows.

    Chunk boundaries fall every ``chunk_events`` events regardless of
    warp structure — warps are split mid-stream and the per-layer carry
    objects (classifier BVR/EBR state, scalar-RF residency, timing-op
    accumulators, power aggregates) resume them.  An empty trace yields
    one empty chunk so streaming consumers build their (empty) outputs
    through the same path as every other trace.
    """
    if chunk_events < 1:
        raise TraceError(f"chunk_events must be >= 1, got {chunk_events}")
    total = columnar.num_events
    bounds = columnar._warp_bounds()
    index = 0
    start = 0
    while True:
        stop = min(start + chunk_events, total)
        piece = columnar.slice_events(start, stop)
        warp_lo, warp_hi, _ = columnar._warps_in_range(start, stop)
        yield TraceChunk(
            columnar=piece,
            index=index,
            start_event=start,
            warp_start=warp_lo,
            first_warp_continued=(
                warp_hi > warp_lo and int(bounds[warp_lo]) < start
            ),
            last_warp_continues=(
                warp_hi > warp_lo and int(bounds[warp_hi]) > stop
            ),
        )
        index += 1
        start = stop
        if start >= total:
            return


def concat_columnar(traces: list[ColumnarTrace]) -> ColumnarTrace:
    """Concatenate whole-warp columnar traces into one stream.

    The inverse of warp-aligned slicing: per-event and flat arrays
    concatenate, offset/row-index tables rebase.  Used to materialize
    the whole-trace arm of a synthetic replica stream
    (:mod:`repro.workloads.synth`) for differential comparison — the
    streamed arm never builds this.
    """
    if not traces:
        raise TraceError("concat_columnar needs >= 1 trace")
    first = traces[0]
    src_offsets = np.zeros(
        sum(t.num_events for t in traces) + 1, dtype=np.int64
    )
    position = 0
    src_base = 0
    values_index_parts = []
    addr_index_parts = []
    values_base = 0
    addr_base = 0
    for trace in traces:
        count = trace.num_events
        src_offsets[position + 1 : position + count + 1] = (
            trace.src_offsets[1:] - trace.src_offsets[0] + src_base
        )
        src_base = int(src_offsets[position + count])
        position += count
        values_index_parts.append(
            np.where(
                trace.values_index >= 0,
                trace.values_index + values_base,
                -1,
            ).astype(np.int64)
        )
        values_base += int(trace.values.shape[0])
        addr_index_parts.append(
            np.where(
                trace.addr_index >= 0, trace.addr_index + addr_base, -1
            ).astype(np.int64)
        )
        addr_base += int(trace.addresses.shape[0])
    return ColumnarTrace(
        kernel_name=first.kernel_name,
        warp_size=first.warp_size,
        warp_ids=np.concatenate([t.warp_ids for t in traces]),
        warp_lengths=np.concatenate([t.warp_lengths for t in traces]),
        opcode_ids=np.concatenate([t.opcode_ids for t in traces]),
        dst=np.concatenate([t.dst for t in traces]),
        masks=np.concatenate([t.masks for t in traces]),
        blocks=np.concatenate([t.blocks for t in traces]),
        varying=np.concatenate([t.varying for t in traces]),
        scalar_nonreg=np.concatenate([t.scalar_nonreg for t in traces]),
        src_offsets=src_offsets,
        src_flat=np.concatenate([t.src_flat for t in traces]),
        values_index=np.concatenate(values_index_parts),
        values=np.concatenate([t.values for t in traces]),
        addr_index=np.concatenate(addr_index_parts),
        addresses=np.concatenate([t.addresses for t in traces]),
    )
