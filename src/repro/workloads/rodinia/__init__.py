"""Rodinia proxy workloads."""
