"""Severity-leveled, machine-readable lint diagnostics.

Every finding a lint pass emits is a :class:`Diagnostic` carrying a
stable rule code (``GS-E001``, ``GS-W101``, ...), a severity, and a
source location (kernel name, block id, instruction index).  Rule codes
never change meaning once shipped; tooling may filter or gate on them.
The full vocabulary lives in :data:`RULES` — the table rendered in the
README — and :class:`LintReport` aggregates one kernel's findings with
severity filtering and JSON export.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        for severity in cls:
            if severity.value == text.strip().lower():
                return severity
        known = ", ".join(s.value for s in cls)
        raise ValueError(f"unknown severity {text!r}; known: {known}")


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: The stable rule vocabulary: code -> (severity, one-line title).
#: Codes follow ``GS-<severity letter><3 digits>``; E0xx are dataflow
#: errors, W1xx dataflow/structural warnings, I2xx informational reports.
RULES: dict[str, tuple[Severity, str]] = {
    "GS-E001": (Severity.ERROR, "register read but never written on any path"),
    "GS-E002": (Severity.ERROR, "register read before definition on some path"),
    "GS-E003": (Severity.ERROR, "register count exceeds the per-thread budget"),
    "GS-W101": (Severity.WARNING, "dead write: value never live afterwards"),
    "GS-W102": (Severity.WARNING, "branch arms only reconverge at kernel exit"),
    "GS-W103": (Severity.WARNING, "block unreachable from the entry block"),
    "GS-I201": (Severity.INFO, "static scalarization summary"),
    "GS-I202": (Severity.INFO, "register pressure / encoding width report"),
    "GS-I203": (Severity.INFO, "degenerate branch: both arms identical"),
    "GS-W104": (Severity.WARNING, "register provably narrow but allocated full-width"),
    "GS-I204": (Severity.INFO, "static compressibility report"),
}

_SEVERITY_LETTER = {Severity.ERROR: "E", Severity.WARNING: "W", Severity.INFO: "I"}


def _validate_rules(rules: dict[str, tuple[Severity, str]]) -> None:
    """Sanity-check the rule vocabulary at import time.

    Codes must be well-formed ``GS-<letter><3 digits>``, the severity
    letter must agree with the registered :class:`Severity`, and titles
    must be non-empty.  (Uniqueness is structural — ``rules`` is a dict —
    so we instead reject accidental *reuse* of the numeric part across
    severities, which would make codes ambiguous in prose.)
    """
    seen_numbers: dict[str, str] = {}
    for code, (severity, title) in rules.items():
        if len(code) != 7 or not code.startswith("GS-") or not code[4:].isdigit():
            raise ValueError(f"malformed rule code {code!r}")
        letter = code[3]
        if letter != _SEVERITY_LETTER[severity]:
            raise ValueError(
                f"rule {code}: severity letter {letter!r} does not match "
                f"registered severity {severity.value!r}"
            )
        if not title:
            raise ValueError(f"rule {code}: empty title")
        number = code[4:]
        if number in seen_numbers:
            raise ValueError(
                f"rule {code}: number {number} already used by {seen_numbers[number]}"
            )
        seen_numbers[number] = code


_validate_rules(RULES)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinned to a rule code and a source location.

    ``block_id`` is ``None`` for kernel-wide findings; ``inst_index`` is
    ``None`` for findings on a block's terminator or the whole block.
    """

    rule: str
    kernel: str
    message: str
    block_id: int | None = None
    inst_index: int | None = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unregistered rule code {self.rule!r}")

    @property
    def severity(self) -> Severity:
        return RULES[self.rule][0]

    def location(self) -> str:
        if self.block_id is None:
            return self.kernel
        if self.inst_index is None:
            return f"{self.kernel}:b{self.block_id}"
        return f"{self.kernel}:b{self.block_id}:i{self.inst_index}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "kernel": self.kernel,
            "block": self.block_id,
            "instruction": self.inst_index,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.severity.value:7s} {self.rule} {self.location()}: {self.message}"


@dataclass
class LintReport:
    """All diagnostics produced for one kernel, in pass order."""

    kernel: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, found: list[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        """Diagnostics at or above a severity."""
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def to_dict(self) -> dict:
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return {
            "kernel": self.kernel,
            "counts": counts,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [d.render() for d in self.diagnostics if d.severity >= min_severity]
        if not lines:
            return f"{self.kernel}: clean"
        return "\n".join(lines)
