"""Unit tests for per-architecture views of classified events."""

import numpy as np

from repro.config import ArchitectureConfig
from repro.isa import KernelBuilder
from repro.regfile.access import AccessKind
from repro.scalar.architectures import (
    process_classified,
    process_trace,
    processed_statistics,
)
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import classify_trace
from repro.simt import MemoryImage

from tests.conftest import run_one_warp

BASELINE = ArchitectureConfig.baseline()
ALU_SCALAR = ArchitectureConfig.alu_scalar()
GS_NO_DIV = ArchitectureConfig.gscalar_no_divergent()
GSCALAR = ArchitectureConfig.gscalar()


def scalar_chain_trace():
    b = KernelBuilder("chain")
    tid = b.tid()
    c = b.mov(5)
    d = b.iadd(c, 1)
    e = b.sin(b.i2f(d))
    addr = b.mov(0x1000)
    f = b.ld_global(addr)
    b.st_global(b.imad(tid, 4, 0x2000), b.iadd(f, tid))
    kernel = b.finish()
    return run_one_warp(kernel, MemoryImage()), kernel


def divergent_scalar_trace():
    b = KernelBuilder("divergent_scalar")
    tid = b.tid()
    c = b.mov(5)
    cond = b.seteq(b.and_(tid, 1), 0)
    with b.if_(cond):
        x = b.iadd(c, 1)
        b.iadd(x, 2)
    kernel = b.finish()
    return run_one_warp(kernel, MemoryImage()), kernel


class TestScalarExecutionDecisions:
    def test_baseline_never_scalar(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, BASELINE, kernel.num_registers)
        assert all(not p.scalar_executed for warp in processed for p in warp)

    def test_alu_scalar_takes_only_alu(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, ALU_SCALAR, kernel.num_registers)
        executed = [p for warp in processed for p in warp if p.scalar_executed]
        assert executed
        assert all(p.scalar_class is ScalarClass.ALU_SCALAR for p in executed)

    def test_gscalar_takes_sfu_and_mem(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, GSCALAR, kernel.num_registers)
        classes = {
            p.scalar_class for warp in processed for p in warp if p.scalar_executed
        }
        assert ScalarClass.SFU_SCALAR in classes
        assert ScalarClass.MEM_SCALAR in classes

    def test_divergent_scalar_gated_by_flag(self):
        trace, kernel = divergent_scalar_trace()
        without = process_trace(trace, GS_NO_DIV, kernel.num_registers)
        with_div = process_trace(trace, GSCALAR, kernel.num_registers)

        def executed_divergent(processed):
            return [
                p
                for warp in processed
                for p in warp
                if p.scalar_executed
                and p.scalar_class is ScalarClass.DIVERGENT_SCALAR
            ]

        assert not executed_divergent(without)
        assert len(executed_divergent(with_div)) == 2


class TestExecLanes:
    def test_scalar_execution_uses_one_lane(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, GSCALAR, kernel.num_registers)
        for warp in processed:
            for p in warp:
                if p.scalar_executed:
                    assert p.exec_lanes == 1

    def test_vector_execution_uses_active_lanes(self):
        trace, kernel = divergent_scalar_trace()
        processed = process_trace(trace, BASELINE, kernel.num_registers)
        for warp in processed:
            for p in warp:
                if p.classified.divergent and not p.scalar_executed:
                    assert p.exec_lanes == p.classified.event.active_lane_count()

    def test_control_consumes_no_exec_lanes(self):
        trace, kernel = divergent_scalar_trace()
        processed = process_trace(trace, BASELINE, kernel.num_registers)
        from repro.isa.opcodes import OpCategory

        for warp in processed:
            for p in warp:
                if p.classified.category is OpCategory.CTRL:
                    assert p.exec_lanes == 0


class TestRegisterFileAccesses:
    def test_baseline_all_full_accesses(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, BASELINE, kernel.num_registers)
        kinds = {
            a.kind for warp in processed for p in warp for a in p.rf_accesses
        }
        assert kinds <= {AccessKind.FULL_READ, AccessKind.FULL_WRITE,
                         AccessKind.PARTIAL_WRITE}

    def test_gscalar_scalar_reads_hit_sidecar_only(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, GSCALAR, kernel.num_registers)
        kinds = [
            a.kind for warp in processed for p in warp for a in p.rf_accesses
        ]
        assert AccessKind.SCALAR_READ in kinds
        assert AccessKind.SCALAR_WRITE in kinds

    def test_alu_scalar_uses_dedicated_rf(self):
        trace, kernel = scalar_chain_trace()
        processed = process_trace(trace, ALU_SCALAR, kernel.num_registers)
        kinds = [
            a.kind for warp in processed for p in warp for a in p.rf_accesses
        ]
        assert AccessKind.SCALAR_RF_READ in kinds
        assert AccessKind.SCALAR_RF_WRITE in kinds

    def test_divergent_write_is_partial_with_mask(self):
        trace, kernel = divergent_scalar_trace()
        processed = process_trace(trace, GSCALAR, kernel.num_registers)
        partials = [
            a
            for warp in processed
            for p in warp
            for a in p.rf_accesses
            if a.kind is AccessKind.PARTIAL_WRITE
        ]
        assert partials
        assert all(a.active_mask == 0x55555555 for a in partials)

    def test_decompress_move_adds_read_write_pair(self):
        b = KernelBuilder("move")
        tid = b.tid()
        value = b.mov(3)  # compressed scalar write
        cond = b.seteq(b.and_(tid, 1), 0)
        with b.if_(cond):
            value = b.mov(9, dst=value)  # divergent overwrite
        kernel = b.finish()
        trace = run_one_warp(kernel, MemoryImage())
        processed = process_trace(trace, GSCALAR, kernel.num_registers)
        movers = [
            p for warp in processed for p in warp if p.extra_instructions
        ]
        assert len(movers) == 1
        kinds = [a.kind for a in movers[0].rf_accesses]
        assert AccessKind.FULL_WRITE in kinds  # store back uncompressed
        assert AccessKind.PARTIAL_WRITE in kinds  # then the partial write

    def test_baseline_has_no_compression_ops(self):
        trace, kernel = scalar_chain_trace()
        stats = processed_statistics(
            process_trace(trace, BASELINE, kernel.num_registers)
        )
        assert stats.compressor_ops == 0
        assert stats.decompressor_ops == 0

    def test_gscalar_counts_compression_ops(self):
        trace, kernel = scalar_chain_trace()
        stats = processed_statistics(
            process_trace(trace, GSCALAR, kernel.num_registers)
        )
        assert stats.compressor_ops > 0


class TestProcessClassified:
    def test_matches_process_trace(self):
        trace, kernel = scalar_chain_trace()
        classified = classify_trace(trace, kernel.num_registers)
        a = process_trace(trace, GSCALAR, kernel.num_registers)
        b = process_classified(classified, GSCALAR, trace.warp_size)
        stats_a = processed_statistics(a)
        stats_b = processed_statistics(b)
        assert stats_a.scalar_executed == stats_b.scalar_executed
        assert stats_a.exec_lane_sum == stats_b.exec_lane_sum
