"""Process-memory observables: peak RSS and bytes in flight.

Two gauges back the streaming pipeline's memory story
(:mod:`repro.experiments.streaming`):

* ``peak_rss_bytes`` — the OS-reported resident-set high-water mark of
  this process (``resource.getrusage``).  Monotone per process; merged
  by max across a worker pool, so an experiment's telemetry reports
  the largest resident footprint any process reached.
* ``bytes_in_flight`` — the pipeline-reported total of live chunk
  arrays (trace slice + classified + per-architecture processed
  columns) at each chunk boundary.  Unlike RSS this is exact and
  allocator-independent, so tests can assert streaming really bounds
  the working set without depending on malloc behaviour.

Both are plain :meth:`repro.obs.telemetry.Telemetry.gauge_max` gauges
and surface through ``--stats-json`` and the Prometheus exporter.
"""

from __future__ import annotations

import resource
import sys

from repro.obs.telemetry import Telemetry, get_telemetry

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """This process's resident-set high-water mark, in bytes."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int(usage.ru_maxrss) * _RU_MAXRSS_SCALE


def record_peak_rss(telemetry: Telemetry | None = None) -> int:
    """Sample peak RSS into the ``peak_rss_bytes`` gauge; returns it."""
    value = peak_rss_bytes()
    (telemetry or get_telemetry()).gauge_max("peak_rss_bytes", value)
    return value


def record_bytes_in_flight(live_bytes: int, telemetry: Telemetry | None = None) -> None:
    """Raise the ``bytes_in_flight`` gauge to ``live_bytes`` if higher."""
    (telemetry or get_telemetry()).gauge_max("bytes_in_flight", live_bytes)
