"""Half-register compression (§3.1 end, §4.3).

The memory compiler's bank is built from 8 independently-activated
128-bit arrays, so byte ``i`` of a 32-lane register occupies *two*
arrays — one per 16-lane half.  Compressing each half separately costs
one extra BVR/EBR pair per register and enables half-warp scalar
execution: a half whose lanes all hold one value can run on one lane.

The FS ("full scalar") flag of Figure 7(c) records whether both halves
are scalar *and* hold the same value, in which case a single lane can
serve the whole warp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.compression.encoding import SCALAR_PREFIX
from repro.compression.gscalar import _enc_from_diff, common_prefix_bytes


@dataclass(frozen=True)
class HalfRegisterEncoding:
    """Per-half encodings of one register plus the FS flag."""

    enc_lo: int
    enc_hi: int
    base_lo: int
    base_hi: int
    full_scalar: bool

    @property
    def lo_is_scalar(self) -> bool:
        return self.enc_lo == SCALAR_PREFIX

    @property
    def hi_is_scalar(self) -> bool:
        return self.enc_hi == SCALAR_PREFIX

    @property
    def both_halves_scalar(self) -> bool:
        """Each half scalar, possibly with two distinct values."""
        return self.lo_is_scalar and self.hi_is_scalar

    def stored_data_bytes(self, warp_size: int) -> int:
        """Data-array bytes with each half compressed independently."""
        half = warp_size // 2
        return half * (4 - self.enc_lo) + half * (4 - self.enc_hi)


def compress_halves(
    values: np.ndarray, granularity: int | None = None
) -> HalfRegisterEncoding:
    """Compute per-half encodings of a warp-wide register.

    ``granularity`` is the half size in lanes (defaults to warp_size/2;
    the paper keeps it at 16 even for 64-thread warps, making the
    mechanism "quarter-scalar" there — Figure 10).  When granularity is
    smaller than half the warp, each half reported here aggregates the
    sub-chunks: a "half" is scalar only if each of its chunks is scalar
    and all chunks agree.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    warp_size = words.shape[0]
    if warp_size % 2 != 0:
        raise CompressionError(f"warp size must be even, got {warp_size}")
    half = warp_size // 2
    if granularity is None:
        granularity = half
    if granularity < 1 or half % granularity != 0:
        raise CompressionError(
            f"granularity {granularity} must divide the half size {half}"
        )
    enc_lo, base_lo = _encode_half(words[:half], granularity)
    enc_hi, base_hi = _encode_half(words[half:], granularity)
    full_scalar = (
        enc_lo == SCALAR_PREFIX and enc_hi == SCALAR_PREFIX and base_lo == base_hi
    )
    return HalfRegisterEncoding(
        enc_lo=enc_lo,
        enc_hi=enc_hi,
        base_lo=base_lo,
        base_hi=base_hi,
        full_scalar=full_scalar,
    )


def _encode_half(half_words: np.ndarray, granularity: int) -> tuple[int, int]:
    """Encoding of one half built from ``granularity``-lane chunks."""
    chunks = half_words.reshape(-1, granularity)
    enc = min(common_prefix_bytes(chunk) for chunk in chunks)
    if enc == SCALAR_PREFIX and chunks.shape[0] > 1:
        # Every chunk is internally scalar; the half is scalar only if
        # the chunks also agree with each other.
        firsts = chunks[:, 0]
        if not bool(np.all(firsts == firsts[0])):
            enc = common_prefix_bytes(half_words)
    return enc, int(half_words[0])


@dataclass(frozen=True)
class HalfBatch:
    """Per-row half-register encodings over a register matrix.

    The array counterpart of :class:`HalfRegisterEncoding`: element *i*
    of each field is the value :func:`compress_halves` would compute
    for row *i*.
    """

    enc_lo: np.ndarray
    enc_hi: np.ndarray
    base_lo: np.ndarray
    base_hi: np.ndarray
    full_scalar: np.ndarray  # bool


def compress_halves_batch(
    values: np.ndarray, granularity: int | None = None
) -> HalfBatch:
    """Per-half encodings of every row of a ``(n, warp_size)`` matrix.

    Bit-identical to mapping :func:`compress_halves` over the rows, but
    runs as whole-matrix array kernels: one XOR + OR-reduce per
    granularity chunk instead of several tiny numpy calls per register.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if words.ndim != 2:
        raise CompressionError(
            f"expected a (rows, lanes) matrix, got shape {words.shape}"
        )
    warp_size = words.shape[1]
    if warp_size % 2 != 0:
        raise CompressionError(f"warp size must be even, got {warp_size}")
    half = warp_size // 2
    if granularity is None:
        granularity = half
    if granularity < 1 or half % granularity != 0:
        raise CompressionError(
            f"granularity {granularity} must divide the half size {half}"
        )
    enc_lo, base_lo = _encode_half_batch(words[:, :half], granularity)
    enc_hi, base_hi = _encode_half_batch(words[:, half:], granularity)
    full_scalar = (
        (enc_lo == SCALAR_PREFIX)
        & (enc_hi == SCALAR_PREFIX)
        & (base_lo == base_hi)
    )
    return HalfBatch(
        enc_lo=enc_lo,
        enc_hi=enc_hi,
        base_lo=base_lo,
        base_hi=base_hi,
        full_scalar=full_scalar,
    )


def _encode_half_batch(
    half_words: np.ndarray, granularity: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_encode_half` over the rows of one half."""
    chunks = half_words.reshape(half_words.shape[0], -1, granularity)
    chunk_diff = np.bitwise_or.reduce(chunks ^ chunks[:, :, :1], axis=2)
    enc = _enc_from_diff(chunk_diff).min(axis=1)
    if chunks.shape[1] > 1:
        # Rows whose chunks are each scalar but disagree with one
        # another fall back to the whole-half prefix, as the scalar
        # path does.
        firsts = chunks[:, :, 0]
        disagree = ~np.all(firsts == firsts[:, :1], axis=1)
        fix = (enc == SCALAR_PREFIX) & disagree
        if fix.any():
            whole_diff = np.bitwise_or.reduce(
                half_words ^ half_words[:, :1], axis=1
            )
            enc = np.where(fix, _enc_from_diff(whole_diff), enc)
    return enc, half_words[:, 0]


def scalar_chunks(values: np.ndarray, granularity: int) -> list[bool]:
    """Which ``granularity``-lane chunks of the register are scalar.

    Used by the Figure 10 sweep, where a 64-thread warp is checked at
    16-thread granularity ("quarter-scalar").
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if words.shape[0] % granularity != 0:
        raise CompressionError(
            f"granularity {granularity} must divide warp size {words.shape[0]}"
        )
    chunks = words.reshape(-1, granularity)
    return [common_prefix_bytes(chunk) == SCALAR_PREFIX for chunk in chunks]
