"""Structural tests: real values through real byte-rotated arrays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.regfile.bank import RegisterBank


class TestCompressedWrites:
    def test_scalar_round_trip(self):
        bank = RegisterBank()
        record = bank.write_compressed(0, np.full(32, 0xDEADBEEF, dtype=np.uint32))
        assert record.data_arrays == 0  # scalar: only the sidecar
        values, read_record = bank.read(0)
        assert np.array_equal(values, np.full(32, 0xDEADBEEF, dtype=np.uint32))
        assert read_record.data_arrays == 0
        assert bank.is_scalar(0)

    def test_three_byte_round_trip(self):
        bank = RegisterBank()
        values = np.uint32(0xC04039C0) + np.arange(0, 64, 2, dtype=np.uint32)
        record = bank.write_compressed(3, values)
        assert record.data_arrays == 2
        out, _ = bank.read(3)
        assert np.array_equal(out, values)

    def test_uncompressible_round_trip(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(np.uint32)
        bank = RegisterBank()
        record = bank.write_compressed(5, values)
        assert record.data_arrays == 8
        out, _ = bank.read(5)
        assert np.array_equal(out, values)

    def test_register_out_of_range(self):
        bank = RegisterBank(num_registers=4)
        with pytest.raises(ConfigError):
            bank.read(4)


class TestDivergentWrites:
    def test_partial_update_preserves_inactive_lanes(self):
        bank = RegisterBank()
        original = np.arange(32, dtype=np.uint32) + 0x1000  # not compressed (enc 0? )
        # Force an uncompressed starting state via random values.
        rng = np.random.default_rng(3)
        original = rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(np.uint32)
        bank.write_compressed(1, original)
        mask = np.zeros(32, dtype=bool)
        mask[::2] = True
        update = np.full(32, 0xAA55AA55, dtype=np.uint32)
        record = bank.write_divergent(1, update, mask)
        assert record.data_arrays == 8
        out, _ = bank.read(1)
        assert np.array_equal(out[::2], update[::2])
        assert np.array_equal(out[1::2], original[1::2])

    def test_divergent_write_to_compressed_register_requires_move(self):
        bank = RegisterBank()
        bank.write_compressed(2, np.full(32, 9, dtype=np.uint32))  # scalar: enc 4
        mask = np.ones(32, dtype=bool)
        mask[0] = False
        with pytest.raises(ConfigError, match="decompress"):
            bank.write_divergent(2, np.zeros(32, dtype=np.uint32), mask)
        bank.decompress_in_place(2)
        bank.write_divergent(2, np.zeros(32, dtype=np.uint32), mask)
        out, _ = bank.read(2)
        assert out[0] == 9  # inactive lane kept the old scalar value
        assert not out[1:].any()

    def test_divergent_sidecar_holds_mask_and_active_enc(self):
        bank = RegisterBank()
        rng = np.random.default_rng(5)
        bank.write_compressed(
            0, rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(np.uint32)
        )
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        bank.write_divergent(0, np.full(32, 3, dtype=np.uint32), mask)
        enc, divergent, bvr = bank.encoding_of(0)
        assert divergent
        assert enc == 4  # active lanes all hold 3
        assert bvr == 0xF  # the active mask
        assert not bank.is_scalar(0)  # D=1 blocks plain scalar reads


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=32, max_size=32
    ).map(lambda xs: np.array(xs, dtype=np.uint32))
)
def test_structural_round_trip_property(values):
    """Any register value survives the rotated-array store/load path."""
    bank = RegisterBank()
    bank.write_compressed(7, values)
    out, _ = bank.read(7)
    assert np.array_equal(out, values)
