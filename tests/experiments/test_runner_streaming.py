"""ExperimentRunner in chunked-streaming mode: equality, cache, wiring.

The runner's ``chunk_events`` mode must produce bit-identical results
to whole-trace mode (cold, from the results sidecar, and from per-chunk
v5 banks), keep the synthetic tier fully streamed (no whole trace ever
materialized), honour parent-shipped bank hints, and surface the memory
gauges through ``stats.to_dict``.
"""

import dataclasses

import pytest

from repro.cli import main as cli_main
from repro.experiments.parallel import MatrixTask, run_matrix
from repro.experiments.runner import ExperimentRunner, matrix_architectures
from repro.workloads.registry import SCALES

ARCHES = matrix_architectures()
BENCHES = ("HS", "BT")
CHUNK = 16


@pytest.fixture(scope="module")
def whole_reference():
    runner = ExperimentRunner(scale="tiny")
    return {
        (abbr, arch.name): runner.power(abbr, arch)
        for abbr in BENCHES
        for arch in ARCHES
    }


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory, whole_reference):
    """A cache cold-filled by one chunked runner, plus its results."""
    cache = tmp_path_factory.mktemp("chunked-cache")
    runner = ExperimentRunner(scale="tiny", cache_dir=cache, chunk_events=CHUNK)
    power = {
        (abbr, arch.name): runner.power(abbr, arch)
        for abbr in BENCHES
        for arch in ARCHES
    }
    return cache, runner, power


def _drop_result_sidecars(cache):
    removed = 0
    for path in cache.glob("*_results_*.pkl"):
        path.unlink()
        removed += 1
    assert removed > 0
    return removed


class TestValidation:
    def test_zero_chunk_events_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", chunk_events=0)

    def test_event_classifier_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", chunk_events=8, classifier="event")

    def test_event_arch_engine_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", chunk_events=8, arch_engine="event")

    def test_cli_rejects_bad_chunk_events(self):
        with pytest.raises(SystemExit):
            cli_main(["fig1", "--scale", "tiny", "--chunk-events", "0"])
        with pytest.raises(SystemExit):
            cli_main(
                ["fig1", "--scale", "tiny", "--chunk-events", "8",
                 "--classifier", "event"]
            )


class TestChunkedEqualsWhole:
    def test_cold_streamed_results_bit_identical(self, warm_cache, whole_reference):
        _, runner, power = warm_cache
        for pair, report in whole_reference.items():
            assert power[pair] == report, f"chunked != whole for {pair}"
        counters = runner.stats.counters
        assert counters.get("stream_chunks", 0) > 0
        assert counters.get("stream_cold_restarts", 0) == 0

    def test_timing_cached_alongside_power(self, warm_cache):
        _, runner, _ = warm_cache
        # The streamed pass fills both result caches in one walk.
        for abbr in BENCHES:
            for arch in ARCHES:
                assert (abbr, arch.name) in runner._timing
                assert (abbr, arch.name) in runner._power

    def test_result_sidecar_replay(self, warm_cache, whole_reference):
        cache, _, _ = warm_cache
        runner = ExperimentRunner(scale="tiny", cache_dir=cache, chunk_events=CHUNK)
        for pair, report in whole_reference.items():
            assert runner.power(pair[0], ARCHES[[a.name for a in ARCHES].index(pair[1])]) == report
        counters = runner.stats.counters
        assert counters.get("result_cache_hits", 0) > 0
        assert counters.get("stream_chunks", 0) == 0  # nothing streamed

    def test_chunk_bank_replay_without_recompute(self, warm_cache, whole_reference):
        cache, _, _ = warm_cache
        _drop_result_sidecars(cache)
        runner = ExperimentRunner(scale="tiny", cache_dir=cache, chunk_events=CHUNK)
        for abbr in BENCHES:
            for arch in ARCHES:
                assert runner.power(abbr, arch) == whole_reference[(abbr, arch.name)]
        counters = runner.stats.counters
        assert counters.get("ccols_cache_hits", 0) > 0
        assert counters.get("pcols_cache_hits", 0) > 0
        stages = runner.stats.stage_seconds
        assert "classify" not in stages  # warm banks: classifier never ran
        assert "process" not in stages

    def test_bank_hints_skip_probes(self, warm_cache, whole_reference):
        cache, cold_runner, _ = warm_cache
        _drop_result_sidecars(cache)
        runner = ExperimentRunner(scale="tiny", cache_dir=cache, chunk_events=CHUNK)
        runner.adopt_bank_hints(dict(cold_runner._bank_hints))
        for abbr in BENCHES:
            for arch in ARCHES:
                assert runner.power(abbr, arch) == whole_reference[(abbr, arch.name)]
        counters = runner.stats.counters
        assert counters.get("bank_hints_adopted", 0) > 0
        assert counters.get("bank_probes_skipped", 0) > 0
        assert counters.get("bank_hint_hits", 0) > 0

    def test_different_chunk_size_same_results(self, warm_cache, whole_reference):
        cache, _, _ = warm_cache
        # A different grid size gets its own bank namespace and still
        # reproduces the same outputs.
        runner = ExperimentRunner(scale="tiny", cache_dir=cache, chunk_events=5)
        for arch in ARCHES:
            assert runner.power("HS", arch) == whole_reference[("HS", arch.name)]


class TestSyntheticStreaming:
    @pytest.fixture()
    def synth_scale(self, monkeypatch):
        scale = dataclasses.replace(
            SCALES["tiny"], name="synthtest", synthetic_events=1500
        )
        monkeypatch.setitem(SCALES, "synthtest", scale)
        return scale

    def test_streamed_never_materializes(self, synth_scale):
        streamed = ExperimentRunner(scale="synthtest", chunk_events=128)
        whole = ExperimentRunner(scale="synthtest")
        arches = ARCHES[:2]
        for arch in arches:
            assert streamed.power("HS", arch) == whole.power("HS", arch)
        # The streamed runner fed replica chunks straight through — the
        # replicated whole trace was never built.
        run = streamed.run("HS")
        assert "HS" in streamed._seeds
        assert run._columnar is None
        assert streamed.stats.counters.get("synthetic_materializations", 0) == 0
        # The whole-trace arm had to materialize every replica.
        assert whole.stats.counters.get("synthetic_materializations", 0) >= 1

    def test_replica_count_respects_floor(self, synth_scale):
        streamed = ExperimentRunner(scale="synthtest", chunk_events=128)
        streamed.run("HS")
        seed, replicas = streamed._seeds["HS"]
        assert seed.num_events * replicas >= synth_scale.synthetic_events


class TestParallelPassthrough:
    def test_task_fields_default(self):
        task = MatrixTask(
            abbr="HS", scale="tiny", cache_dir="/nonexistent",
            warp_sizes=(32,), arches=ARCHES[:1], config=None, params=None,
        )
        assert task.chunk_events is None
        assert task.bank_hints == ()

    def test_run_matrix_chunked(self, tmp_path, whole_reference):
        stats = run_matrix(
            BENCHES, "tiny", tmp_path, jobs=1,
            arches=ARCHES, chunk_events=CHUNK,
        )
        assert stats.counters.get("stream_chunks", 0) > 0
        # The warmed cache replays bit-identical in the parent.
        replay = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, chunk_events=CHUNK
        )
        for abbr in BENCHES:
            for arch in ARCHES:
                assert replay.power(abbr, arch) == whole_reference[(abbr, arch.name)]
        assert replay.stats.counters.get("result_cache_hits", 0) > 0


class TestStatsGauges:
    def test_streamed_stats_report_memory_gauges(self, warm_cache):
        _, runner, _ = warm_cache
        payload = runner.stats.to_dict()
        assert "gauges" in payload
        assert payload["gauges"].get("peak_rss_bytes", 0) > 0
        assert payload["gauges"].get("bytes_in_flight", 0) > 0

    def test_whole_trace_stats_still_stamp_peak_rss(self):
        runner = ExperimentRunner(scale="tiny")
        runner.power("HS", ARCHES[0])
        payload = runner.stats.to_dict()
        assert payload["gauges"].get("peak_rss_bytes", 0) > 0
        assert "bytes_in_flight" not in payload["gauges"]
