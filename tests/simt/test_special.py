"""Unit tests for SFU functional semantics."""

import numpy as np

from repro.simt.special import (
    UNARY_SFU,
    sfu_cos,
    sfu_ex2,
    sfu_fdiv,
    sfu_lg2,
    sfu_rcp,
    sfu_rsqrt,
    sfu_sin,
    sfu_sqrt,
)


def bits(*values):
    return np.array(values, dtype=np.float32).view(np.uint32)


def floats(raw):
    return raw.view(np.float32)


class TestUnaryFunctions:
    def test_sin_known_values(self):
        out = floats(sfu_sin(bits(0.0, np.pi / 2)))
        assert out[0] == 0.0
        assert abs(out[1] - 1.0) < 1e-6

    def test_cos_known_values(self):
        out = floats(sfu_cos(bits(0.0)))
        assert out[0] == 1.0

    def test_ex2(self):
        out = floats(sfu_ex2(bits(0.0, 3.0, -1.0)))
        assert np.allclose(out, [1.0, 8.0, 0.5])

    def test_lg2(self):
        out = floats(sfu_lg2(bits(8.0, 1.0)))
        assert np.allclose(out, [3.0, 0.0])

    def test_lg2_of_zero_is_negative_infinity(self):
        out = floats(sfu_lg2(bits(0.0)))
        assert np.isneginf(out[0])

    def test_rsqrt(self):
        out = floats(sfu_rsqrt(bits(4.0)))
        assert abs(out[0] - 0.5) < 1e-6

    def test_rcp_of_zero_is_infinity(self):
        out = floats(sfu_rcp(bits(0.0)))
        assert np.isinf(out[0])

    def test_sqrt_of_negative_is_nan(self):
        out = floats(sfu_sqrt(bits(-1.0)))
        assert np.isnan(out[0])

    def test_results_are_float32_precision(self):
        raw = sfu_sin(bits(1.0))
        assert raw.dtype == np.uint32
        expected = np.sin(np.float32(1.0), dtype=np.float32)
        assert floats(raw)[0] == expected


class TestFdiv:
    def test_division(self):
        out = floats(sfu_fdiv(bits(6.0), bits(3.0)))
        assert out[0] == 2.0

    def test_division_by_zero(self):
        out = floats(sfu_fdiv(bits(1.0), bits(0.0)))
        assert np.isinf(out[0])

    def test_zero_over_zero_is_nan(self):
        out = floats(sfu_fdiv(bits(0.0), bits(0.0)))
        assert np.isnan(out[0])


def test_unary_table_is_complete():
    assert len(UNARY_SFU) == 7
