"""Static kernel analysis: lint passes, diagnostics, divergence prediction.

The subsystem has three layers:

* :mod:`~repro.analysis.static_.diagnostics` — the stable rule-code
  vocabulary (``GS-E001``...) and machine-readable reports;
* :mod:`~repro.analysis.static_.framework` — the pass manager running
  ordered :class:`LintPass` pipelines over a shared
  :class:`AnalysisContext` of cached CFG analyses;
* the passes — uninitialized reads (reaching definitions), dead writes
  (liveness), compile-time scalarization (uniformity lattice), register
  pressure, and CFG structure.

``repro lint`` (see :mod:`repro.cli`) exposes the default pipeline over
the workload registry; :mod:`repro.experiments.staticdyn` scores the
uniformity pass against the dynamic tracker.
"""

from repro.analysis.static_.baseline import (
    diagnostic_key,
    load_baseline,
    unsuppressed,
    write_baseline,
)
from repro.analysis.static_.cfg import CfgStructurePass
from repro.analysis.static_.deadwrite import DeadWritePass
from repro.analysis.static_.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.analysis.static_.framework import (
    AnalysisContext,
    LintPass,
    PassManager,
    default_manager,
    default_passes,
    lint_kernel,
)
from repro.analysis.static_.pressure import RegisterPressurePass, block_pressure
from repro.analysis.static_.uninit import (
    UninitializedReadPass,
    definite_assignment,
    uninitialized_reads,
)
from repro.analysis.static_.uniformity import (
    StaticScalarClass,
    StaticScalarizationPass,
    Uniformity,
    UniformityResult,
    analyze_uniformity,
)
from repro.analysis.static_.widths import (
    WIDTH_ANALYSIS_VERSION,
    WidthAnalysisPass,
    WidthResult,
    WidthVal,
    analyze_widths,
)

__all__ = [
    "RULES",
    "WIDTH_ANALYSIS_VERSION",
    "AnalysisContext",
    "CfgStructurePass",
    "DeadWritePass",
    "Diagnostic",
    "LintPass",
    "LintReport",
    "PassManager",
    "RegisterPressurePass",
    "Severity",
    "StaticScalarClass",
    "StaticScalarizationPass",
    "Uniformity",
    "UniformityResult",
    "UninitializedReadPass",
    "WidthAnalysisPass",
    "WidthResult",
    "WidthVal",
    "analyze_uniformity",
    "analyze_widths",
    "block_pressure",
    "diagnostic_key",
    "load_baseline",
    "unsuppressed",
    "write_baseline",
    "default_manager",
    "default_passes",
    "definite_assignment",
    "lint_kernel",
    "uninitialized_reads",
]
