"""``cutcp`` (CC) proxy.

Signature reproduced: the cutoff-potential kernel — per-thread distance
computation against a sweep of atoms (vector float math plus ``rsqrt``),
a cutoff-radius branch that diverges warps whose lanes straddle the
sphere, and inside the in-range path a chain over the shared atom
charge and cutoff constants (divergent scalar).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1313

_ATOMS = INPUT_B


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the CC proxy at the given scale."""
    atoms = 2 * scale.inner_iterations
    b = KernelBuilder("cutcp")
    tid = b.tid()
    cutoff_sq = load_broadcast(b, PARAMS_BASE)
    charge_scale = load_broadcast(b, PARAMS_BASE + 4)
    grid_x = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    potential = b.mov(b.fimm(0.0))

    with b.for_range(0, atoms) as atom:
        atom_addr = b.imad(atom, 8, _ATOMS)  # scalar address math
        atom_x = b.ld_global(atom_addr)  # MEM scalar
        atom_q = b.ld_global(b.iadd(atom_addr, 4))  # MEM scalar
        dx = b.fsub(grid_x, atom_x)  # vector
        dist_sq = b.fmul(dx, dx)  # vector
        in_range = b.fsetlt(dist_sq, cutoff_sq)
        with b.if_(in_range):
            # In-range: scalar charge chain, then the per-thread kernel.
            scaled_q = b.fmul(atom_q, charge_scale)  # divergent scalar
            softened = b.fadd(scaled_q, b.fimm(0.05))  # divergent scalar
            inv_r = b.rsqrt(dist_sq)  # divergent vector SFU
            potential = b.ffma(softened, inv_r, potential, dst=potential)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), potential)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads, 0.0, 1.0, _SEED)
    )
    memory.bind_array(
        _ATOMS, datagen.narrow_floats(2 * atoms + 2, 0.0, 1.2, _SEED + 1)
    )
    memory.bind_array(PARAMS_BASE, np.array([1.0, 0.7], dtype=np.float32))
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="cutoff potential sweep with in-sphere divergence",
    )
