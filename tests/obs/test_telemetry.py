"""Unit tests for the telemetry registry core."""

import pickle

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    SpanEvent,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


class TestCounters:
    def test_unlabelled_counter_accumulates(self):
        t = Telemetry()
        t.count("hits")
        t.count("hits", 4)
        assert t.counter_value("hits") == 5

    def test_labels_are_order_insensitive(self):
        t = Telemetry()
        t.count("rf", bank=3, op="read")
        t.count("rf", op="read", bank=3)
        assert t.counter_value("rf", bank=3, op="read") == 2

    def test_label_values_stringified(self):
        t = Telemetry()
        t.count("rf", bank=3)
        assert t.counter_value("rf", bank="3") == 1

    def test_counters_named_returns_all_series(self):
        t = Telemetry()
        t.count("rf", bank=0)
        t.count("rf", bank=1, amount=2)
        t.count("other")
        assert len(t.counters_named("rf")) == 2
        assert list(t.counters_named("other")) == [()]

    def test_counter_names_unique(self):
        t = Telemetry()
        t.count("a", x=1)
        t.count("a", x=2)
        t.count("b")
        assert sorted(t.counter_names()) == ["a", "b"]


class TestHistograms:
    def test_observe_accumulates_counts_per_value(self):
        t = Telemetry()
        t.observe("depth", 1)
        t.observe("depth", 1)
        t.observe("depth", 3, count=5)
        assert t.histogram("depth") == {1: 2, 3: 5}


class TestSpans:
    def test_span_records_interval(self):
        t = Telemetry()
        with t.span("stage", cat="test", tid=7, benchmark="BP"):
            pass
        (span,) = t.spans
        assert span.name == "stage"
        assert span.cat == "test"
        assert span.tid == 7
        assert span.args == {"benchmark": "BP"}
        assert span.dur_us >= 0
        assert span.ts_us > 0

    def test_spans_nest(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_span_event_dict_round_trip(self):
        span = SpanEvent("n", "c", 10, 20, 1, 2, {"k": "v"})
        assert SpanEvent.from_dict(span.to_dict()) == span


class TestMergeAndSnapshot:
    def _populated(self):
        t = Telemetry()
        t.count("hits", 3, kind="a")
        t.observe("depth", 2, count=4)
        with t.span("stage"):
            pass
        return t

    def test_snapshot_is_plain_builtins_and_picklable(self):
        payload = self._populated().snapshot()
        assert pickle.loads(pickle.dumps(payload)) == payload
        assert set(payload) == {"counters", "histograms", "gauges", "spans"}

    def test_merge_snapshot_matches_merge_registry(self):
        via_snapshot = Telemetry()
        via_snapshot.merge(self._populated().snapshot())
        via_registry = Telemetry()
        via_registry.merge(self._populated())
        assert via_snapshot.counters == via_registry.counters
        assert via_snapshot.histograms == via_registry.histograms
        assert len(via_snapshot.spans) == len(via_registry.spans) == 1

    def test_merge_accumulates(self):
        base = self._populated()
        base.merge(self._populated())
        assert base.counter_value("hits", kind="a") == 6
        assert base.histogram("depth") == {2: 8}
        assert len(base.spans) == 2

    def test_merge_none_is_noop(self):
        t = self._populated()
        before = dict(t.counters)
        t.merge(None)
        assert t.counters == before


class TestNullTelemetry:
    def test_disabled_flag(self):
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True

    def test_all_operations_record_nothing(self):
        t = NullTelemetry()
        t.count("hits", 5, kind="a")
        t.observe("depth", 1)
        with t.span("stage"):
            pass
        t.event({"k": "v"})
        t.merge(Telemetry())
        assert t.counters == {}
        assert t.histograms == {}
        assert t.spans == []


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_and_reset(self):
        t = Telemetry()
        try:
            assert set_telemetry(t) is t
            assert get_telemetry() is t
        finally:
            set_telemetry(None)
        assert get_telemetry() is NULL_TELEMETRY

    def test_session_installs_and_restores(self):
        with telemetry_session() as t:
            assert get_telemetry() is t
            assert t.enabled
        assert get_telemetry() is NULL_TELEMETRY

    def test_session_restores_previous_registry(self):
        outer = Telemetry()
        with telemetry_session(outer):
            with telemetry_session() as inner:
                assert get_telemetry() is inner
            assert get_telemetry() is outer
        assert get_telemetry() is NULL_TELEMETRY

    def test_session_restores_on_exception(self):
        try:
            with telemetry_session():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_telemetry() is NULL_TELEMETRY
