"""Tests for the benchmark registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.registry import (
    SCALES,
    all_workloads,
    build_workload,
    workload_by_name,
)


class TestRegistry:
    def test_all_seventeen_present(self):
        specs = all_workloads()
        assert len(specs) == 17
        abbrs = {spec.abbr for spec in specs}
        assert abbrs == {
            "BT", "BP", "HW", "HS", "LC", "PF", "SR1", "SR2",
            "CC", "LBM", "MG", "MQ", "SAD", "MM", "MV", "ST", "ACF",
        }

    def test_suites_match_table2(self):
        by_abbr = {spec.abbr: spec for spec in all_workloads()}
        assert by_abbr["BP"].suite == "Rodinia"
        assert by_abbr["LBM"].suite == "Parboil"
        rodinia = [s for s in all_workloads() if s.suite == "Rodinia"]
        parboil = [s for s in all_workloads() if s.suite == "Parboil"]
        assert len(rodinia) == 8
        assert len(parboil) == 9

    def test_lookup_by_abbreviation_and_name(self):
        assert workload_by_name("bp").name == "backprop"
        assert workload_by_name("Backprop").abbr == "BP"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            workload_by_name("nosuch")

    def test_flags(self):
        assert workload_by_name("LBM").memory_intensive
        assert workload_by_name("LC").low_occupancy
        assert not workload_by_name("BP").memory_intensive


class TestBuilding:
    def test_build_at_tiny_scale(self):
        built = build_workload("HS", scale="tiny")
        assert built.kernel.name == "hotspot"
        assert built.launch.total_threads == SCALES["tiny"].total_threads \
            if hasattr(SCALES["tiny"], "total_threads") else True

    def test_unknown_scale_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("HS", scale="gigantic")

    def test_scales_are_ordered(self):
        assert SCALES["tiny"].inner_iterations < SCALES["default"].inner_iterations
