"""Functional semantics of the special-function unit (SFU).

These implement the PTX ``.approx`` transcendentals on IEEE-754
binary32 values.  All functions map a uint32 bit-pattern array to a
uint32 bit-pattern array, computing in float32 throughout so results
match what a 32-bit SFU would produce bit-for-bit up to rounding mode.
Division by zero and domain errors follow IEEE rules (inf/nan) rather
than raising, like the hardware.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import Opcode


def _as_f32(bits: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(bits, dtype=np.uint32).view(np.float32)


def _as_u32(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)


def sfu_sin(bits: np.ndarray) -> np.ndarray:
    """``sin.approx.f32``"""
    with np.errstate(all="ignore"):
        return _as_u32(np.sin(_as_f32(bits), dtype=np.float32))


def sfu_cos(bits: np.ndarray) -> np.ndarray:
    """``cos.approx.f32``"""
    with np.errstate(all="ignore"):
        return _as_u32(np.cos(_as_f32(bits), dtype=np.float32))


def sfu_ex2(bits: np.ndarray) -> np.ndarray:
    """``ex2.approx.f32`` — 2**x."""
    with np.errstate(all="ignore"):
        return _as_u32(np.exp2(_as_f32(bits), dtype=np.float32))


def sfu_lg2(bits: np.ndarray) -> np.ndarray:
    """``lg2.approx.f32`` — log2(x); -inf at 0, nan below."""
    with np.errstate(all="ignore"):
        return _as_u32(np.log2(_as_f32(bits), dtype=np.float32))


def sfu_rsqrt(bits: np.ndarray) -> np.ndarray:
    """``rsqrt.approx.f32`` — 1/sqrt(x)."""
    with np.errstate(all="ignore"):
        values = _as_f32(bits)
        return _as_u32(np.float32(1.0) / np.sqrt(values, dtype=np.float32))


def sfu_rcp(bits: np.ndarray) -> np.ndarray:
    """``rcp.approx.f32`` — 1/x; inf at 0."""
    with np.errstate(all="ignore"):
        return _as_u32(np.float32(1.0) / _as_f32(bits))


def sfu_sqrt(bits: np.ndarray) -> np.ndarray:
    """``sqrt.approx.f32``."""
    with np.errstate(all="ignore"):
        return _as_u32(np.sqrt(_as_f32(bits), dtype=np.float32))


def sfu_fdiv(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """``div.approx.f32`` — a/b; executes on the SFU pipeline."""
    with np.errstate(all="ignore"):
        return _as_u32(_as_f32(a_bits) / _as_f32(b_bits))


UNARY_SFU = {
    Opcode.SIN: sfu_sin,
    Opcode.COS: sfu_cos,
    Opcode.EX2: sfu_ex2,
    Opcode.LG2: sfu_lg2,
    Opcode.RSQRT: sfu_rsqrt,
    Opcode.RCP: sfu_rcp,
    Opcode.SQRT: sfu_sqrt,
}
