"""The README's code snippet must actually run."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_quickstart_snippet_executes():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python snippet"
    namespace: dict = {}
    exec(compile(blocks[0], "<README>", "exec"), namespace)  # noqa: S102
    report = namespace["report"]
    assert report.ipc > 0
    assert report.ipc_per_watt > 0


def test_readme_mentions_all_deliverables():
    text = README.read_text()
    for anchor in (
        "DESIGN.md",
        "EXPERIMENTS.md",
        "python -m repro",
        "pytest benchmarks/ --benchmark-only",
        "examples/quickstart.py",
    ):
        assert anchor in text, anchor
