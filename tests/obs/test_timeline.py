"""Tests for the warp-timeline flight recorder and its exporters."""

import json

import pytest

from repro.config import GpuConfig
from repro.isa.opcodes import OpCategory
from repro.obs.chrome_trace import chrome_trace
from repro.obs.telemetry import Telemetry
from repro.obs.timeline import (
    DEFAULT_CAPACITY,
    EVENT_KIND_NAMES,
    SCHEDULER_TID_BASE,
    FlightRecorder,
    stalls_to_telemetry,
)

_STALL_KIND = EVENT_KIND_NAMES.index("stall")
from repro.timing.ops import TimingOp
from repro.timing.sm import SmSimulator
from repro.timing.sm_event import EventSmSimulator

CONFIG = GpuConfig()


def alu_op(dst=None, srcs=()):
    return TimingOp(
        category=OpCategory.ALU,
        dst=dst,
        src_regs=tuple(srcs),
        src_banks=tuple(r % 16 for r in srcs),
        dispatch_cycles=2,
        long_latency=False,
        is_store=False,
    )


def barrier_op():
    return TimingOp(
        category=OpCategory.CTRL,
        dst=None,
        src_regs=(),
        src_banks=(),
        dispatch_cycles=1,
        long_latency=False,
        is_store=False,
        is_barrier=True,
    )


def chain(length):
    return [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(length)]


class TestRecorderRing:
    def test_defaults_and_validation(self):
        recorder = FlightRecorder()
        assert recorder.capacity == DEFAULT_CAPACITY
        assert recorder.dropped == 0
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(interval_cycles=0)

    def test_wraparound_drops_oldest_and_keeps_order(self):
        recorder = FlightRecorder(capacity=8)
        SmSimulator([chain(6), chain(6)], CONFIG, recorder=recorder).run()
        assert recorder.recorded > 8
        assert recorder.dropped == recorder.recorded - 8
        assert len(recorder.events) == 8
        # The surviving window is the newest events; the directly
        # recorded kinds stay in chronological order (stall events are
        # exempt — they are retro-dated to when the gap opened and only
        # materialize at the issue that closes it).
        cycles = [
            event[1] for event in recorder.events if event[0] != _STALL_KIND
        ]
        assert cycles == sorted(cycles)

    def test_stall_span_carries_cause_and_registers(self):
        recorder = FlightRecorder()
        recorder.warp_activate(0, warp=0, slot=0)
        recorder.issue(5, warp=0, scheduler=0, category="ALU",
                       hint="scoreboard", hint_regs=(3, 7))
        recorder.issue(10, warp=0, scheduler=0, category="ALU",
                       hint=None, hint_regs=())
        stalls = [s for s in recorder.to_spans() if s.cat == "stall"]
        assert len(stalls) == 1
        span = stalls[0]
        assert span.name == "stall:scoreboard"
        assert span.ts_us == 6 and span.dur_us == 4
        assert span.args == {"cause": "scoreboard", "registers": [3, 7]}

    def test_back_to_back_issues_produce_no_stall(self):
        recorder = FlightRecorder()
        recorder.issue(5, warp=0, scheduler=0, category="ALU",
                       hint="scheduler", hint_regs=())
        recorder.issue(6, warp=0, scheduler=0, category="ALU",
                       hint=None, hint_regs=())
        assert [s for s in recorder.to_spans() if s.cat == "stall"] == []

    def test_retire_closes_open_stall(self):
        recorder = FlightRecorder()
        recorder.warp_activate(0, warp=0, slot=0)
        recorder.issue(2, warp=0, scheduler=0, category="ALU",
                       hint="drain", hint_regs=())
        recorder.warp_retire(9, warp=0)
        stalls = [s for s in recorder.to_spans() if s.cat == "stall"]
        assert len(stalls) == 1
        assert stalls[0].ts_us == 3 and stalls[0].dur_us == 6

    def test_occupancy_integrates_across_buckets(self):
        recorder = FlightRecorder(interval_cycles=10)
        recorder.warp_activate(0, warp=0, slot=0)
        recorder.warp_activate(0, warp=1, slot=1)
        recorder.warp_retire(25, warp=0)
        recorder.finalize(30)
        assert recorder.occupancy_by_interval == {0: 20, 1: 20, 2: 15}

    def test_issued_interval_series(self):
        recorder = FlightRecorder(interval_cycles=4)
        for cycle in (0, 1, 5, 6, 7):
            recorder.issue(cycle, warp=0, scheduler=0, category="ALU",
                           hint=None, hint_regs=())
        assert recorder.issued_by_interval == {0: 2, 1: 3}


class TestEngineIdenticalStreams:
    def test_both_engines_record_identical_spans(self):
        warps = [
            chain(4) + [barrier_op(), alu_op(dst=2)],
            [barrier_op(), alu_op(dst=3, srcs=(3,))],
            chain(2),
            [],
        ]
        streams = []
        for engine in (SmSimulator, EventSmSimulator):
            recorder = FlightRecorder()
            engine(warps, CONFIG, warps_per_cta=2, recorder=recorder).run()
            streams.append(
                sorted(
                    (s.name, s.cat, s.ts_us, s.dur_us, s.pid, s.tid,
                     tuple(sorted(s.args.items(), key=repr)))
                    for s in recorder.to_spans()
                )
            )
        assert streams[0] == streams[1]


class TestChromeTraceEdgeCases:
    def _recorded(self, capacity=DEFAULT_CAPACITY):
        recorder = FlightRecorder(capacity=capacity)
        warps = [chain(4), chain(4)]
        SmSimulator(warps, CONFIG, recorder=recorder).run()
        return recorder

    def _trace(self, recorder):
        registry = Telemetry()
        registry.spans.extend(recorder.to_spans())
        metadata = recorder.chrome_metadata(CONFIG.schedulers_per_sm)
        return chrome_trace(
            registry,
            process_names=metadata["process_names"],
            thread_names=metadata["thread_names"],
        )

    def test_zero_duration_writebacks_survive_export(self):
        trace = self._trace(self._recorded())
        writebacks = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "writeback"
        ]
        assert writebacks
        assert all(e["dur"] == 0 for e in writebacks)
        json.dumps(trace)  # round-trips

    def test_interleaved_same_name_spans_keep_distinct_rows(self):
        # Both warps stall on the scoreboard with overlapping windows;
        # the exporter must keep one span per warp row, not merge them.
        trace = self._trace(self._recorded())
        stalls = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "stall:scoreboard"
        ]
        assert len({e["tid"] for e in stalls}) == 2
        overlapping = [
            (a, b)
            for a in stalls
            for b in stalls
            if a["tid"] < b["tid"]
            and a["ts"] < b["ts"] + b["dur"]
            and b["ts"] < a["ts"] + a["dur"]
        ]
        assert overlapping  # genuinely interleaved in time

    def test_wraparound_window_exports_in_order(self):
        recorder = self._recorded(capacity=16)
        assert recorder.dropped > 0
        trace = self._trace(recorder)
        issues = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e.get("cat") == "issue"
        ]
        timestamps = [e["ts"] for e in issues]
        # Ring order is chronological even after eviction, and the
        # rebased origin keeps the earliest surviving event at t >= 0.
        assert timestamps == sorted(timestamps)
        assert all(ts >= 0 for ts in timestamps)

    def test_metadata_names_warps_and_schedulers(self):
        trace = self._trace(self._recorded())
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert names[(0, 0)] == "warp 0 (sched 0)"
        assert names[(0, 1)] == "warp 1 (sched 1)"
        assert names[(0, SCHEDULER_TID_BASE)] == "scheduler 0"
        process = [
            e for e in trace["traceEvents"] if e["name"] == "process_name"
        ]
        assert process[0]["args"]["name"] == "SM 0"


class TestTelemetryExport:
    def test_interval_labels_sort_chronologically(self):
        recorder = FlightRecorder(interval_cycles=4)
        for cycle in (0, 5, 41):
            recorder.issue(cycle, warp=0, scheduler=0, category="ALU",
                           hint=None, hint_regs=())
        recorder.finalize(44)
        registry = Telemetry()
        recorder.to_telemetry(registry)
        labels = sorted(
            dict(key)["interval"]
            for key in registry.counters_named("timeline_issued")
        )
        assert labels == ["00000", "00001", "00010"]

    def test_ring_health_counters(self):
        recorder = FlightRecorder(capacity=2)
        for cycle in range(5):
            recorder.issue(cycle, warp=0, scheduler=0, category="ALU",
                           hint=None, hint_regs=())
        registry = Telemetry()
        recorder.to_telemetry(registry)
        assert registry.counter_value("timeline_events_recorded", sm="0") == 5
        assert registry.counter_value("timeline_events_dropped", sm="0") == 3

    def test_stalls_to_telemetry_tiles_cycles(self):
        result = SmSimulator([chain(5), chain(3)], CONFIG).run()
        registry = Telemetry()
        stalls_to_telemetry(registry, result)
        stall_total = sum(
            value
            for value in registry.counters_named(
                "sm_stall_scheduler_cycles"
            ).values()
        )
        issued_total = sum(
            value
            for value in registry.counters_named("sm_issued_instructions").values()
        )
        cycles = registry.counter_value("sm_cycles", sm="0")
        assert stall_total + issued_total == cycles * CONFIG.schedulers_per_sm
