"""The paper's byte-wise MSB-prefix register-value compressor (§3.1).

Instead of BDI's subtract-from-base, every byte position is compared
across lanes; the encoding is the number of most-significant byte
positions that are identical across all (active) lanes.  The base value
is always taken from the first active lane (op[0] in the paper).

For divergent instructions the comparison logic broadcasts a value from
an active lane into inactive lanes before comparing (Figure 7(a)); here
that is modeled by simply restricting the comparison to active lanes,
which the paper proves equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.compression.encoding import SCALAR_PREFIX
from repro.obs.telemetry import get_telemetry


def common_prefix_bytes(values: np.ndarray, mask: np.ndarray | None = None) -> int:
    """Number of identical most-significant bytes across active lanes.

    Returns 0..4; 4 means every active lane holds the same 32-bit value
    (a scalar register).  With zero or one active lane the register is
    trivially scalar and 4 is returned.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if mask is not None:
        words = words[np.asarray(mask, dtype=bool)]
    if words.size <= 1:
        return SCALAR_PREFIX
    difference = np.bitwise_or.reduce(words ^ words[0])
    diff = int(difference)
    if diff == 0:
        return 4
    if diff & 0xFF000000:
        return 0
    if diff & 0x00FF0000:
        return 1
    if diff & 0x0000FF00:
        return 2
    return 3


@dataclass(frozen=True)
class CompressedRegister:
    """Storage format of one compressed vector register.

    ``base`` is the first active lane's full 32-bit value (only its top
    ``enc`` bytes are meaningful as the shared prefix, but the hardware
    BVR is 32 bits wide so we keep all of it, matching §3.1's "we always
    use bytes from op[0]").  ``low_bytes`` holds the ``4 - enc``
    least-significant bytes of each lane, lane-major.
    """

    enc: int
    base: int
    warp_size: int
    low_bytes: np.ndarray  # shape (warp_size, 4 - enc), dtype uint8

    @property
    def stored_bits(self) -> int:
        """Bits in the SRAM data arrays (excludes the BVR/EBR sidecar)."""
        return self.warp_size * (4 - self.enc) * 8

    @property
    def total_bits(self) -> int:
        """Data bits plus the 32-bit BVR and 4-bit EBR."""
        return self.stored_bits + 32 + 4

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bits over total compressed bits."""
        return (self.warp_size * 32) / self.total_bits


def compress(values: np.ndarray, mask: np.ndarray | None = None) -> CompressedRegister:
    """Compress a warp-wide register (optionally only its active lanes).

    The returned object always carries all ``warp_size`` lanes of low
    bytes (inactive lanes included) because the hardware writes whole
    byte-rotated arrays; the *encoding* is what the mask affects.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if words.ndim != 1:
        raise CompressionError(f"expected a 1-D lane array, got shape {words.shape}")
    warp_size = words.shape[0]
    enc = common_prefix_bytes(words, mask)
    if mask is not None:
        active = np.flatnonzero(np.asarray(mask, dtype=bool))
        base = int(words[active[0]]) if active.size else 0
    else:
        base = int(words[0])
    keep = 4 - enc
    lanes_bytes = np.empty((warp_size, keep), dtype=np.uint8)
    for byte_index in range(keep):
        lanes_bytes[:, byte_index] = (words >> (8 * byte_index)) & 0xFF
    telemetry = get_telemetry()
    if telemetry.enabled:
        # Every compression updates both sidecar entries: the base
        # value register and the 4-bit encoding bits (§3.1).
        telemetry.count("gscalar_compressions", enc=enc)
        telemetry.count("bvr_accesses", op="write")
        telemetry.count("ebr_accesses", op="write")
        if enc:
            telemetry.count("compressor_bytes_saved", enc * warp_size, enc=enc)
    return CompressedRegister(enc=enc, base=base, warp_size=warp_size, low_bytes=lanes_bytes)


def decompress(compressed: CompressedRegister) -> np.ndarray:
    """Reconstruct the full warp-wide uint32 lane values.

    This is the Figure 5 decompression: bytes below the prefix come from
    the data arrays, prefix bytes are broadcast from the base value
    register.
    """
    telemetry = get_telemetry()
    if telemetry.enabled:
        # Decompression reads the encoding bits and (for enc > 0) the
        # base value feeding the Figure 5 broadcast network.
        telemetry.count("gscalar_decompressions", enc=compressed.enc)
        telemetry.count("ebr_accesses", op="read")
        if compressed.enc:
            telemetry.count("bvr_accesses", op="read")
    enc = compressed.enc
    base = np.uint32(compressed.base)
    prefix_mask = np.uint32(0) if enc == 0 else np.uint32((0xFFFFFFFF << (8 * (4 - enc))) & 0xFFFFFFFF)
    values = np.full(compressed.warp_size, base & prefix_mask, dtype=np.uint32)
    for byte_index in range(4 - enc):
        values |= compressed.low_bytes[:, byte_index].astype(np.uint32) << np.uint32(8 * byte_index)
    return values


def compressed_bits(enc: int, warp_size: int) -> int:
    """Total storage bits for a register at a given prefix length."""
    if not 0 <= enc <= 4:
        raise CompressionError(f"enc must be 0..4, got {enc}")
    return warp_size * (4 - enc) * 8 + 32 + 4
