"""Tests for the static value-width analysis (analysis.static_.widths).

The transfer-family cases are shared fixtures: each one pins BOTH the
uniformity lattice's ``_transfer`` verdict and the width lattice's
``transfer`` result for the same instruction, so the two analyses stay
aligned on the families they must agree about (SHL by an affine amount,
SELP under a divergent predicate, IMAD of affine x uniform + uniform).
"""

from dataclasses import dataclass
from typing import Callable

import pytest

from repro.analysis.static_.uniformity import Uniformity, _transfer
from repro.analysis.static_.widths import (
    BOTTOM,
    TOP_UNIFORM,
    ZERO,
    WidthVal,
    analyze_widths,
    join,
    join_masked,
    transfer,
    widen,
)
from repro.analysis.static_ import PassManager, WidthAnalysisPass
from repro.isa import KernelBuilder
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import Opcode

_M32 = 0xFFFFFFFF

#: lane-like affine value: 0..31 with stride 1.
LANE = WidthVal(0, 31, 1)


# ----------------------------------------------------------------------
# Shared transfer-family fixtures (uniformity + widths).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransferCase:
    """One instruction judged by both lattices.

    ``uni_state``/``width_state`` give each register's abstract value;
    ``expect_uniformity`` is the uniformity transfer's verdict and
    ``check_width`` a predicate over the width transfer's result.
    """

    label: str
    inst: Instruction
    uni_state: dict[int, Uniformity]
    width_state: dict[int, WidthVal]
    expect_uniformity: Uniformity
    check_width: Callable[[WidthVal], bool]


TRANSFER_CASES = [
    TransferCase(
        label="shl-uniform-amount-keeps-affine",
        inst=Instruction(opcode=Opcode.SHL, dst=Reg(1), srcs=(Reg(0), Imm(2))),
        uni_state={0: Uniformity.AFFINE},
        width_state={0: LANE},
        expect_uniformity=Uniformity.AFFINE,
        # (0 + 1*lane) << 2 == 0 + 4*lane, bounded by 31 << 2.
        check_width=lambda v: v == WidthVal(0, 124, 4),
    ),
    TransferCase(
        label="shl-affine-amount-destroys-structure",
        inst=Instruction(opcode=Opcode.SHL, dst=Reg(1), srcs=(Imm(1), Reg(0))),
        uni_state={0: Uniformity.AFFINE},
        width_state={0: LANE},
        expect_uniformity=Uniformity.DIVERGENT,
        # 1 << lane: no stride, but the interval still bounds it.
        check_width=lambda v: v.stride is None and (v.lo, v.hi) == (1, 1 << 31),
    ),
    TransferCase(
        label="selp-uniform-predicate-joins-arms",
        inst=Instruction(
            opcode=Opcode.SELP, dst=Reg(3), srcs=(Reg(0), Reg(1), Reg(2))
        ),
        uni_state={
            0: Uniformity.UNIFORM,
            1: Uniformity.UNIFORM,
            2: Uniformity.UNIFORM,
        },
        width_state={
            0: WidthVal(3, 3, 0),
            1: WidthVal(200, 200, 0),
            2: WidthVal(0, 1, 0),
        },
        expect_uniformity=Uniformity.UNIFORM,
        check_width=lambda v: v == WidthVal(3, 200, 0),
    ),
    TransferCase(
        label="selp-divergent-predicate",
        inst=Instruction(
            opcode=Opcode.SELP, dst=Reg(3), srcs=(Reg(0), Reg(1), Reg(2))
        ),
        uni_state={
            0: Uniformity.UNIFORM,
            1: Uniformity.UNIFORM,
            2: Uniformity.DIVERGENT,
        },
        width_state={
            0: WidthVal(3, 3, 0),
            1: WidthVal(200, 200, 0),
            2: WidthVal(0, 1, None),
        },
        expect_uniformity=Uniformity.DIVERGENT,
        # Per-lane arm choice: uniformity is gone, but the hull still
        # proves three zero prefix bytes — a claim the uniformity
        # lattice alone could never make.
        check_width=lambda v: v.stride is None
        and (v.lo, v.hi) == (3, 200)
        and v.zero_bytes() == 3,
    ),
    TransferCase(
        label="imad-affine-x-constant-plus-uniform",
        inst=Instruction(
            opcode=Opcode.IMAD, dst=Reg(2), srcs=(Reg(0), Imm(4), Reg(1))
        ),
        uni_state={0: Uniformity.AFFINE, 1: Uniformity.UNIFORM},
        width_state={0: LANE, 1: WidthVal(0x100, 0x100, 0)},
        expect_uniformity=Uniformity.AFFINE,
        # lane*4 + 0x100: stride 4, hi = 31*4 + 0x100 = 0x17C.
        check_width=lambda v: v == WidthVal(0x100, 0x17C, 4),
    ),
    TransferCase(
        label="imad-affine-x-unknown-uniform",
        inst=Instruction(
            opcode=Opcode.IMAD, dst=Reg(2), srcs=(Reg(0), Reg(1), Reg(1))
        ),
        uni_state={0: Uniformity.AFFINE, 1: Uniformity.UNIFORM},
        width_state={0: LANE, 1: TOP_UNIFORM},
        # Uniformity keeps the affine *form* (unknown stride is fine);
        # the width lattice tracks concrete strides, so it must drop it.
        expect_uniformity=Uniformity.AFFINE,
        check_width=lambda v: v.stride is None and (v.lo, v.hi) == (0, _M32),
    ),
]


def _as_state(sparse: dict, default, size: int = 8) -> list:
    state = [default] * size
    for index, value in sparse.items():
        state[index] = value
    return state


class TestTransferFamilies:
    @pytest.mark.parametrize(
        "case", TRANSFER_CASES, ids=[c.label for c in TRANSFER_CASES]
    )
    def test_uniformity_transfer(self, case):
        state = _as_state(case.uni_state, Uniformity.UNDEF)
        assert _transfer(case.inst, state) is case.expect_uniformity

    @pytest.mark.parametrize(
        "case", TRANSFER_CASES, ids=[c.label for c in TRANSFER_CASES]
    )
    def test_width_transfer(self, case):
        state = _as_state(case.width_state, ZERO)
        result = transfer(case.inst, state, warp_size=32)
        assert case.check_width(result), result


class TestWidthValLattice:
    def test_zero_bytes_byte_boundaries(self):
        assert WidthVal(0, 0, None).zero_bytes() == 4
        assert WidthVal(0, 0xFF, None).zero_bytes() == 3
        assert WidthVal(0, 0x100, None).zero_bytes() == 2
        assert WidthVal(0, 0xFFFF, None).zero_bytes() == 2
        assert WidthVal(0, 0xFFFFFF, None).zero_bytes() == 1
        assert WidthVal(0, _M32, None).zero_bytes() == 0

    def test_claimed_enc_prefers_uniformity(self):
        assert WidthVal(0, _M32, 0).claimed_enc() == 4
        assert WidthVal(0, 0xFF, None).claimed_enc() == 3
        assert BOTTOM.claimed_enc() == 4

    def test_join_keeps_agreeing_stride(self):
        a = WidthVal(0, 10, 1)
        b = WidthVal(5, 20, 1)
        assert join(a, b) == WidthVal(0, 20, 1)
        assert join(a, WidthVal(5, 20, 2)).stride is None
        assert join(BOTTOM, a) == a
        assert join(a, BOTTOM) == a

    def test_join_masked_always_drops_stride(self):
        old = WidthVal(0, 10, 0)
        new = WidthVal(5, 20, 0)
        merged = join_masked(old, new)
        assert merged == WidthVal(0, 20, None)
        # Even a masked write over bottom is stride-free: inactive
        # lanes keep their (unknown-mix) old data.
        assert join_masked(BOTTOM, new).stride is None

    def test_widen_is_monotone_and_idempotent(self):
        old = WidthVal(4, 0x80, 1)
        grown = widen(old, WidthVal(2, 0x120, 1))
        assert grown.lo == 0  # shrinking lower bound drops to zero
        assert grown.hi == 0xFFFF  # growing upper bound byte-ceils
        assert grown.stride == 1
        assert widen(old, old) == old
        assert widen(old, WidthVal(4, 0x80, 2)).stride is None

    def test_widen_reaches_fixpoint_on_any_chain(self):
        # Repeatedly widening against fresh values stabilizes fast:
        # each component has a finite chain.
        state = ZERO
        for value in (WidthVal(1, 3, 1), WidthVal(0, 0x1FF, 2),
                      WidthVal(0, _M32, None)):
            state = widen(state, value)
        assert widen(state, state) == state
        assert state.hi == _M32 and state.stride is None


class TestAnalyzeWidths:
    def test_straightline_narrow_register(self):
        b = KernelBuilder("narrow")
        flag = b.setlt(b.tid(), 16)
        x = b.selp(3, 200, flag)
        b.st_global(b.imad(b.tid(), 4, 0x100), x)
        result = analyze_widths(b.finish())
        # The SELP under a divergent predicate still proves 3 zero
        # prefix bytes for its destination.
        assert result.register_enc[x.index] == 3
        assert x.index in result.narrow_registers

    def test_masked_write_takes_minimum_over_sites(self):
        b = KernelBuilder("masked")
        x = b.mov(7)  # hi=7: three zero prefix bytes
        with b.if_(b.setlt(b.tid(), 16)):
            b.mov(300, dst=x)  # hi=300: only two zero bytes
        b.st_global(b.imad(b.tid(), 4, 0x100), x)
        result = analyze_widths(b.finish())
        assert result.register_enc[x.index] == 2

    def test_uniform_claim_does_not_feed_storage_width(self):
        b = KernelBuilder("uniform_wide")
        wide = b.ld_global(b.mov(0x100))  # broadcast: uniform, unbounded
        b.st_global(b.imad(b.tid(), 4, 0x200), wide)
        result = analyze_widths(b.finish())
        kernel_blocks = {(0, 1)}  # the load site
        site = next(s for s in result.site_claims if s in kernel_blocks)
        # Dynamically the write is guaranteed enc 4 (uniform)...
        assert result.site_claims[site] == 4
        # ...but the static RF cannot allocate it narrow.
        assert result.site_zero_bytes[site] == 0
        assert result.register_enc[wide.index] == 0

    def test_claim_at_missing_site_is_none(self):
        b = KernelBuilder("one_write")
        b.mov(1)
        result = analyze_widths(b.finish())
        assert result.claim_at(0, 0) is not None
        assert result.claim_at(99, 0) is None

    def test_counts_keys(self):
        b = KernelBuilder("counts")
        b.st_global(b.mov(0x100), b.mov(5))
        counts = analyze_widths(b.finish()).counts()
        assert set(counts) == {
            "write_sites",
            "claiming_sites",
            "uniform_sites",
            "narrow_registers",
            "registers",
        }
        assert counts["registers"] >= counts["narrow_registers"]

    def test_loop_terminates_by_widening(self):
        # An incrementing loop counter: the interval widens through byte
        # boundaries instead of iterating 2^32 times.
        b = KernelBuilder("loop")
        i = b.mov(0)
        acc = b.mov(0)
        with b.while_(lambda: b.setlt(i, 10)):
            b.iadd(acc, 2, dst=acc)
            b.iadd(i, 1, dst=i)
        b.st_global(b.mov(0x100), acc)
        kernel = b.finish()
        result = analyze_widths(kernel)
        assert len(result.register_enc) == kernel.num_registers
        # Widening loses the [0, 10] bound entirely — claiming any
        # prefix for the counter would be unsound under widening, and
        # the analysis indeed claims none.
        assert result.register_enc[i.index] == 0


class TestWidthAnalysisPass:
    def test_reports_summary_and_narrow_registers(self):
        b = KernelBuilder("lintme")
        flag = b.setlt(b.tid(), 16)
        x = b.selp(3, 200, flag)
        b.st_global(b.imad(b.tid(), 4, 0x100), x)
        report = PassManager([WidthAnalysisPass()]).run(b.finish())
        [summary] = report.by_rule("GS-I204")
        assert "registers provably narrow" in summary.message
        narrows = report.by_rule("GS-W104")
        assert narrows, "expected at least one narrow-register warning"
        assert any(f"r{x.index} " in d.message for d in narrows)
