"""Property-based fuzzing of the SM timing model.

Random well-formed op streams must always complete (no deadlocks), the
instruction accounting must balance, and cycle counts must respect
simple lower bounds (issue width, dispatch occupancy).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GpuConfig
from repro.isa.opcodes import OpCategory
from repro.timing.ops import TimingOp
from repro.timing.sm import SmSimulator

CONFIG = GpuConfig()


@st.composite
def random_ops(draw):
    """One warp's op list with realistic dependencies."""
    length = draw(st.integers(min_value=0, max_value=15))
    ops = []
    live = [0]
    for _ in range(length):
        kind = draw(st.sampled_from(["alu", "sfu", "mem", "ctrl", "store"]))
        srcs = tuple(
            draw(st.sampled_from(live))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        )
        dst = draw(st.integers(min_value=0, max_value=7))
        if kind == "store":
            ops.append(
                TimingOp(
                    category=OpCategory.MEM,
                    dst=None,
                    src_regs=srcs,
                    src_banks=tuple(r % 16 for r in srcs),
                    dispatch_cycles=2,
                    long_latency=False,
                    is_store=True,
                    mem_segments=(draw(st.integers(0, 50)),),
                )
            )
            continue
        if kind == "ctrl":
            ops.append(
                TimingOp(
                    category=OpCategory.CTRL,
                    dst=None,
                    src_regs=srcs[:1],
                    src_banks=tuple(r % 16 for r in srcs[:1]),
                    dispatch_cycles=1,
                    long_latency=False,
                    is_store=False,
                )
            )
            continue
        category = {
            "alu": OpCategory.ALU,
            "sfu": OpCategory.SFU,
            "mem": OpCategory.MEM,
        }[kind]
        segments = (draw(st.integers(0, 50)),) if kind == "mem" else ()
        ops.append(
            TimingOp(
                category=category,
                dst=dst,
                src_regs=srcs,
                src_banks=tuple(r % 16 for r in srcs),
                dispatch_cycles=8 if kind == "sfu" else 2,
                long_latency=draw(st.booleans()) if kind == "alu" else False,
                is_store=False,
                mem_segments=segments,
            )
        )
        live.append(dst)
    return ops


@settings(max_examples=60, deadline=None)
@given(warps=st.lists(random_ops(), min_size=0, max_size=6))
def test_simulation_always_completes(warps):
    result = SmSimulator(warps, CONFIG).run(max_cycles=2_000_000)
    total_ops = sum(len(w) for w in warps)
    assert result.instructions == total_ops
    assert result.useful_instructions == total_ops


@settings(max_examples=60, deadline=None)
@given(warps=st.lists(random_ops(), min_size=1, max_size=4))
def test_cycle_lower_bounds(warps):
    result = SmSimulator(warps, CONFIG).run(max_cycles=2_000_000)
    total_ops = sum(len(w) for w in warps)
    if total_ops:
        # At most 2 issues per cycle.
        assert result.cycles >= total_ops / 2
        # Extra latency can never reduce total ops completed.
        stretched = SmSimulator(warps, CONFIG, extra_latency=5).run(
            max_cycles=2_000_000
        )
        assert stretched.instructions == total_ops


@settings(max_examples=40, deadline=None)
@given(
    warps=st.lists(random_ops(), min_size=2, max_size=4),
    warps_per_cta=st.sampled_from([1, 2]),
)
def test_uniform_barriers_never_deadlock(warps, warps_per_cta):
    """Appending the same barrier count to every warp keeps the CTA
    well-formed, so the simulation must always finish."""
    barrier = TimingOp(
        category=OpCategory.CTRL,
        dst=None,
        src_regs=(),
        src_banks=(),
        dispatch_cycles=1,
        long_latency=False,
        is_store=False,
        is_barrier=True,
    )
    with_barriers = [list(w) + [barrier] for w in warps]
    result = SmSimulator(
        with_barriers, CONFIG, warps_per_cta=warps_per_cta
    ).run(max_cycles=2_000_000)
    assert result.instructions == sum(len(w) for w in with_barriers)
