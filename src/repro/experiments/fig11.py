"""Figure 11 — normalized power efficiency (IPC/W) and performance.

Series, all normalized to the baseline GPU:

* ``ALU Scalar``            — prior scalar architecture [3],
* ``G-Scalar w/o divergent``— scalar on all pipelines + half-warp,
* ``G-Scalar``              — full proposal (adds divergent scalar),
* ``G-Scalar (IPC)``        — raw performance with the +3-cycle stretch.

Paper reference: +24% IPC/W vs baseline and +15% vs ALU-scalar on
average; BP peaks at +79%; average IPC loss 1.7% with LC worst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentRunner, paper_architectures
from repro.experiments.tables import render_table


@dataclass
class Fig11Row:
    abbr: str
    ipc_per_watt: dict[str, float]  # arch name -> absolute IPC/W
    ipc: dict[str, float]  # arch name -> absolute IPC

    def normalized_efficiency(self, arch_name: str) -> float:
        base = self.ipc_per_watt["baseline"]
        return self.ipc_per_watt[arch_name] / base if base else 0.0

    def normalized_ipc(self, arch_name: str) -> float:
        base = self.ipc["baseline"]
        return self.ipc[arch_name] / base if base else 0.0


@dataclass
class Fig11Data:
    rows: list[Fig11Row]

    def _average(self, getter) -> float:
        if not self.rows:
            return 0.0
        return sum(getter(r) for r in self.rows) / len(self.rows)

    @property
    def average_gscalar_efficiency(self) -> float:
        """Mean normalized IPC/W of full G-Scalar (paper: 1.24)."""
        return self._average(lambda r: r.normalized_efficiency("gscalar"))

    @property
    def average_alu_scalar_efficiency(self) -> float:
        return self._average(lambda r: r.normalized_efficiency("alu_scalar"))

    @property
    def average_gscalar_ipc(self) -> float:
        """Mean normalized IPC of G-Scalar (paper: ~0.983)."""
        return self._average(lambda r: r.normalized_ipc("gscalar"))

    @property
    def gain_over_alu_scalar(self) -> float:
        """G-Scalar's efficiency gain over the prior architecture."""
        base = self.average_alu_scalar_efficiency
        return self.average_gscalar_efficiency / base if base else 0.0


_ARCHES = paper_architectures()


def compute(runner: ExperimentRunner) -> Fig11Data:
    """Regenerate Figure 11: all benchmarks x all architectures."""
    rows = []
    for abbr in runner.benchmark_names():
        efficiency: dict[str, float] = {}
        ipc: dict[str, float] = {}
        for arch in _ARCHES:
            report = runner.power(abbr, arch)
            efficiency[arch.name] = report.ipc_per_watt
            ipc[arch.name] = report.ipc
        rows.append(Fig11Row(abbr=abbr, ipc_per_watt=efficiency, ipc=ipc))
    return Fig11Data(rows=rows)


def render(data: Fig11Data) -> str:
    """Figure 11 as a text table (values normalized to baseline)."""
    table_rows = []
    for row in data.rows:
        table_rows.append(
            (
                row.abbr,
                f"{row.normalized_efficiency('alu_scalar'):.2f}",
                f"{row.normalized_efficiency('gscalar_no_divergent'):.2f}",
                f"{row.normalized_efficiency('gscalar'):.2f}",
                f"{row.normalized_ipc('gscalar'):.3f}",
            )
        )
    table_rows.append(
        (
            "AVG",
            f"{data.average_alu_scalar_efficiency:.2f}",
            f"{data._average(lambda r: r.normalized_efficiency('gscalar_no_divergent')):.2f}",
            f"{data.average_gscalar_efficiency:.2f}",
            f"{data.average_gscalar_ipc:.3f}",
        )
    )
    body = render_table(
        ["bench", "ALU scalar", "G-Scalar w/o div", "G-Scalar", "G-Scalar (IPC)"],
        table_rows,
        title="Figure 11: normalized IPC/W (and IPC) vs baseline",
    )
    return body + (
        "\npaper averages: G-Scalar 1.24x baseline, 1.15x ALU-scalar; "
        "IPC 0.983 (-1.7%)"
    )
