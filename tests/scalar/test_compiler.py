"""Tests for the compiler-assisted analyses (§3.3 elision, §6 static
scalarization)."""

import numpy as np
import pytest

from repro.config import ArchitectureConfig
from repro.isa import KernelBuilder
from repro.scalar import classify_trace, process_classified, processed_statistics
from repro.scalar.compiler import (
    MoveElisionAnalysis,
    StaticScalarization,
    ValueKind,
)
from repro.simt import LaunchConfig, MemoryImage, run_kernel

GSCALAR = ArchitectureConfig.gscalar()


def run(kernel, cta=32):
    trace = run_kernel(kernel, LaunchConfig(1, cta), MemoryImage())
    return trace, classify_trace(trace, kernel.num_registers)


def region_local_temp_kernel():
    """t is compressed, divergently overwritten, and dead at the merge."""
    b = KernelBuilder("elidable")
    tid = b.tid()
    c = b.mov(7)
    t = b.mov(3)
    cond = b.seteq(b.and_(tid, 1), 0)
    with b.if_(cond):
        t = b.iadd(c, 1, dst=t)
        b.iadd(t, 2)
    b.st_global(b.imad(tid, 4, 0x100), c)
    return b.finish()


def live_after_merge_kernel():
    """t's stale lanes are read after reconvergence: move required."""
    b = KernelBuilder("not_elidable")
    tid = b.tid()
    t = b.mov(3)
    cond = b.seteq(b.and_(tid, 1), 0)
    with b.if_(cond):
        t = b.mov(9, dst=t)
    b.st_global(b.imad(tid, 4, 0x100), t)  # reads all lanes of t
    return b.finish()


def sibling_read_kernel():
    """t read in the else arm after the taken arm corrupted it."""
    b = KernelBuilder("sibling")
    tid = b.tid()
    t = b.mov(3)
    sink = b.mov(0)
    cond = b.seteq(b.and_(tid, 1), 0)
    with b.if_(cond) as branch:
        t = b.mov(9, dst=t)
        with branch.else_():
            sink = b.iadd(t, 1, dst=sink)  # reads old t
    b.st_global(b.imad(tid, 4, 0x100), sink)
    return b.finish()


class TestMoveElision:
    def test_region_local_temp_elided(self):
        kernel = region_local_temp_kernel()
        trace, classified = run(kernel)
        without = processed_statistics(process_classified(classified, GSCALAR, 32))
        elided = processed_statistics(
            process_classified(
                classified, GSCALAR, 32, move_elision=MoveElisionAnalysis(kernel)
            )
        )
        assert without.extra_instructions == 1
        assert elided.extra_instructions == 0

    def test_live_after_merge_keeps_move(self):
        kernel = live_after_merge_kernel()
        trace, classified = run(kernel)
        elided = processed_statistics(
            process_classified(
                classified, GSCALAR, 32, move_elision=MoveElisionAnalysis(kernel)
            )
        )
        assert elided.extra_instructions == 1

    def test_sibling_read_keeps_move(self):
        kernel = sibling_read_kernel()
        trace, classified = run(kernel)
        elided = processed_statistics(
            process_classified(
                classified, GSCALAR, 32, move_elision=MoveElisionAnalysis(kernel)
            )
        )
        # Two moves survive: t (read by the sibling arm) and sink (live
        # at the reconvergence point).
        assert elided.extra_instructions == 2

    def test_elision_never_increases_moves(self):
        from repro.workloads.registry import build_workload

        for abbr in ("LBM", "HS", "SAD"):
            built = build_workload(abbr, scale="tiny")
            trace = run_kernel(built.kernel, built.launch, built.memory)
            classified = classify_trace(trace, built.kernel.num_registers)
            without = processed_statistics(
                process_classified(classified, GSCALAR, 32)
            )
            elided = processed_statistics(
                process_classified(
                    classified,
                    GSCALAR,
                    32,
                    move_elision=MoveElisionAnalysis(built.kernel),
                )
            )
            assert elided.extra_instructions <= without.extra_instructions


class TestValueKindLattice:
    def test_meet(self):
        assert ValueKind.SCALAR.meet(ValueKind.SCALAR) is ValueKind.SCALAR
        assert ValueKind.SCALAR.meet(ValueKind.VARYING) is ValueKind.VARYING
        assert ValueKind.UNKNOWN.meet(ValueKind.SCALAR) is ValueKind.SCALAR
        assert ValueKind.VARYING.meet(ValueKind.UNKNOWN) is ValueKind.VARYING


class TestStaticScalarization:
    def test_constants_are_static_scalar(self):
        b = KernelBuilder("consts")
        c = b.mov(5)
        d = b.iadd(c, 1)
        b.imul(d, d)
        kernel = b.finish()
        analysis = StaticScalarization(kernel)
        assert analysis.result.static_scalar_count(0) == 3

    def test_tid_taints(self):
        b = KernelBuilder("tid")
        tid = b.tid()
        b.iadd(tid, 1)
        kernel = b.finish()
        analysis = StaticScalarization(kernel)
        assert analysis.result.static_scalar_count(0) == 0

    def test_uniform_address_load_is_scalar(self):
        b = KernelBuilder("bload")
        addr = b.mov(0x100)
        value = b.ld_global(addr)
        b.iadd(value, 1)
        kernel = b.finish()
        analysis = StaticScalarization(kernel)
        assert analysis.result.static_scalar_count(0) == 3  # mov, ld, iadd

    def test_divergent_region_blocks_scalarization(self):
        b = KernelBuilder("divregion")
        tid = b.tid()
        c = b.mov(5)
        cond = b.setlt(tid, 16)  # varying condition
        with b.if_(cond):
            b.iadd(c, 1)  # dynamically divergent-scalar; statically not
        kernel = b.finish()
        analysis = StaticScalarization(kernel)
        taken = kernel.blocks[0].terminator.taken
        assert analysis.result.static_scalar_count(taken) == 0
        assert taken in analysis.result.divergent_region_blocks

    def test_uniform_branch_does_not_block(self):
        b = KernelBuilder("unibranch")
        c = b.mov(5)
        cond = b.setlt(c, 16)  # scalar condition
        with b.if_(cond):
            b.iadd(c, 1)
        kernel = b.finish()
        analysis = StaticScalarization(kernel)
        taken = kernel.blocks[0].terminator.taken
        assert analysis.result.static_scalar_count(taken) == 1

    def test_compiler_captures_fewer_than_gscalar(self):
        """The §6 claim: static scalarization misses a sizeable share of
        what dynamic detection finds (paper: 24% fewer)."""
        from repro.scalar.tracker import trace_statistics
        from repro.workloads.registry import build_workload

        static_total = 0.0
        dynamic_total = 0.0
        for abbr in ("BP", "HS", "LBM", "MM", "SAD"):
            built = build_workload(abbr, scale="tiny")
            trace = run_kernel(built.kernel, built.launch, built.memory)
            classified = classify_trace(trace, built.kernel.num_registers)
            dynamic_total += trace_statistics(classified).eligible_fraction
            static_total += StaticScalarization(
                built.kernel
            ).dynamic_static_scalar_fraction(trace)
        assert static_total < dynamic_total
        shortfall = 1 - static_total / dynamic_total
        assert shortfall > 0.10  # the compiler misses a real chunk
