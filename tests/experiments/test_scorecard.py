"""Tests for the reproduction scorecard."""

import pytest

from repro.experiments import scorecard
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scorecard import Claim


class TestClaimGrading:
    def test_match(self):
        claim = Claim("x", paper=1.0, measured=1.02, tight=0.05, loose=0.15)
        assert claim.grade == "MATCH"

    def test_close(self):
        claim = Claim("x", paper=1.0, measured=1.10, tight=0.05, loose=0.15)
        assert claim.grade == "CLOSE"

    def test_deviates(self):
        claim = Claim("x", paper=1.0, measured=1.50, tight=0.05, loose=0.15)
        assert claim.grade == "DEVIATES"

    def test_zero_paper_value(self):
        claim = Claim("x", paper=0.0, measured=0.01, tight=0.05, loose=0.15)
        assert claim.relative_error == pytest.approx(0.01)


class TestScorecardEndToEnd:
    @pytest.fixture(scope="class")
    def card(self):
        # Small scale: enough warps for the power results to be
        # representative while staying test-suite fast.
        return scorecard.compute(ExperimentRunner(scale="small"))

    def test_fifteen_claims(self, card):
        assert len(card.claims) == 15

    def test_majority_match(self, card):
        assert card.count("MATCH") >= 10
        assert card.count("DEVIATES") <= 2

    def test_structural_claims_always_match(self, card):
        by_name = {claim.name: claim for claim in card.claims}
        # Table 3 comes from the analytic model: scale-independent.
        assert by_name["compressor power (mW)"].grade == "MATCH"
        assert by_name["decompressor power (mW)"].grade == "MATCH"

    def test_render(self, card):
        text = scorecard.render(card)
        assert "Reproduction scorecard" in text
        assert "MATCH" in text
        assert "headline claims" in text
