"""Thread-grid decomposition: grids, CTAs and warps.

A kernel launch is a 1-D grid of CTAs (thread blocks), each a 1-D range
of threads.  Threads are packed into warps in lane order; a CTA whose
size is not a multiple of the warp size gets one trailing partial warp
whose tail lanes start (and stay) inactive, exactly as real hardware
handles ragged blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch: ``grid_dim`` CTAs of ``cta_dim`` threads."""

    grid_dim: int
    cta_dim: int

    def __post_init__(self) -> None:
        if self.grid_dim < 1:
            raise ConfigError(f"grid_dim must be >= 1, got {self.grid_dim}")
        if self.cta_dim < 1:
            raise ConfigError(f"cta_dim must be >= 1, got {self.cta_dim}")

    @property
    def total_threads(self) -> int:
        return self.grid_dim * self.cta_dim

    def warps_per_cta(self, warp_size: int) -> int:
        return (self.cta_dim + warp_size - 1) // warp_size

    def total_warps(self, warp_size: int) -> int:
        return self.grid_dim * self.warps_per_cta(warp_size)


@dataclass(frozen=True)
class WarpIdentity:
    """Static identity of one warp within a launch.

    Carries everything the executor needs to materialize the special
    registers: per-lane global thread ids, the CTA id and the warp's
    initial active mask (partial for a ragged trailing warp).
    """

    warp_id: int
    cta_id: int
    warp_in_cta: int
    warp_size: int
    cta_dim: int
    first_thread: int

    def lane_indices(self) -> np.ndarray:
        """Lane numbers 0..warp_size-1 as uint32."""
        return np.arange(self.warp_size, dtype=np.uint32)

    def global_thread_ids(self) -> np.ndarray:
        """Global thread id of each lane (valid only for active lanes)."""
        return (self.first_thread + np.arange(self.warp_size)).astype(np.uint32)

    def initial_mask(self) -> np.ndarray:
        """Boolean lane mask; False for tail lanes past the CTA size."""
        thread_in_cta = self.warp_in_cta * self.warp_size + np.arange(self.warp_size)
        return thread_in_cta < self.cta_dim


def enumerate_warps(launch: LaunchConfig, warp_size: int) -> list[WarpIdentity]:
    """All warps of a launch in (cta, warp-in-cta) order."""
    if warp_size < 1:
        raise ConfigError(f"warp_size must be >= 1, got {warp_size}")
    warps: list[WarpIdentity] = []
    per_cta = launch.warps_per_cta(warp_size)
    for cta in range(launch.grid_dim):
        for w in range(per_cta):
            warps.append(
                WarpIdentity(
                    warp_id=cta * per_cta + w,
                    cta_id=cta,
                    warp_in_cta=w,
                    warp_size=warp_size,
                    cta_dim=launch.cta_dim,
                    first_thread=cta * launch.cta_dim + w * warp_size,
                )
            )
    return warps


def mask_to_int(mask: np.ndarray) -> int:
    """Pack a boolean lane mask into an integer bitmask (lane 0 = bit 0)."""
    bits = 0
    for lane in np.flatnonzero(mask):
        bits |= 1 << int(lane)
    return bits


def int_to_mask(bits: int, warp_size: int) -> np.ndarray:
    """Unpack an integer bitmask into a boolean lane mask."""
    return np.array([(bits >> lane) & 1 == 1 for lane in range(warp_size)], dtype=bool)


def popcount(bits: int) -> int:
    """Number of set bits in an integer mask."""
    return int(bits).bit_count()
