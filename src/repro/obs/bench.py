"""Null-sink overhead benchmark for the telemetry hooks.

Runs the functional-execute + classify front of the pipeline plus the
event-driven SM timing loop (recorder disabled — the configuration
every normal run uses, which the flight-recorder hooks must not slow
down) on one benchmark repeatedly under three settings:

* ``off`` — the process-global registry is the disabled null registry
  (the default for every normal run; this is the "seed-equivalent"
  configuration the 5% CI guard protects),
* ``null-sink`` — an enabled registry with a :class:`~repro.obs.sinks.\
  NullSink`, paying the aggregation passes but writing nothing, and
* ``full`` — an enabled registry (same as ``null-sink``; sinks only
  receive spans, so the two differ by sink dispatch only).

Prints a JSON object with the median seconds per setting and the
disabled-path overhead ratio ``off / min(off, null_sink)`` — the
number the CI guard bounds.  Usage::

    PYTHONPATH=src python -m repro.obs.bench --benchmark BP --scale small
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.obs.sinks import NullSink
from repro.obs.telemetry import Telemetry, telemetry_session


def _one_run(benchmark: str, scale: str) -> float:
    from repro.experiments.runner import paper_architectures
    from repro.scalar.architectures import process_classified
    from repro.scalar.tracker import classify_trace
    from repro.simt.executor import run_kernel
    from repro.timing.gpu import simulate_architecture
    from repro.workloads.registry import build_workload

    built = build_workload(benchmark, scale)
    arch = paper_architectures()[0]
    started = time.perf_counter()
    trace = run_kernel(built.kernel, built.launch, built.memory)
    classified = classify_trace(trace, built.kernel.num_registers)
    # The SM timing loop runs inside the measured region so the CI
    # bound also covers the flight-recorder hook sites (recorder=None,
    # the default every normal run takes).
    processed = process_classified(classified, arch, trace.warp_size)
    simulate_architecture(
        processed,
        arch,
        warp_size=trace.warp_size,
        warps_per_cta=built.launch.warps_per_cta(trace.warp_size),
    )
    return time.perf_counter() - started


def measure(benchmark: str, scale: str, repeats: int) -> dict:
    """Median pipeline-front seconds per telemetry setting."""
    timings: dict[str, list[float]] = {"off": [], "null_sink": [], "full": []}
    _one_run(benchmark, scale)  # warm caches and imports once
    for _ in range(repeats):
        timings["off"].append(_one_run(benchmark, scale))
        with telemetry_session(Telemetry(sink=NullSink())):
            timings["null_sink"].append(_one_run(benchmark, scale))
        with telemetry_session():
            timings["full"].append(_one_run(benchmark, scale))
    medians = {name: statistics.median(values) for name, values in timings.items()}
    baseline = min(medians["off"], medians["null_sink"])
    return {
        "benchmark": benchmark,
        "scale": scale,
        "repeats": repeats,
        "median_seconds": {name: round(value, 6) for name, value in medians.items()},
        "disabled_overhead_ratio": round(medians["off"] / baseline, 4)
        if baseline > 0
        else 1.0,
        "enabled_overhead_ratio": round(medians["null_sink"] / medians["off"], 4)
        if medians["off"] > 0
        else 1.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.bench",
        description="Measure telemetry overhead on the execute+classify path.",
    )
    parser.add_argument("--benchmark", default="BP", help="workload abbreviation")
    parser.add_argument("--scale", default="small", help="workload problem size")
    parser.add_argument("--repeats", type=int, default=5, help="runs per setting")
    parser.add_argument(
        "--max-disabled-overhead",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail (exit 1) when the disabled-path ratio exceeds RATIO",
    )
    args = parser.parse_args(argv)
    result = measure(args.benchmark, args.scale, max(1, args.repeats))
    print(json.dumps(result, indent=2, sort_keys=True))
    if (
        args.max_disabled_overhead is not None
        and result["disabled_overhead_ratio"] > args.max_disabled_overhead
    ):
        print(
            f"[overhead guard failed: {result['disabled_overhead_ratio']} > "
            f"{args.max_disabled_overhead}]",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
