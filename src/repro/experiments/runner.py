"""End-to-end experiment pipeline with caching.

One :class:`ExperimentRunner` owns a scale and a GPU/energy
configuration and lazily computes, per benchmark:

* the functional trace (executed once, shared by every architecture),
* the classified event stream (tracker output, architecture-independent),
* per-architecture processed events, timing results and power reports.

Every figure regenerator takes a runner, so a full ``python -m repro all``
executes each benchmark exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.config import ArchitectureConfig, GpuConfig
from repro.power.accounting import PowerAccountant
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.report import PowerReport
from repro.scalar.architectures import ProcessedEvent, process_classified
from repro.scalar.tracker import ClassifiedEvent, classify_trace
from repro.simt.executor import run_kernel
from repro.simt.trace import KernelTrace
from repro.timing.gpu import simulate_architecture
from repro.timing.sm import TimingResult
from repro.workloads.registry import SCALES, BuiltWorkload, all_workloads, workload_by_name


@dataclass
class BenchmarkRun:
    """Cached functional-level artifacts of one benchmark."""

    abbr: str
    built: BuiltWorkload
    trace: KernelTrace
    classified: list[list[ClassifiedEvent]] = field(repr=False, default_factory=list)


class ExperimentRunner:
    """Caches traces and per-architecture results across experiments."""

    def __init__(
        self,
        scale: str = "default",
        config: GpuConfig | None = None,
        params: EnergyParams | None = None,
        verbose: bool = False,
        cache_dir: str | Path | None = None,
    ):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
        self.scale = SCALES[scale]
        self.config = config or GpuConfig()
        self.params = params or DEFAULT_ENERGY
        self.verbose = verbose
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._runs: dict[str, BenchmarkRun] = {}
        self._traces_64: dict[str, KernelTrace] = {}
        self._processed: dict[tuple[str, str], list[list[ProcessedEvent]]] = {}
        self._timing: dict[tuple[str, str], TimingResult] = {}
        self._power: dict[tuple[str, str], PowerReport] = {}

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[runner] {message}", flush=True)

    # ------------------------------------------------------------------
    def benchmark_names(self) -> list[str]:
        """All benchmark abbreviations in Table 2 order."""
        return [spec.abbr for spec in all_workloads()]

    def run(self, abbr: str) -> BenchmarkRun:
        """Execute (or fetch) one benchmark's functional trace.

        With ``cache_dir`` set, traces persist across processes as
        ``.npz`` files keyed by benchmark and scale.
        """
        key = abbr.upper()
        if key not in self._runs:
            spec = workload_by_name(key)
            built = spec.builder(self.scale)
            trace = None
            cache_path = None
            if self.cache_dir is not None:
                cache_path = self.cache_dir / f"{key}_{self.scale.name}.npz"
                if cache_path.exists():
                    from repro.simt.serialize import load_trace

                    self._log(f"loading cached trace for {key}")
                    trace = load_trace(cache_path)
            if trace is None:
                self._log(f"executing {key} at scale {self.scale.name!r}")
                trace = run_kernel(built.kernel, built.launch, built.memory)
                if cache_path is not None:
                    from repro.simt.serialize import save_trace

                    save_trace(trace, cache_path)
            classified = classify_trace(trace, built.kernel.num_registers)
            self._runs[key] = BenchmarkRun(
                abbr=key, built=built, trace=trace, classified=classified
            )
        return self._runs[key]

    def trace_with_warp_size(self, abbr: str, warp_size: int) -> KernelTrace:
        """Re-execute a benchmark with a different warp size (Figure 10)."""
        key = (abbr.upper(), warp_size)
        cache = self._traces_64
        if warp_size == 32:
            return self.run(abbr).trace
        token = f"{key[0]}@{warp_size}"
        if token not in cache:
            spec = workload_by_name(abbr)
            built = spec.builder(self.scale)
            self._log(f"executing {key[0]} at warp size {warp_size}")
            cache[token] = run_kernel(
                built.kernel, built.launch, built.memory, warp_size=warp_size
            )
        return cache[token]

    # ------------------------------------------------------------------
    def processed(
        self, abbr: str, arch: ArchitectureConfig
    ) -> list[list[ProcessedEvent]]:
        """Per-architecture processed events for one benchmark."""
        key = (abbr.upper(), arch.name)
        if key not in self._processed:
            run = self.run(abbr)
            self._processed[key] = process_classified(
                run.classified, arch, run.trace.warp_size
            )
        return self._processed[key]

    def timing(self, abbr: str, arch: ArchitectureConfig) -> TimingResult:
        """Cycle-level result for one (benchmark, architecture) pair."""
        key = (abbr.upper(), arch.name)
        if key not in self._timing:
            self._log(f"timing {key[0]} on {arch.name}")
            run = self.run(abbr)
            warps_per_cta = run.built.launch.warps_per_cta(run.trace.warp_size)
            self._timing[key] = simulate_architecture(
                self.processed(abbr, arch),
                arch,
                self.config,
                warps_per_cta=warps_per_cta,
            )
        return self._timing[key]

    def power(self, abbr: str, arch: ArchitectureConfig) -> PowerReport:
        """Power report for one (benchmark, architecture) pair."""
        key = (abbr.upper(), arch.name)
        if key not in self._power:
            accountant = PowerAccountant(arch, self.params, self.config)
            self._power[key] = accountant.account(
                self.processed(abbr, arch), self.timing(abbr, arch)
            )
        return self._power[key]
