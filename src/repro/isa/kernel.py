"""Kernel control-flow graphs and dominance analysis.

A :class:`Kernel` is a list of :class:`BasicBlock`; each block ends in
exactly one terminator (:class:`Branch`, :class:`Jump` or :class:`Exit`).
The SIMT executor reconverges divergent branches at the branch block's
*immediate post-dominator*, which :func:`immediate_postdominators`
computes with the classic Cooper–Harvey–Kennedy iterative algorithm run
on the reverse CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelValidationError
from repro.isa.instructions import Instruction, Reg

#: Virtual node id used as the sink of the reverse CFG (the point "after"
#: the exit block).  Kept negative so it can never collide with a block id.
EXIT_NODE = -1


@dataclass(frozen=True)
class Branch:
    """Conditional terminator: go to ``taken`` where ``cond`` is nonzero,
    else to ``not_taken``."""

    cond: Reg
    taken: int
    not_taken: int


@dataclass(frozen=True)
class Jump:
    """Unconditional terminator."""

    target: int


@dataclass(frozen=True)
class Exit:
    """Kernel exit terminator."""


Terminator = Branch | Jump | Exit


@dataclass
class BasicBlock:
    """A straight-line run of instructions plus one terminator."""

    block_id: int
    instructions: list[Instruction] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Exit)

    def successors(self) -> tuple[int, ...]:
        """Successor block ids (``EXIT_NODE`` for the virtual exit)."""
        term = self.terminator
        if isinstance(term, Branch):
            if term.taken == term.not_taken:
                return (term.taken,)
            return (term.taken, term.not_taken)
        if isinstance(term, Jump):
            return (term.target,)
        return (EXIT_NODE,)


@dataclass
class Kernel:
    """A validated kernel: entry block 0, a single reachable CFG.

    ``name`` identifies the kernel in traces; ``num_registers`` is the
    highest register index used plus one (computed by ``validate``).
    """

    name: str
    blocks: list[BasicBlock]
    num_registers: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check CFG integrity and recompute ``num_registers``."""
        if not self.blocks:
            raise KernelValidationError(f"kernel {self.name!r} has no blocks")
        for position, block in enumerate(self.blocks):
            if block.block_id != position:
                raise KernelValidationError(
                    f"kernel {self.name!r}: block at position {position} "
                    f"has id {block.block_id}"
                )
            for succ in block.successors():
                if succ != EXIT_NODE and not 0 <= succ < len(self.blocks):
                    raise KernelValidationError(
                        f"kernel {self.name!r}: block {block.block_id} "
                        f"targets nonexistent block {succ}"
                    )
        reachable = self._reachable_from_entry()
        unreachable = set(range(len(self.blocks))) - reachable
        if unreachable:
            raise KernelValidationError(
                f"kernel {self.name!r}: unreachable blocks {sorted(unreachable)}"
            )
        if not any(isinstance(b.terminator, Exit) for b in self.blocks):
            raise KernelValidationError(f"kernel {self.name!r} has no exit block")
        highest = -1
        for block in self.blocks:
            for inst in block.instructions:
                if inst.dst is not None:
                    highest = max(highest, inst.dst.index)
                for src in inst.source_registers:
                    highest = max(highest, src.index)
            if isinstance(block.terminator, Branch):
                highest = max(highest, block.terminator.cond.index)
        self.num_registers = highest + 1

    def _reachable_from_entry(self) -> set[int]:
        seen = {0}
        worklist = [0]
        while worklist:
            node = worklist.pop()
            for succ in self.blocks[node].successors():
                if succ != EXIT_NODE and succ not in seen:
                    seen.add(succ)
                    worklist.append(succ)
        return seen

    def predecessors(self) -> dict[int, list[int]]:
        """Map each block id (and ``EXIT_NODE``) to its predecessor ids."""
        preds: dict[int, list[int]] = {b.block_id: [] for b in self.blocks}
        preds[EXIT_NODE] = []
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block.block_id)
        return preds

    def static_instruction_count(self) -> int:
        """Total body instructions across all blocks."""
        return sum(len(b.instructions) for b in self.blocks)

    def __repr__(self) -> str:
        return (
            f"Kernel({self.name!r}, blocks={len(self.blocks)}, "
            f"instructions={self.static_instruction_count()})"
        )


def immediate_postdominators(kernel: Kernel) -> dict[int, int]:
    """Immediate post-dominator of every block.

    Runs the Cooper–Harvey–Kennedy dominator algorithm on the reverse
    CFG rooted at the virtual :data:`EXIT_NODE`.  The returned map sends
    each real block id to its immediate post-dominator (possibly
    ``EXIT_NODE``); the executor reconverges a divergent branch at
    ``ipdom[branch_block]``.
    """
    # Reverse post-order of the *reverse* CFG, i.e. an order in which a
    # node appears after everything it post-dominates was processed.
    preds = kernel.predecessors()  # predecessors in forward CFG = successors in reverse
    order: list[int] = []
    seen: set[int] = set()

    def dfs(node: int) -> None:
        # Iterative DFS over the reverse CFG (edges: node -> its forward preds).
        stack: list[tuple[int, int]] = [(node, 0)]
        seen.add(node)
        while stack:
            current, child_index = stack[-1]
            children = preds[current]
            if child_index < len(children):
                stack[-1] = (current, child_index + 1)
                child = children[child_index]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, 0))
            else:
                order.append(current)
                stack.pop()

    dfs(EXIT_NODE)
    reverse_postorder = list(reversed(order))
    position = {node: i for i, node in enumerate(reverse_postorder)}

    # In the reverse CFG, a node's "predecessors" are its forward successors.
    def reverse_preds(node: int) -> list[int]:
        if node == EXIT_NODE:
            return []
        return [s for s in kernel.blocks[node].successors() if s in position]

    ipdom: dict[int, int | None] = {node: None for node in reverse_postorder}
    ipdom[EXIT_NODE] = EXIT_NODE

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = ipdom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = ipdom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in reverse_postorder:
            if node == EXIT_NODE:
                continue
            candidates = [p for p in reverse_preds(node) if ipdom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if ipdom[node] != new_idom:
                ipdom[node] = new_idom
                changed = True

    result: dict[int, int] = {}
    for block in kernel.blocks:
        value = ipdom.get(block.block_id)
        if value is None:
            raise KernelValidationError(
                f"kernel {kernel.name!r}: block {block.block_id} cannot reach exit"
            )
        result[block.block_id] = value
    return result
