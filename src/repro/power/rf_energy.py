"""Register-file and crossbar energy per access.

Turns the :class:`~repro.regfile.access.RegisterAccess` records emitted
by the architecture views into picojoules, using the arrays-activated
arithmetic of :mod:`repro.regfile.layout`:

* a full access activates all eight 128-bit arrays,
* an ``n``-byte-prefix compressed access activates ``2*(4-n)`` arrays
  (or the per-half count under half-register compression) plus the
  sidecar,
* a scalar access touches only the sidecar (5.2% of a full access),
* a divergent partial write touches all eight arrays under byte
  rotation but only the masked word-arrays under the baseline layout
  (§3.3), and
* crossbar energy scales with the bytes actually moved — prefix bytes
  never travel (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ArchitectureConfig
from repro.errors import ConfigError
from repro.power.energy import EnergyParams
from repro.regfile.access import (
    ACCESS_KIND_TO_ID,
    ID_TO_ACCESS_KIND,
    AccessKind,
    RegisterAccess,
)
from repro.regfile.layout import BankGeometry, BaselineLayout, ByteRotatedLayout

#: Tally keys: every field access energy depends on, with the
#: mask-dependent PARTIAL_WRITE reduced to (popcount, arrays-activated).
#: ``(kind_id, enc, enc_lo, enc_hi, half_compressed, sidecar, popcount,
#: arrays)`` — the last two are zero except for partial writes.
TallyKey = tuple[int, int, int, int, bool, bool, int, int]

_PARTIAL_WRITE_ID = ACCESS_KIND_TO_ID[AccessKind.PARTIAL_WRITE]


@dataclass(frozen=True)
class AccessEnergy:
    """Energy split of one register access."""

    rf_pj: float
    crossbar_pj: float

    @property
    def total_pj(self) -> float:
        return self.rf_pj + self.crossbar_pj


class RegisterFileEnergyModel:
    """Per-access energy under a given architecture."""

    def __init__(
        self,
        arch: ArchitectureConfig,
        params: EnergyParams,
        geometry: BankGeometry | None = None,
    ):
        self.arch = arch
        self.params = params
        self.geometry = geometry or BankGeometry()
        self._rotated = ByteRotatedLayout(self.geometry)
        self._baseline = BaselineLayout(self.geometry)
        self._partial_arrays_memo: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _arrays_for_compressed(self, access: RegisterAccess) -> int:
        if access.half_compressed:
            return self._rotated.arrays_for_half_compressed_access(
                access.enc_lo, access.enc_hi
            )
        return self._rotated.arrays_for_compressed_access(access.enc)

    def _data_bytes_for_compressed(self, access: RegisterAccess) -> int:
        lanes = self.geometry.warp_size
        if access.half_compressed:
            half = lanes // 2
            return (4 - access.enc_lo) * half + (4 - access.enc_hi) * half
        return (4 - access.enc) * lanes

    # ------------------------------------------------------------------
    def energy_of(self, access: RegisterAccess) -> AccessEnergy:
        """Energy (register file + crossbar) of one access."""
        params = self.params
        kind = access.kind
        lanes = self.geometry.warp_size
        full_bytes = lanes * 4

        if kind in (AccessKind.FULL_READ, AccessKind.FULL_WRITE):
            rf = params.rf_full_access_pj
            if access.sidecar:
                rf += params.sidecar_pj
            return AccessEnergy(rf_pj=rf, crossbar_pj=params.crossbar_per_byte_pj * full_bytes)

        if kind in (AccessKind.COMPRESSED_READ, AccessKind.COMPRESSED_WRITE):
            arrays = self._arrays_for_compressed(access)
            rf = arrays * params.rf_array_pj
            if access.sidecar:
                rf += params.sidecar_pj
            data_bytes = self._data_bytes_for_compressed(access)
            # The base value travels to/from the decompressor (<= 8 B).
            return AccessEnergy(
                rf_pj=rf,
                crossbar_pj=params.crossbar_per_byte_pj * (data_bytes + 4),
            )

        if kind in (AccessKind.SCALAR_READ, AccessKind.SCALAR_WRITE):
            return AccessEnergy(
                rf_pj=params.sidecar_pj,
                crossbar_pj=params.crossbar_per_byte_pj * 4,
            )

        if kind is AccessKind.PARTIAL_WRITE:
            active_bytes = int(access.active_mask).bit_count() * 4
            if self.arch.register_compression:
                # Byte rotation scatters every lane's bytes over all
                # arrays: the whole bank lights up (§3.3).
                rf = float(self._rotated.arrays_for_divergent_write()) * params.rf_array_pj
                if access.sidecar:
                    rf += params.sidecar_pj
            else:
                arrays = self._baseline.arrays_for_partial_write(access.active_mask)
                rf = arrays * params.rf_array_pj
            return AccessEnergy(
                rf_pj=rf, crossbar_pj=params.crossbar_per_byte_pj * active_bytes
            )

        if kind in (AccessKind.SCALAR_RF_READ, AccessKind.SCALAR_RF_WRITE):
            return AccessEnergy(
                rf_pj=params.scalar_rf_pj,
                crossbar_pj=params.crossbar_per_byte_pj * 4,
            )

        raise ConfigError(f"unhandled access kind {kind}")

    def total_energy(self, accesses: tuple[RegisterAccess, ...]) -> AccessEnergy:
        """Summed energy of one event's accesses."""
        rf = 0.0
        crossbar = 0.0
        for access in accesses:
            energy = self.energy_of(access)
            rf += energy.rf_pj
            crossbar += energy.crossbar_pj
        return AccessEnergy(rf_pj=rf, crossbar_pj=crossbar)

    # ------------------------------------------------------------------
    # Tally evaluation: the aggregated form of energy_of used by both
    # power-accounting engines.  Energy is a pure function of the tally
    # key, so a whole access stream reduces to key -> count and one
    # energy evaluation per distinct key.  Both engines route their
    # totals through tally_energy so the summation order (sorted keys)
    # is shared — bit-identical reports by construction.
    # ------------------------------------------------------------------
    def partial_arrays(self, active_mask: int) -> int:
        """Arrays activated by a divergent partial write of this mask."""
        if self.arch.register_compression:
            return self._rotated.arrays_for_divergent_write()
        memo = self._partial_arrays_memo
        arrays = memo.get(active_mask)
        if arrays is None:
            arrays = self._baseline.arrays_for_partial_write(active_mask)
            memo[active_mask] = arrays
        return arrays

    def tally_key(self, access: RegisterAccess) -> TallyKey:
        """Reduce one access to the fields its energy depends on."""
        kind_id = ACCESS_KIND_TO_ID[access.kind]
        if kind_id == _PARTIAL_WRITE_ID:
            mask = int(access.active_mask)
            return (
                kind_id,
                0,
                0,
                0,
                False,
                bool(access.sidecar),
                mask.bit_count(),
                self.partial_arrays(mask),
            )
        return (
            kind_id,
            int(access.enc),
            int(access.enc_lo),
            int(access.enc_hi),
            bool(access.half_compressed),
            bool(access.sidecar),
            0,
            0,
        )

    def energy_of_key(self, key: TallyKey) -> AccessEnergy:
        """Energy of one access identified by its tally key."""
        kind_id, enc, enc_lo, enc_hi, half, sidecar, popcount, arrays = key
        if kind_id == _PARTIAL_WRITE_ID:
            params = self.params
            # Mirrors the PARTIAL_WRITE branch of energy_of exactly,
            # with the mask pre-reduced to (popcount, arrays).
            if self.arch.register_compression:
                rf = float(arrays) * params.rf_array_pj
                if sidecar:
                    rf += params.sidecar_pj
            else:
                rf = arrays * params.rf_array_pj
            return AccessEnergy(
                rf_pj=rf,
                crossbar_pj=params.crossbar_per_byte_pj * (popcount * 4),
            )
        return self.energy_of(
            RegisterAccess(
                kind=ID_TO_ACCESS_KIND[kind_id],
                register=0,
                enc=enc,
                enc_lo=enc_lo,
                enc_hi=enc_hi,
                half_compressed=half,
                sidecar=sidecar,
            )
        )

    def tally_energy(self, tally: dict[TallyKey, int]) -> AccessEnergy:
        """Total energy of a key -> count access tally.

        Keys are evaluated in sorted order so any two engines producing
        the same tally get the same floating-point sum.
        """
        rf = 0.0
        crossbar = 0.0
        for key in sorted(tally):
            energy = self.energy_of_key(key)
            count = tally[key]
            rf += count * energy.rf_pj
            crossbar += count * energy.crossbar_pj
        return AccessEnergy(rf_pj=rf, crossbar_pj=crossbar)
