"""Tests for JSON export of experiment results."""

import json

import pytest

from repro.experiments.export import (
    export_experiment,
    exportable_experiments,
    write_json,
)
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="tiny")


class TestExport:
    def test_every_figure_is_exportable(self):
        assert set(exportable_experiments()) == {
            "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "extras",
            "staticdyn",
        }

    def test_staticdyn_envelope(self, runner):
        data = export_experiment("staticdyn", runner, "tiny")["data"]
        assert len(data["benchmarks"]) == 17
        assert data["total_soundness_violations"] == 0
        for payload in data["benchmarks"].values():
            assert 0.0 <= payload["precision"] <= 1.0
            assert set(payload["static_sites"]) == {
                "provably_scalar", "possibly_scalar", "divergent",
            }

    def test_fig1_envelope(self, runner):
        envelope = export_experiment("fig1", runner, "tiny")
        assert envelope["experiment"] == "fig1"
        assert envelope["scale"] == "tiny"
        data = envelope["data"]
        assert len(data["benchmarks"]) == 17
        assert "paper" in data

    def test_fig9_payload_is_json_serializable(self, runner, tmp_path):
        envelope = export_experiment("fig9", runner, "tiny")
        path = tmp_path / "out.json"
        write_json([envelope], path)
        loaded = json.loads(path.read_text())
        assert loaded[0]["data"]["benchmarks"]["BP"]["half_scalar"] > 0

    def test_fig12_averages(self, runner):
        data = export_experiment("fig12", runner, "tiny")["data"]
        assert data["averages"]["ours"] < 1.0
        assert set(data["averages"]) == {"scalar_rf", "wc_bdi", "ours"}

    def test_unknown_experiment_rejected(self, runner):
        with pytest.raises(KeyError):
            export_experiment("table1", runner, "tiny")

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig1.json"
        assert main(["fig1", "--scale", "tiny", "--json", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert loaded[0]["experiment"] == "fig1"
