"""Scalar-eligibility classification, sidecar tracking, architecture views."""

from repro.scalar.architectures import (
    ArchitectureView,
    ProcessedEvent,
    ProcessedStatistics,
    process_classified,
    process_trace,
    processed_statistics,
)
from repro.scalar.arch_batch import (
    ARCH_ENGINE_CHOICES,
    DEFAULT_ARCH_ENGINE,
    process_columns,
)
from repro.scalar.batch import (
    CLASSIFIER_CHOICES,
    DEFAULT_CLASSIFIER,
    classify_columnar_batch,
    classify_trace_batch,
    classify_trace_with,
)
from repro.scalar.columns import (
    ClassifiedColumns,
    ProcessedColumns,
    processed_columns_diff,
    processed_columns_equal,
)
from repro.scalar.compiler import (
    MoveElisionAnalysis,
    StaticScalarization,
    ValueKind,
)
from repro.scalar.eligibility import (
    ScalarClass,
    SourceRead,
    classify_instruction,
    classify_source_read,
)
from repro.scalar.tracker import (
    HALF_GRANULARITY,
    ClassifiedEvent,
    RegisterStateTracker,
    TrackerStatistics,
    classify_trace,
    classify_warp,
    trace_statistics,
)

__all__ = [
    "ARCH_ENGINE_CHOICES",
    "CLASSIFIER_CHOICES",
    "DEFAULT_ARCH_ENGINE",
    "DEFAULT_CLASSIFIER",
    "HALF_GRANULARITY",
    "ArchitectureView",
    "ClassifiedColumns",
    "ClassifiedEvent",
    "MoveElisionAnalysis",
    "ProcessedColumns",
    "ProcessedEvent",
    "ProcessedStatistics",
    "RegisterStateTracker",
    "ScalarClass",
    "StaticScalarization",
    "SourceRead",
    "TrackerStatistics",
    "ValueKind",
    "classify_columnar_batch",
    "classify_instruction",
    "classify_source_read",
    "classify_trace",
    "classify_trace_batch",
    "classify_trace_with",
    "classify_warp",
    "process_classified",
    "process_columns",
    "process_trace",
    "processed_columns_diff",
    "processed_columns_equal",
    "processed_statistics",
    "trace_statistics",
]
