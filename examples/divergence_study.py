"""Divergent-scalar study: how divergence interacts with scalar execution.

The paper's key observation (§4.2) is that values in the *active lanes*
of a divergent path are often uniform even when the full register is
not.  This example sweeps the fraction of mixed (divergence-inducing)
warps in a boundary-condition kernel and reports:

* the fraction of divergent instructions (Figure 1's metric),
* how many of them G-Scalar can scalarize, and
* the resulting power-efficiency gap between G-Scalar with and without
  divergent-scalar support.

Run with:  python examples/divergence_study.py
"""

import numpy as np

from repro.config import ArchitectureConfig
from repro.analysis import divergence_stats
from repro.isa import KernelBuilder
from repro.power import PowerAccountant
from repro.scalar import classify_trace, process_classified
from repro.simt import LaunchConfig, MemoryImage, run_kernel
from repro.timing import simulate_architecture
from repro.workloads import datagen


def boundary_kernel(iterations=6):
    """A stencil-like loop whose boundary path works on shared constants."""
    b = KernelBuilder("boundary")
    tid = b.tid()
    omega = b.ld_global(b.mov(0x100))  # shared relaxation constant
    flag = b.ld_global(b.imad(tid, 4, 0x200))
    at_boundary = b.setne(flag, 0)
    value = b.ld_global(b.imad(tid, 4, 0x1000))
    with b.for_range(0, iterations):
        update = b.fmul(value, b.fimm(0.99))
        with b.if_(at_boundary) as branch:
            # Shared-constant chain: divergent-scalar candidates.
            damped = b.fmul(omega, b.fimm(0.5))
            clamped = b.fmin(damped, omega)
            value = b.fadd(value, clamped, dst=value)
            with branch.else_():
                value = b.fadd(value, update, dst=value)
    b.st_global(b.imad(tid, 4, 0x2000), value)
    return b.finish()


def run_at_mixed_fraction(mixed_fraction, threads=512):
    kernel = boundary_kernel()
    memory = MemoryImage()
    memory.bind_array(0x100, np.array([1.85], dtype=np.float32))
    memory.bind_array(
        0x200, datagen.boundary_mask_pattern(threads, mixed_fraction, seed=42)
    )
    memory.bind_array(0x1000, datagen.narrow_floats(threads, 1.0, 0.01, seed=7))
    trace = run_kernel(kernel, LaunchConfig(grid_dim=4, cta_dim=threads // 4), memory)
    classified = classify_trace(trace, kernel.num_registers)

    stats = divergence_stats(classified)
    efficiencies = {}
    for arch in (
        ArchitectureConfig.gscalar_no_divergent(),
        ArchitectureConfig.gscalar(),
    ):
        processed = process_classified(classified, arch, trace.warp_size)
        timing = simulate_architecture(processed, arch)
        report = PowerAccountant(arch).account(processed, timing)
        efficiencies[arch.name] = report.ipc_per_watt
    return stats, efficiencies


def main():
    print(f"{'mixed warps':>12s} {'divergent%':>11s} {'div-scalar%':>12s} "
          f"{'divergent-scalar gain':>22s}")
    for mixed_fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        stats, efficiencies = run_at_mixed_fraction(mixed_fraction)
        gain = efficiencies["gscalar"] / efficiencies["gscalar_no_divergent"]
        print(
            f"{100 * mixed_fraction:11.0f}% "
            f"{100 * stats.divergent_fraction:10.1f}% "
            f"{100 * stats.divergent_scalar_fraction:11.1f}% "
            f"{gain:21.3f}x"
        )
    print(
        "\nAs more warps diverge, divergent-scalar support matters more —"
        "\nthe mechanism behind G-Scalar's wins on lbm/heartwall (§4.2)."
    )


if __name__ == "__main__":
    main()
