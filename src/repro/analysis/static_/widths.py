"""Static value-width analysis: which registers are *provably* narrow.

G-Scalar compresses register values dynamically, by observing at
write-back how many most-significant bytes the lanes share.  This pass
is the compile-time counterpart (Angerd/Sintorn/Stenström,
arXiv:2006.05693): a forward abstract interpretation over the kernel
CFG that bounds every register's value at every program point, and from
those bounds derives *guaranteed* compressed widths — byte prefixes
that are provably redundant on **every** execution path, so a register
file may allocate the register narrow at compile time with no runtime
detection hardware at all.

The abstract domain per register is a :class:`WidthVal`:

* an **unsigned 32-bit interval** ``[lo, hi]`` bounding each lane's
  value (the executor computes modulo 2^32; transfers return top on any
  possible wraparound),
* an **affine stride**: ``stride == 0`` means the value is provably
  warp-uniform (every lane equal), ``stride == s != 0`` means lane ``l``
  holds ``base + s*l (mod 2^32)`` for an unknown uniform ``base``, and
  ``stride is None`` means no cross-lane structure is known.

Soundness mirrors :mod:`repro.analysis.static_.uniformity` exactly —
the two analyses share the control-divergence machinery: a write inside
a control-divergent block is a masked merge (after reconvergence the
register mixes new and old per lane), so its stored state joins with
the previous state and drops the stride.  Outside divergent regions
every active lane follows the same path, so block-entry joins may keep
an agreeing stride.  Intervals additionally survive merges because they
are per-lane bounds, not cross-lane relations.

Two kinds of *claims* fall out, both validated dynamically by
``repro staticdyn --widths`` (zero over-claims required):

* **per-site** — at each write site, the ``enc`` prefix-byte count the
  dynamic tracker is guaranteed to observe: 4 when the written value is
  provably uniform (``stride == 0``), else the number of provably-zero
  leading bytes of ``hi``;
* **per-register** — the minimum *zero-byte* claim over all reachable
  write sites: the width a statically-compressed register file can
  allocate for the register.  Only zero-byte claims feed storage width:
  a masked write merges with stale (or initial zero) lane values, which
  zero prefixes survive but uniformity does not.

Termination is by widening at block entries: a growing upper bound
rounds up to the next byte boundary (claims are byte-granular, so this
loses no claim precision), a shrinking lower bound drops to zero, and
an unstable stride drops to unknown — every component has a finite
chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Imm, Instruction, Reg, SpecialReg
from repro.isa.kernel import Kernel
from repro.isa.opcodes import Opcode, is_load

from repro.analysis.static_.diagnostics import Diagnostic
from repro.analysis.static_.framework import AnalysisContext, LintPass
from repro.analysis.static_.uniformity import analyze_uniformity

#: Bump when the transfer functions or claim derivation change meaning;
#: the experiment runner keys static-compress result sidecars on it.
WIDTH_ANALYSIS_VERSION = 1

_M32 = 0xFFFFFFFF
_MOD = 1 << 32
#: Interval upper bounds produced by widening (byte boundaries).
_BYTE_BOUNDS = (0xFF, 0xFFFF, 0xFFFFFF, 0xFFFFFFFF)
#: Values whose signed and unsigned 32-bit orderings agree.
_SIGNED_MAX = 0x7FFFFFFF


@dataclass(frozen=True)
class WidthVal:
    """Abstract value of one register: interval bounds plus affine stride.

    ``lo > hi`` encodes bottom (no value reaches this point — e.g. a
    register in an unreachable block).  ``stride`` is ``0`` for
    provably warp-uniform values, a nonzero ``s`` for provably affine
    ``base + s*lane (mod 2^32)`` values, and ``None`` when no
    cross-lane structure is known.
    """

    lo: int
    hi: int
    stride: int | None

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    @property
    def is_singleton(self) -> bool:
        """Exactly one concrete value — in every lane."""
        return self.lo == self.hi and self.stride == 0

    @property
    def uniform(self) -> bool:
        return self.stride == 0

    def zero_bytes(self) -> int:
        """Provably-zero leading bytes of every value in the interval."""
        if self.is_bottom or self.hi == 0:
            return 4
        for index, bound in enumerate(_BYTE_BOUNDS):
            if self.hi <= bound:
                return 3 - index
        return 0

    def claimed_enc(self) -> int:
        """Guaranteed dynamic ``enc`` for a value written from this state.

        A provably-uniform value always compresses to the 4-byte scalar
        prefix; otherwise only the provably-zero leading bytes are
        guaranteed (they are equal — zero — in every lane).
        """
        if self.is_bottom or self.stride == 0:
            return 4
        return self.zero_bytes()


BOTTOM = WidthVal(1, 0, None)
ZERO = WidthVal(0, 0, 0)  # registers are zero-initialized
TOP = WidthVal(0, _M32, None)
#: Top interval but provably warp-uniform.
TOP_UNIFORM = WidthVal(0, _M32, 0)


def join(a: WidthVal, b: WidthVal) -> WidthVal:
    """Least upper bound for a control-flow merge.

    Outside control-divergent regions every active lane arrived via the
    same dynamic path, so an agreeing stride survives the join; the
    interval is the usual hull.  (Merges of *divergent* arms are
    already conservative: any write under divergent control stores a
    stride-free joined state, so its out-state cannot agree with the
    other arm's unless the register was untouched by both.)
    """
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    stride = a.stride if a.stride == b.stride else None
    return WidthVal(min(a.lo, b.lo), max(a.hi, b.hi), stride)


def join_masked(old: WidthVal, new: WidthVal) -> WidthVal:
    """Merge for a write under a possibly-partial mask.

    Inactive lanes keep their old data, so after reconvergence the
    register holds a per-lane mix of ``old`` and ``new``: the interval
    hull still bounds every lane, but no cross-lane structure survives.
    """
    if old.is_bottom:
        merged = new
    elif new.is_bottom:
        merged = old
    else:
        merged = WidthVal(min(old.lo, new.lo), max(old.hi, new.hi), None)
    return WidthVal(merged.lo, merged.hi, None)


def widen(old: WidthVal, new: WidthVal) -> WidthVal:
    """Widening at block entries: monotone by construction.

    The lower bound only ever drops (straight to 0), the upper bound
    only ever grows (rounded up to the next byte boundary, so claims —
    which are byte-granular — lose nothing), and the stride collapses
    to unknown on any instability.  Each component has a finite chain,
    so the fixpoint terminates regardless of transfer behavior.
    """
    if old.is_bottom:
        return new
    if new.is_bottom:
        return old
    lo = old.lo if new.lo >= old.lo else 0
    hi = old.hi if new.hi <= old.hi else _byte_ceil(new.hi)
    stride = old.stride if new.stride == old.stride else None
    return WidthVal(lo, hi, stride)


def _byte_ceil(value: int) -> int:
    for bound in _BYTE_BOUNDS:
        if value <= bound:
            return bound
    return _M32


# ----------------------------------------------------------------------
# Transfer functions.
# ----------------------------------------------------------------------
def _operand_width(
    operand: Reg | Imm | SpecialReg,
    state: list[WidthVal],
    warp_size: int,
) -> WidthVal:
    if isinstance(operand, Imm):
        return WidthVal(operand.value, operand.value, 0)
    if isinstance(operand, SpecialReg):
        if operand is SpecialReg.LANE:
            return WidthVal(0, warp_size - 1, 1)
        if operand is SpecialReg.TID:
            # Global thread id: ctaid*ntid + warp*warp_size + lane.
            return WidthVal(0, _M32, 1)
        # CTAID / WARP_IN_CTA / NTID broadcast one value per warp.
        return TOP_UNIFORM
    return state[operand.index]


def _uniform_stride(vals: list[WidthVal]) -> int | None:
    """Stride of any deterministic per-lane op on these operands.

    The executor computes every opcode lane-wise from its source
    arrays (memory state is shared), so all-uniform inputs always
    produce a uniform output, whatever the operation.
    """
    return 0 if all(v.stride == 0 for v in vals) else None


def _const(v: WidthVal) -> int | None:
    """The single value this operand takes in every lane, if known."""
    return v.lo if v.is_singleton else None


def _add(a: WidthVal, b: WidthVal) -> WidthVal:
    stride = (
        (a.stride + b.stride) % _MOD
        if a.stride is not None and b.stride is not None
        else None
    )
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if hi > _M32:  # possible wraparound: bounds are gone, affinity is not
        return WidthVal(0, _M32, stride)
    return WidthVal(lo, hi, stride)


def _sub(a: WidthVal, b: WidthVal) -> WidthVal:
    stride = (
        (a.stride - b.stride) % _MOD
        if a.stride is not None and b.stride is not None
        else None
    )
    if a.lo >= b.hi:  # no underflow possible
        return WidthVal(a.lo - b.hi, a.hi - b.lo, stride)
    return WidthVal(0, _M32, stride)


def _mul(a: WidthVal, b: WidthVal) -> WidthVal:
    stride: int | None = _uniform_stride([a, b])
    if stride is None:
        # An affine value scaled by a warp-uniform *constant* keeps an
        # affine form with a statically-known stride; scaling by an
        # unknown uniform yields an unknown stride.
        ka, kb = _const(a), _const(b)
        if a.stride is not None and kb is not None:
            stride = (a.stride * kb) % _MOD
        elif b.stride is not None and ka is not None:
            stride = (b.stride * ka) % _MOD
    if a.hi * b.hi > _M32:
        return WidthVal(0, _M32, stride)
    return WidthVal(a.lo * b.lo, a.hi * b.hi, stride)


def _shl(a: WidthVal, b: WidthVal) -> WidthVal:
    if b.hi > 31:  # the executor masks the amount: all structure is lost
        return WidthVal(0, _M32, _uniform_stride([a, b]))
    stride: int | None = _uniform_stride([a, b])
    kb = _const(b)
    if stride is None and a.stride is not None and kb is not None:
        # (base + s*lane) << k distributes modulo 2^32.
        stride = (a.stride << kb) % _MOD
    if (a.hi << b.hi) > _M32:
        return WidthVal(0, _M32, stride)
    return WidthVal(a.lo << b.lo, a.hi << b.hi, stride)


def _shr(a: WidthVal, b: WidthVal) -> WidthVal:
    stride = _uniform_stride([a, b])
    if b.hi > 31:
        return WidthVal(0, a.hi, stride)
    return WidthVal(a.lo >> b.hi, a.hi >> b.lo, stride)


def _compare_signed(a: WidthVal, b: WidthVal, op: Opcode) -> WidthVal:
    """SETLT/LE/GT/GE: signed compare producing 0/1 per lane."""
    stride = _uniform_stride([a, b])
    if a.hi <= _SIGNED_MAX and b.hi <= _SIGNED_MAX:
        # Signed and unsigned orderings agree: the outcome may be fixed.
        checks = {
            Opcode.SETLT: (a.hi < b.lo, a.lo >= b.hi),
            Opcode.SETLE: (a.hi <= b.lo, a.lo > b.hi),
            Opcode.SETGT: (a.lo > b.hi, a.hi <= b.lo),
            Opcode.SETGE: (a.lo >= b.hi, a.hi < b.lo),
        }
        always, never = checks[op]
        if always:
            return WidthVal(1, 1, 0)
        if never:
            return ZERO
    return WidthVal(0, 1, stride)


def _compare_bitwise(a: WidthVal, b: WidthVal, op: Opcode) -> WidthVal:
    """SETEQ/SETNE compare raw 32-bit patterns."""
    stride = _uniform_stride([a, b])
    if a.hi < b.lo or b.hi < a.lo:  # provably disjoint: never equal
        return ZERO if op is Opcode.SETEQ else WidthVal(1, 1, 0)
    if a.is_singleton and b.is_singleton and a.lo == b.lo:
        return WidthVal(1, 1, 0) if op is Opcode.SETEQ else ZERO
    return WidthVal(0, 1, stride)


def _selp(a: WidthVal, b: WidthVal, pred: WidthVal) -> WidthVal:
    hull = join(a, b)
    if pred.stride == 0:
        # A warp-uniform predicate picks the same arm in every lane, so
        # the result is wholly one arm: an agreeing stride survives.
        stride = a.stride if a.stride == b.stride else None
        return WidthVal(hull.lo, hull.hi, stride)
    return WidthVal(hull.lo, hull.hi, None)


def _min_max(a: WidthVal, b: WidthVal, op: Opcode) -> WidthVal:
    stride = _uniform_stride([a, b])
    if a.hi <= _SIGNED_MAX and b.hi <= _SIGNED_MAX:
        if op is Opcode.IMIN:
            return WidthVal(min(a.lo, b.lo), min(a.hi, b.hi), stride)
        return WidthVal(max(a.lo, b.lo), max(a.hi, b.hi), stride)
    # Signed selection still returns one of its operands per lane, so
    # the unsigned hull of both operands bounds the result.
    hull = join(a, b)
    return WidthVal(hull.lo, hull.hi, stride)


def _div(a: WidthVal, b: WidthVal) -> WidthVal:
    stride = _uniform_stride([a, b])
    if a.hi <= _SIGNED_MAX and b.hi <= _SIGNED_MAX and b.lo >= 1:
        return WidthVal(a.lo // b.hi, a.hi // b.lo, stride)
    return WidthVal(0, _M32, stride)  # covers divide-by-zero's all-ones


def _rem(a: WidthVal, b: WidthVal) -> WidthVal:
    stride = _uniform_stride([a, b])
    if a.hi <= _SIGNED_MAX and b.hi <= _SIGNED_MAX and b.lo >= 1:
        return WidthVal(0, min(a.hi, b.hi - 1), stride)
    return WidthVal(0, _M32, stride)


def transfer(
    inst: Instruction, state: list[WidthVal], warp_size: int
) -> WidthVal:
    """Abstract value written by one instruction (ignoring masking)."""
    vals = [_operand_width(s, state, warp_size) for s in inst.srcs]
    if any(v.is_bottom for v in vals):
        return BOTTOM  # unreachable operands: the site never executes
    op = inst.opcode
    if op is Opcode.MOV or op is Opcode.DECOMPRESS_MOV:
        return vals[0]
    if op is Opcode.IADD:
        return _add(vals[0], vals[1])
    if op is Opcode.ISUB:
        return _sub(vals[0], vals[1])
    if op is Opcode.IMUL:
        return _mul(vals[0], vals[1])
    if op is Opcode.IMAD:
        return _add(_mul(vals[0], vals[1]), vals[2])
    if op is Opcode.SHL:
        return _shl(vals[0], vals[1])
    if op is Opcode.SHR:
        return _shr(vals[0], vals[1])
    if op is Opcode.AND:
        return WidthVal(0, min(vals[0].hi, vals[1].hi), _uniform_stride(vals))
    if op in (Opcode.OR, Opcode.XOR):
        bits = max(vals[0].hi.bit_length(), vals[1].hi.bit_length())
        return WidthVal(0, (1 << bits) - 1, _uniform_stride(vals))
    if op is Opcode.NOT:
        stride = (
            (-vals[0].stride) % _MOD if vals[0].stride is not None else None
        )
        return WidthVal(_M32 - vals[0].hi, _M32 - vals[0].lo, stride)
    if op in (Opcode.SETEQ, Opcode.SETNE):
        return _compare_bitwise(vals[0], vals[1], op)
    if op in (Opcode.SETLT, Opcode.SETLE, Opcode.SETGT, Opcode.SETGE):
        return _compare_signed(vals[0], vals[1], op)
    if op is Opcode.SELP:
        return _selp(vals[0], vals[1], vals[2])
    if op in (Opcode.IMIN, Opcode.IMAX):
        return _min_max(vals[0], vals[1], op)
    if op is Opcode.IDIV:
        return _div(vals[0], vals[1])
    if op is Opcode.IREM:
        return _rem(vals[0], vals[1])
    if op is Opcode.FABS:
        # Bitwise clear of the sign bit: an AND with 0x7FFFFFFF.
        return WidthVal(0, min(vals[0].hi, _SIGNED_MAX), _uniform_stride(vals))
    if is_load(op):
        # Unknown data; a warp-uniform address is a broadcast load.
        return WidthVal(0, _M32, 0 if vals[0].stride == 0 else None)
    # Float arithmetic, SFU, conversions, FNEG bit flips: unbounded
    # patterns, but still deterministic per lane.
    return WidthVal(0, _M32, _uniform_stride(vals))


# ----------------------------------------------------------------------
# Fixpoint and claim derivation.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WidthResult:
    """Machine-readable output of the width analysis for one kernel.

    ``site_claims`` maps each write site ``(block_id, inst_index)`` to
    the guaranteed dynamic ``enc`` (including uniformity claims);
    ``site_zero_bytes`` keeps only the zero-prefix part (what survives
    masked merges); ``register_enc[r]`` is the storage prefix the
    statically-compressed register file allocates for register ``r``
    (the minimum zero-byte claim over its reachable write sites; 4 — a
    zero-width, known-zero register — when it is never written).
    """

    kernel_name: str
    warp_size: int
    site_claims: dict[tuple[int, int], int]
    site_zero_bytes: dict[tuple[int, int], int]
    register_enc: tuple[int, ...]

    def claim_at(self, block_id: int, inst_index: int) -> int | None:
        return self.site_claims.get((block_id, inst_index))

    @property
    def narrow_registers(self) -> tuple[int, ...]:
        """Registers the static RF stores with a nonzero prefix."""
        return tuple(
            index for index, enc in enumerate(self.register_enc) if enc > 0
        )

    def counts(self) -> dict[str, int]:
        claims = self.site_claims.values()
        return {
            "write_sites": len(self.site_claims),
            "claiming_sites": sum(1 for c in claims if c >= 1),
            "uniform_sites": sum(1 for c in claims if c == 4),
            "narrow_registers": len(self.narrow_registers),
            "registers": len(self.register_enc),
        }


def analyze_widths(kernel: Kernel, warp_size: int = 32) -> WidthResult:
    """Run the width abstract interpretation over one kernel."""
    preds = kernel.predecessors()
    divergent_blocks = analyze_uniformity(kernel).control_divergent_blocks
    num_registers = kernel.num_registers
    entry_block = kernel.blocks[0].block_id
    bottom = [BOTTOM] * num_registers
    zero_entry = [ZERO] * num_registers

    entry_state: dict[int, list[WidthVal]] = {
        b.block_id: list(bottom) for b in kernel.blocks
    }
    out_state: dict[int, list[WidthVal]] = {
        b.block_id: list(bottom) for b in kernel.blocks
    }

    def block_out(block, state: list[WidthVal]) -> list[WidthVal]:
        masked = block.block_id in divergent_blocks
        for inst in block.instructions:
            if inst.dst is None:
                continue
            value = transfer(inst, state, warp_size)
            index = inst.dst.index
            state[index] = (
                join_masked(state[index], value) if masked else value
            )
        return state

    changed = True
    while changed:
        changed = False
        for block in kernel.blocks:
            block_id = block.block_id
            merged = list(zero_entry) if block_id == entry_block else list(bottom)
            for pred in preds[block_id]:
                pred_out = out_state[pred]
                merged = [join(a, b) for a, b in zip(merged, pred_out)]
            # Widen against the previous entry state so the interval
            # bounds move monotonically through a finite chain.
            widened = [
                widen(old, new)
                for old, new in zip(entry_state[block_id], merged)
            ]
            if widened != entry_state[block_id]:
                entry_state[block_id] = widened
                changed = True
            state = block_out(block, list(widened))
            if state != out_state[block_id]:
                out_state[block_id] = state
                changed = True

    site_claims: dict[tuple[int, int], int] = {}
    site_zero_bytes: dict[tuple[int, int], int] = {}
    register_min: dict[int, int] = {}
    for block in kernel.blocks:
        state = list(entry_state[block.block_id])
        masked = block.block_id in divergent_blocks
        reachable = not all(v.is_bottom for v in state)
        for index, inst in enumerate(block.instructions):
            if inst.dst is None:
                continue
            value = transfer(inst, state, warp_size)
            site = (block.block_id, index)
            site_claims[site] = value.claimed_enc()
            site_zero_bytes[site] = (
                4 if value.is_bottom else value.zero_bytes()
            )
            if reachable:
                register = inst.dst.index
                register_min[register] = min(
                    register_min.get(register, 4), site_zero_bytes[site]
                )
            state[inst.dst.index] = (
                join_masked(state[inst.dst.index], value) if masked else value
            )

    register_enc = tuple(
        register_min.get(register, 4) for register in range(num_registers)
    )
    return WidthResult(
        kernel_name=kernel.name,
        warp_size=warp_size,
        site_claims=site_claims,
        site_zero_bytes=site_zero_bytes,
        register_enc=register_enc,
    )


class WidthAnalysisPass(LintPass):
    """Reports compressibility: GS-I204 summary plus GS-W104 per register.

    GS-W104 fires for every register the analysis proves narrower than
    the full 4-byte vector register it occupies — each one is a
    candidate for compile-time narrow allocation (the ``static_compress``
    architecture stores exactly these registers compressed).
    """

    name = "width-analysis"

    def __init__(self, warp_size: int = 32):
        self.warp_size = warp_size

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        result = analyze_widths(ctx.kernel, warp_size=self.warp_size)
        counts = result.counts()
        found = [
            Diagnostic(
                rule="GS-I204",
                kernel=ctx.kernel.name,
                message=(
                    f"width analysis: {counts['narrow_registers']}/"
                    f"{counts['registers']} registers provably narrow, "
                    f"{counts['claiming_sites']}/{counts['write_sites']} "
                    f"write sites guarantee enc>=1, "
                    f"{counts['uniform_sites']} sites provably uniform"
                ),
            )
        ]
        for register in result.narrow_registers:
            enc = result.register_enc[register]
            found.append(
                Diagnostic(
                    rule="GS-W104",
                    kernel=ctx.kernel.name,
                    message=(
                        f"r{register} provably fits {4 - enc} byte(s) "
                        f"({enc} guaranteed-zero prefix bytes) but "
                        "occupies a full 4-byte vector register"
                    ),
                )
            )
        return found
