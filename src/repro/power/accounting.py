"""Walk a processed trace + timing result and produce a power report.

One :class:`PowerAccountant` pairs an architecture with energy
parameters; :meth:`account` consumes the per-event execution decisions
(lanes active, register-file access shapes, compressor activity) and
the timing result (cycles, memory traffic) and emits a
:class:`~repro.power.report.PowerReport`.

Two accounting engines share one evaluator.  Every energy component is
linear in integer counts (exec-lane sums per opcode, access counts per
energy-distinct shape, compressor/decompressor/instruction totals), so
both :meth:`account` (the per-event reference walk) and
:meth:`account_columns` (the vectorized columnar walk) first reduce
their input to the same :class:`_PowerAggregates` and then evaluate it
with the same float arithmetic in the same (sorted-key) order — two
engines fed bit-identical processed streams produce bit-identical
reports by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa.opcodes import OpCategory, category_of
from repro.obs.instrument import (
    record_power_breakdown,
    record_rf_accesses,
    record_rf_accesses_columns,
)
from repro.obs.telemetry import get_telemetry
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.report import EnergyBreakdown, PowerReport
from repro.power.rf_energy import RegisterFileEnergyModel, TallyKey
from repro.regfile.access import ID_TO_ACCESS_KIND
from repro.regfile.layout import BankGeometry
from repro.scalar.architectures import ProcessedEvent
from repro.scalar.columns import PARTIAL_WRITE_ID, ProcessedColumns
from repro.simt.trace import ID_TO_OPCODE, OPCODE_TO_ID
from repro.timing.sm import TimingResult


@dataclass
class _PowerAggregates:
    """Integer reduction of one processed stream (engine-independent).

    Everything the dynamic-energy report depends on, as exact integer
    counts: identical aggregates guarantee identical float output.
    """

    instructions: int = 0
    extra_instructions: int = 0
    extra_exec_lanes: int = 0  # sum of extra_instructions * active lanes
    compressor_ops: int = 0
    decompressor_ops: int = 0
    #: opcode id -> summed exec lanes (key present for every opcode
    #: that appears in the stream, even at zero lanes).
    exec_lanes_by_opcode: dict[int, int] = field(default_factory=dict)
    #: energy-distinct access shape -> count.
    access_tally: dict[TallyKey, int] = field(default_factory=dict)

    def merge(self, other: "_PowerAggregates") -> None:
        """Fold another aggregate set into this one (exact: all counts
        are integers and the evaluator iterates sorted keys, so merged
        per-chunk aggregates reproduce whole-trace reports bit-for-bit).
        """
        self.instructions += other.instructions
        self.extra_instructions += other.extra_instructions
        self.extra_exec_lanes += other.extra_exec_lanes
        self.compressor_ops += other.compressor_ops
        self.decompressor_ops += other.decompressor_ops
        for opcode_id, lanes in other.exec_lanes_by_opcode.items():
            self.exec_lanes_by_opcode[opcode_id] = (
                self.exec_lanes_by_opcode.get(opcode_id, 0) + lanes
            )
        for key, count in other.access_tally.items():
            self.access_tally[key] = self.access_tally.get(key, 0) + count


class PowerAccountant:
    """Energy accounting for one architecture."""

    def __init__(
        self,
        arch: ArchitectureConfig,
        params: EnergyParams | None = None,
        config: GpuConfig | None = None,
        geometry: BankGeometry | None = None,
    ):
        self.arch = arch
        self.params = params or DEFAULT_ENERGY
        self.config = config or GpuConfig()
        if geometry is None and self.config.warp_size != 32:
            # Wider warps widen the bank: one 128-bit array per byte
            # position per 16 lanes, as in §3.2's memory-compiler result.
            geometry = BankGeometry(
                warp_size=self.config.warp_size,
                arrays_per_bank=self.config.warp_size // 4,
                array_bits=128,
            )
        self._rf_model = RegisterFileEnergyModel(arch, self.params, geometry)

    # ------------------------------------------------------------------
    def account(
        self,
        processed: list[list[ProcessedEvent]],
        timing: TimingResult,
    ) -> PowerReport:
        """Produce the power report for one benchmark run (per-event)."""
        telemetry = get_telemetry()
        observe = telemetry.enabled
        num_banks = self.config.register_file_banks
        rf_model = self._rf_model

        agg = _PowerAggregates()
        lanes_by_opcode = agg.exec_lanes_by_opcode
        tally = agg.access_tally
        for warp_index, warp_events in enumerate(processed):
            for item in warp_events:
                if observe:
                    record_rf_accesses(
                        telemetry, item.rf_accesses, warp_index, num_banks
                    )
                event = item.classified.event
                opcode_id = OPCODE_TO_ID[event.opcode]
                lanes_by_opcode[opcode_id] = (
                    lanes_by_opcode.get(opcode_id, 0) + item.exec_lanes
                )
                for access in item.rf_accesses:
                    key = rf_model.tally_key(access)
                    tally[key] = tally.get(key, 0) + 1
                agg.instructions += 1
                agg.extra_instructions += item.extra_instructions
                agg.extra_exec_lanes += (
                    item.extra_instructions * event.active_lane_count()
                )
                agg.compressor_ops += item.compressor_ops
                agg.decompressor_ops += item.decompressor_ops

        return self._report_from_aggregates(agg, timing, telemetry)

    # ------------------------------------------------------------------
    def account_columns(
        self,
        columns: ProcessedColumns,
        timing: TimingResult,
    ) -> PowerReport:
        """Produce the power report from a columnar processed trace.

        Builds the same :class:`_PowerAggregates` as :meth:`account`
        with array reductions, then shares its evaluator — the output
        is bit-identical to the per-event engine for the same stream.
        """
        return self.account_aggregates(
            self.aggregates_from_columns(columns), timing
        )

    # ------------------------------------------------------------------
    def account_aggregates(
        self,
        agg: _PowerAggregates,
        timing: TimingResult,
    ) -> PowerReport:
        """Evaluate pre-built aggregates (the chunk-streaming entry).

        The streaming pipeline builds one :class:`_PowerAggregates` per
        chunk with :meth:`aggregates_from_columns` and folds them with
        :meth:`_PowerAggregates.merge`; this evaluates the merged total
        exactly as :meth:`account_columns` would for the whole trace.
        """
        return self._report_from_aggregates(agg, timing, get_telemetry())

    # ------------------------------------------------------------------
    def aggregates_from_columns(
        self, columns: ProcessedColumns, warp_base: int = 0
    ) -> _PowerAggregates:
        """Reduce one columnar processed stream (or chunk) to aggregates.

        Also rolls the stream's register-file access shapes into the
        active telemetry registry — those counters are additive, so
        per-chunk calls sum to the whole-trace totals.  ``warp_base``
        (the global index of the stream's first warp) keeps chunked
        bank-attribution telemetry identical to the whole-trace pass.
        """
        telemetry = get_telemetry()
        if telemetry.enabled:
            record_rf_accesses_columns(
                telemetry,
                columns,
                {k: v.value for k, v in ID_TO_ACCESS_KIND.items()},
                self.config.register_file_banks,
                warp_base=warp_base,
            )

        agg = _PowerAggregates()
        agg.instructions = columns.num_events
        extra = columns.extra_instructions.astype(np.int64)
        agg.extra_instructions = int(extra.sum())
        agg.extra_exec_lanes = int(
            (extra * columns.active_lanes.astype(np.int64)).sum()
        )
        agg.compressor_ops = int(columns.compressor_ops.sum(dtype=np.int64))
        agg.decompressor_ops = int(columns.decompressor_ops.sum(dtype=np.int64))

        # Exec lanes per opcode: key set = opcodes that appear at all.
        if columns.num_events:
            lane_sums = np.zeros(len(ID_TO_OPCODE), dtype=np.int64)
            np.add.at(lane_sums, columns.opcode_ids, columns.exec_lanes)
            present = np.unique(columns.opcode_ids)
            agg.exec_lanes_by_opcode = {
                int(opcode_id): int(lane_sums[opcode_id])
                for opcode_id in present
            }

        # Access tally: pack each row's energy-distinct fields into one
        # int64 and count distinct packed values.  Partial writes carry
        # (popcount, arrays-activated) instead of encodings; under the
        # baseline layout, arrays depend on the full mask, so those are
        # resolved per distinct mask through the model's memo.
        kind_ids = columns.acc_kind_ids
        if kind_ids.size:
            rf_model = self._rf_model
            partial = kind_ids == PARTIAL_WRITE_ID
            enc = np.where(partial, 0, columns.acc_enc).astype(np.int64)
            enc_lo = np.where(partial, 0, columns.acc_enc_lo).astype(np.int64)
            enc_hi = np.where(partial, 0, columns.acc_enc_hi).astype(np.int64)
            half = np.where(partial, False, columns.acc_half)
            sidecar = columns.acc_sidecar

            popcount = np.zeros(len(kind_ids), dtype=np.int64)
            arrays = np.zeros(len(kind_ids), dtype=np.int64)
            partial_idx = np.flatnonzero(partial)
            if len(partial_idx):
                partial_masks = columns.acc_masks[partial_idx]
                distinct_masks, inverse = np.unique(
                    partial_masks, return_inverse=True
                )
                mask_pop = np.empty(len(distinct_masks), dtype=np.int64)
                mask_arrays = np.empty(len(distinct_masks), dtype=np.int64)
                for position, mask in enumerate(distinct_masks.tolist()):
                    mask_pop[position] = int(mask).bit_count()
                    mask_arrays[position] = rf_model.partial_arrays(int(mask))
                popcount[partial_idx] = mask_pop[inverse]
                arrays[partial_idx] = mask_arrays[inverse]

            packed = (
                (kind_ids.astype(np.int64) << 26)
                | (enc << 23)
                | (enc_lo << 20)
                | (enc_hi << 17)
                | (half.astype(np.int64) << 16)
                | (sidecar.astype(np.int64) << 15)
                | (popcount << 8)
                | arrays
            )
            distinct, counts = np.unique(packed, return_counts=True)
            tally = agg.access_tally
            for value, count in zip(distinct.tolist(), counts.tolist()):
                key: TallyKey = (
                    (value >> 26) & 0xF,
                    (value >> 23) & 0x7,
                    (value >> 20) & 0x7,
                    (value >> 17) & 0x7,
                    bool((value >> 16) & 1),
                    bool((value >> 15) & 1),
                    (value >> 8) & 0x7F,
                    value & 0xFF,
                )
                tally[key] = count

        return agg

    # ------------------------------------------------------------------
    def _report_from_aggregates(
        self,
        agg: _PowerAggregates,
        timing: TimingResult,
        telemetry,
    ) -> PowerReport:
        """Shared aggregate -> report evaluation (both engines)."""
        params = self.params
        breakdown = EnergyBreakdown()

        for opcode_id in sorted(agg.exec_lanes_by_opcode):
            opcode = ID_TO_OPCODE[opcode_id]
            exec_pj = agg.exec_lanes_by_opcode[opcode_id] * params.exec_lane_pj(
                opcode
            )
            category = category_of(opcode)
            if category is OpCategory.SFU:
                breakdown.exec_sfu_pj += exec_pj
            elif category is OpCategory.MEM:
                breakdown.exec_mem_pj += exec_pj
            else:
                breakdown.exec_alu_pj += exec_pj

        rf_energy = self._rf_model.tally_energy(agg.access_tally)
        breakdown.rf_pj += rf_energy.rf_pj
        breakdown.crossbar_pj += rf_energy.crossbar_pj

        breakdown.compression_pj += (
            agg.compressor_ops * params.compressor_op_pj
            + agg.decompressor_ops * params.decompressor_op_pj
        )

        # Front-end energy for every instruction plus any inserted
        # decompress-move/spill instructions.
        breakdown.fds_pj += (agg.instructions + agg.extra_instructions) * (
            params.fds_per_instruction_pj
        )
        # Inserted moves also execute (full-width register move).
        breakdown.exec_alu_pj += agg.extra_exec_lanes * params.alu_lane_pj

        counts = timing.memory_counts
        breakdown.memory_pj += counts.l1_accesses * params.l1_access_pj
        breakdown.memory_pj += counts.l2_accesses * params.l2_access_pj
        breakdown.memory_pj += counts.dram_accesses * params.dram_access_pj
        breakdown.memory_pj += counts.shared_accesses * params.shared_access_pj

        if telemetry.enabled:
            record_power_breakdown(telemetry, self.arch.name, breakdown)

        static_w = params.sm_static_w + params.uncore_share_static_w
        return PowerReport(
            arch_name=self.arch.name,
            cycles=timing.cycles,
            instructions=timing.useful_instructions,
            frequency_ghz=self.config.sm_frequency_ghz,
            static_w=static_w,
            breakdown=breakdown,
        )
