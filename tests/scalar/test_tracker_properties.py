"""Property-based tests of the tracker's sidecar state machine.

Feed random (but well-formed) write/read event streams through the
tracker and check the invariants the hardware guarantees:

* enc soundness: after a non-divergent write, the stored prefix really
  is common to all lanes, and the base is lane 0's value;
* divergent writes always set D and store the writer's mask in the BVR;
* a divergent-scalar verdict implies the active lanes truly hold one
  value;
* decompress-moves are requested exactly when a divergent write hits a
  compressed (D=0, enc>0) register.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.gscalar import common_prefix_bytes
from repro.isa.opcodes import Opcode
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import RegisterStateTracker
from repro.simt.grid import int_to_mask
from repro.simt.trace import TraceEvent

WARP = 32
FULL = (1 << WARP) - 1
NUM_REGISTERS = 6


@st.composite
def event_streams(draw):
    """A list of write events over a small register set."""
    length = draw(st.integers(min_value=1, max_value=25))
    events = []
    # Lane values: mix scalar-ish and varying patterns.
    for _ in range(length):
        dst = draw(st.integers(min_value=0, max_value=NUM_REGISTERS - 1))
        src = draw(st.integers(min_value=0, max_value=NUM_REGISTERS - 1))
        mask = draw(
            st.sampled_from(
                [FULL, 0x55555555, 0x0000FFFF, 0xFFFF0000, 0x000000FF, 0x3]
            )
        )
        pattern = draw(st.sampled_from(["scalar", "affine", "random", "prefix"]))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        if pattern == "scalar":
            values = np.full(WARP, int(rng.integers(0, 2**32)), dtype=np.uint64)
        elif pattern == "affine":
            values = np.uint64(int(rng.integers(0, 2**24))) + 4 * np.arange(
                WARP, dtype=np.uint64
            )
        elif pattern == "prefix":
            values = np.uint64(int(rng.integers(0, 2**24)) << 8) + rng.integers(
                0, 256, size=WARP, dtype=np.uint64
            )
        else:
            values = rng.integers(0, 2**32, size=WARP, dtype=np.uint64)
        events.append(
            TraceEvent(
                opcode=Opcode.IADD,
                dst=dst,
                src_regs=(src, src),
                active_mask=mask,
                block_id=0,
                dst_values=(values & 0xFFFFFFFF).astype(np.uint32),
            )
        )
    return events


@settings(max_examples=150, deadline=None)
@given(stream=event_streams())
def test_enc_soundness_after_every_write(stream):
    tracker = RegisterStateTracker(NUM_REGISTERS, WARP)
    for event in stream:
        item = tracker.classify(event)
        state = tracker.state_of(event.dst)
        values = event.dst_values
        if event.active_mask == FULL:
            assert not state.divergent
            assert state.enc == common_prefix_bytes(values)
            assert state.base == int(values[0])
            # Half encodings are at least as fine as the full prefix.
            assert state.enc_lo >= state.enc
            assert state.enc_hi >= state.enc
        else:
            assert state.divergent
            assert state.base == event.active_mask  # BVR holds the mask
            mask = int_to_mask(event.active_mask, WARP)
            assert state.enc == common_prefix_bytes(values, mask)


@settings(max_examples=150, deadline=None)
@given(stream=event_streams())
def test_divergent_scalar_verdicts_are_true(stream):
    """If the tracker calls an instruction divergent-scalar, its source
    registers really hold one value across the active lanes."""
    tracker = RegisterStateTracker(NUM_REGISTERS, WARP)
    last_values: dict[int, np.ndarray] = {}
    for event in stream:
        item = tracker.classify(event)
        if item.scalar_class is ScalarClass.DIVERGENT_SCALAR:
            mask = int_to_mask(event.active_mask, WARP)
            for register in event.src_regs:
                if register in last_values:
                    active = last_values[register][mask]
                    assert np.all(active == active[0])
        if event.dst is not None:
            merged = last_values.get(event.dst, np.zeros(WARP, dtype=np.uint32))
            mask = int_to_mask(event.active_mask, WARP)
            merged = np.where(mask, event.dst_values, merged)
            last_values[event.dst] = merged


@settings(max_examples=150, deadline=None)
@given(stream=event_streams())
def test_decompress_move_iff_compressed_destination(stream):
    tracker = RegisterStateTracker(NUM_REGISTERS, WARP)
    for event in stream:
        before = tracker.state_of(event.dst)
        item = tracker.classify(event)
        divergent = event.active_mask != FULL
        expected = divergent and not before.divergent and before.enc > 0
        assert item.needs_decompress_move == expected


@settings(max_examples=100, deadline=None)
@given(stream=event_streams())
def test_full_scalar_flag_consistency(stream):
    tracker = RegisterStateTracker(NUM_REGISTERS, WARP)
    for event in stream:
        tracker.classify(event)
        state = tracker.state_of(event.dst)
        if not state.divergent and state.full_scalar:
            assert state.enc == 4
            assert state.enc_lo == 4 and state.enc_hi == 4
            assert state.base_lo == state.base_hi
