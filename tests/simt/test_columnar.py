"""Tests for the columnar trace form and the v3 on-disk format.

Covers the lossless ``to_columnar``/``from_columnar`` round trip, the
columnar ``.npz`` archive (version gate, fingerprint gate, corruption),
and the experiment runner's transparent recovery: a cache entry written
by an older format version is silently re-executed, never
re-interpreted.
"""

import json

import numpy as np
import pytest

from repro.errors import TraceError
from repro.simt import LaunchConfig, MemoryImage, run_kernel
from repro.simt.serialize import (
    _ARRAY_FIELDS,
    _FORMAT_VERSION,
    load_columnar,
    load_trace,
    save_columnar,
    save_trace,
)
from repro.simt.trace import ColumnarTrace, KernelTrace

from tests.conftest import run_one_warp
from tests.simt.test_serialize import assert_traces_equal


def _multi_warp_trace(kernel, memory=None):
    memory = memory or MemoryImage()
    return run_kernel(kernel, LaunchConfig(grid_dim=2, cta_dim=64), memory)


class TestColumnarRoundTrip:
    def test_divergent_multi_warp(self, divergent_kernel):
        trace = _multi_warp_trace(divergent_kernel)
        assert_traces_equal(trace, KernelTrace.from_columnar(trace.to_columnar()))

    def test_memory_trace_keeps_addresses(self, saxpy_kernel, simple_memory):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        columnar = trace.to_columnar()
        assert columnar.addresses.shape[1] == trace.warp_size
        assert np.any(columnar.addr_index >= 0)
        assert_traces_equal(trace, columnar.to_trace())

    def test_empty_trace(self):
        trace = KernelTrace(kernel_name="empty", warp_size=32)
        columnar = trace.to_columnar()
        assert columnar.num_events == 0
        assert columnar.values.shape == (0, 32)
        assert columnar.to_trace().total_instructions == 0

    def test_counts_and_slices(self, loop_kernel):
        trace = _multi_warp_trace(loop_kernel)
        columnar = trace.to_columnar()
        assert columnar.total_instructions == trace.total_instructions
        assert columnar.num_warps == len(trace.warps)
        slices = columnar.warp_slices()
        for (warp_id, segment), warp in zip(slices, trace.warps):
            assert warp_id == warp.warp_id
            assert segment.stop - segment.start == len(warp)
        assert slices[-1][1].stop == columnar.num_events

    def test_inconsistent_lengths_rejected(self, loop_kernel):
        columnar = run_one_warp(loop_kernel).to_columnar()
        columnar.warp_lengths = columnar.warp_lengths + 1
        with pytest.raises(TraceError, match="warp lengths"):
            columnar.to_trace()


def _rewrite_header(path, **overrides):
    """Rewrite the archive header in place (simulates other versions)."""
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        arrays = {name: archive[name] for name in _ARRAY_FIELDS}
    header.update(overrides)
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **arrays,
    )


class TestColumnarSerialization:
    def test_save_load_columnar(self, divergent_kernel, tmp_path):
        trace = _multi_warp_trace(divergent_kernel)
        columnar = trace.to_columnar()
        path = tmp_path / "trace.npz"
        save_columnar(columnar, path, fingerprint="fp-1")
        loaded = load_columnar(path, expected_fingerprint="fp-1")
        assert isinstance(loaded, ColumnarTrace)
        assert loaded.kernel_name == columnar.kernel_name
        assert loaded.warp_size == columnar.warp_size
        for name in _ARRAY_FIELDS:
            assert np.array_equal(
                getattr(loaded, name), getattr(columnar, name)
            ), name
        assert_traces_equal(trace, loaded.to_trace())

    def test_save_trace_load_trace_symmetry(self, saxpy_kernel, simple_memory, tmp_path):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))

    def test_stale_fingerprint_rejected(self, loop_kernel, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(run_one_warp(loop_kernel), path, fingerprint="fp-old")
        with pytest.raises(TraceError, match="stale trace cache"):
            load_columnar(path, expected_fingerprint="fp-new")
        # Without an expectation the fingerprint is not checked.
        load_columnar(path)

    def test_legacy_version_rejected(self, loop_kernel, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(run_one_warp(loop_kernel), path)
        _rewrite_header(path, version=_FORMAT_VERSION - 1)
        with pytest.raises(TraceError, match="unsupported trace format"):
            load_columnar(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "trace.npz"
        path.write_bytes(b"not an npz archive at all")
        with pytest.raises(TraceError, match="corrupt or unreadable"):
            load_columnar(path)

    def test_truncated_arrays_rejected(self, loop_kernel, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(run_one_warp(loop_kernel), path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in _ARRAY_FIELDS}
            header = archive["header"]
        arrays["warp_lengths"] = arrays["warp_lengths"] + 5
        np.savez_compressed(path, header=header, **arrays)
        with pytest.raises(TraceError, match="corrupt trace file"):
            load_columnar(path)


class TestRunnerCacheRecovery:
    def test_stale_format_version_reexecuted(self, tmp_path):
        """A cache entry from an older format version is transparently
        re-executed and overwritten, with identical downstream results."""
        from repro.experiments.runner import ExperimentRunner
        from repro.scalar.tracker import trace_statistics

        cold = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        baseline_stats = trace_statistics(cold.run("BP").classified)
        assert cold.stats.counters["trace_executions"] == 1

        manifests = [
            path
            for path in tmp_path.glob("*.v5.json")
            if "_ccols" not in path.name and "_pcols" not in path.name
        ]
        assert len(manifests) == 1
        doc = json.loads(manifests[0].read_text())
        doc["meta"]["format_version"] = _FORMAT_VERSION - 1
        manifests[0].write_text(json.dumps(doc))
        for sidecar in tmp_path.glob("*.pkl"):
            sidecar.unlink()

        recovered = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        stats = trace_statistics(recovered.run("BP").classified)
        counters = recovered.stats.counters
        assert counters["trace_cache_invalid"] == 1
        assert counters["trace_executions"] == 1
        assert stats == baseline_stats

        # The overwritten entry is a clean v5 entry: a third runner hits.
        warm = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        assert trace_statistics(warm.run("BP").classified) == baseline_stats
        assert warm.stats.counters["trace_cache_hits"] == 1
        assert warm.stats.counters.get("trace_executions", 0) == 0

    def test_event_classifier_does_not_reuse_batch_sidecar(self, tmp_path):
        """The classified sidecar is keyed on the engine name, so a
        ``--classifier=event`` differential run never replays the batch
        engine's cached stream (or vice versa)."""
        from repro.experiments.runner import ExperimentRunner
        from repro.scalar.tracker import trace_statistics

        batch_runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        batch_stats = trace_statistics(batch_runner.run("BP").classified)

        event_runner = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, classifier="event"
        )
        event_stats = trace_statistics(event_runner.run("BP").classified)
        counters = event_runner.stats.counters
        assert counters["trace_cache_hits"] == 1
        assert counters.get("classified_cache_hits", 0) == 0
        assert event_stats == batch_stats
