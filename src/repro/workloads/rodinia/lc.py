"""``leukocyte`` (LC) proxy.

Signature reproduced (§5.4): the benchmark most sensitive to G-Scalar's
+3-cycle pipeline stretch — it launches too few warps to hide latency
(a single small CTA here) and leans on long-latency integer division in
its inner loop, so every extra cycle of dependency latency shows up in
IPC.  Moderate scalar population from shared cell-detection constants;
moderate divergence from the gradient-threshold branch.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 505

#: LC deliberately under-occupies the SM: 4 warps regardless of scale.
_LOW_OCCUPANCY_CTA = 128


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the LC proxy (low occupancy by design)."""
    iterations = 4 * scale.inner_iterations
    b = KernelBuilder("leukocyte")
    tid = b.tid()
    radius = load_broadcast(b, PARAMS_BASE)  # scalar detector constants
    divisor = load_broadcast(b, PARAMS_BASE + 4)
    sample = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    flag = load_thread_flag(b, tid)
    in_cell = b.setne(flag, 0)
    gradient = b.mov(0)

    with b.for_range(0, iterations) as step:
        # Long-latency integer division in the dependent chain: the
        # matrix solve LC spends its time in.
        quotient = b.idiv(sample, divisor)  # IDIV: 120-cycle class
        remainder = b.irem(sample, divisor)
        gradient = b.iadd(gradient, quotient, dst=gradient)
        scaled_radius = b.imul(radius, 5)  # ALU scalar
        window = b.iadd(scaled_radius, 3)  # ALU scalar
        with b.if_(in_cell):
            # Divergent path: the window-refinement chain is scalar with
            # respect to the mask (divergent-scalar instructions).
            half_window = b.shr(window, 1)
            margin = b.iadd(half_window, radius)
            trimmed = b.imin(margin, window)
            gradient = b.iadd(gradient, trimmed, dst=gradient)
        sample = b.iadd(sample, remainder, dst=sample)
        sample = b.imax(sample, b.mov(1), dst=sample)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), gradient)
    kernel = b.finish()

    total_threads = _LOW_OCCUPANCY_CTA
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.small_ints(total_threads, 4096, _SEED) + 64
    )
    memory.bind_array(PARAMS_BASE, np.array([10, 7], dtype=np.uint32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.7, _SEED + 1),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=1, cta_dim=_LOW_OCCUPANCY_CTA),
        memory=memory,
        description="low-occupancy cell detection with long-latency integer DIV",
    )
