"""``mri-q`` (MQ) proxy.

Signature reproduced: one of the non-divergent benchmarks the paper
calls out (§5.1).  The Q computation sweeps k-space samples; each
iteration loads the sample's kx/ky/w through broadcast addresses
(MEM-scalar), folds them into a scalar magnitude (ALU-scalar +
SFU-scalar), and evaluates the per-thread phase with vector sin/cos.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    OUTPUT_B,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1010

#: k-space sample table (kx, ky, w triples, struct-of-arrays).
_KSPACE = INPUT_B


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the MQ proxy at the given scale."""
    samples = 2 * scale.inner_iterations
    b = KernelBuilder("mri_q")
    tid = b.tid()
    x = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    q_real = b.mov(b.fimm(0.0))
    q_imag = b.mov(b.fimm(0.0))

    with b.for_range(0, samples) as sample:
        k_addr = b.imad(sample, 12, _KSPACE)  # scalar address math
        kx = b.ld_global(k_addr)  # MEM scalar
        ky = b.ld_global(b.iadd(k_addr, 4))  # MEM scalar
        w = b.ld_global(b.iadd(k_addr, 8))  # MEM scalar
        k_mag = b.fadd(b.fmul(kx, kx), b.fmul(ky, ky))  # ALU scalar
        w_mag = b.fmul(w, b.sqrt(k_mag))  # SFU scalar + ALU scalar
        phase = b.fmul(kx, x)  # vector
        c = b.cos(phase)  # vector SFU
        s = b.sin(phase)  # vector SFU
        q_real = b.ffma(w_mag, c, q_real, dst=q_real)  # vector
        q_imag = b.ffma(w_mag, s, q_imag, dst=q_imag)  # vector

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), q_real)
    b.st_global(thread_element_addr(b, tid, OUTPUT_B), q_imag)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads, 0.3, 0.2, _SEED)
    )
    memory.bind_array(
        _KSPACE, datagen.narrow_floats(3 * samples + 3, 0.8, 0.3, _SEED + 1)
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="k-space Q sweep: broadcast sample loads + vector sin/cos",
    )
