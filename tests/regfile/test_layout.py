"""Unit tests for bank layouts and arrays-activated arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.regfile.layout import (
    SIDECAR_ENERGY_FRACTION,
    BankGeometry,
    BaselineLayout,
    ByteRotatedLayout,
)


class TestGeometry:
    def test_default_matches_memory_compiler_result(self):
        geometry = BankGeometry()
        assert geometry.arrays_per_bank == 8
        assert geometry.array_bits == 128
        assert geometry.lanes_per_array == 16
        assert geometry.arrays_per_byte_position == 2
        assert geometry.lanes_per_word_array == 4

    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(ConfigError):
            BankGeometry(warp_size=32, arrays_per_bank=4, array_bits=128)

    def test_sidecar_fraction_is_papers(self):
        assert SIDECAR_ENERGY_FRACTION == 0.052


class TestByteRotated:
    def test_full_access(self):
        assert ByteRotatedLayout().arrays_for_full_access() == 8

    @pytest.mark.parametrize("enc,arrays", [(0, 8), (1, 6), (2, 4), (3, 2), (4, 0)])
    def test_compressed_access(self, enc, arrays):
        assert ByteRotatedLayout().arrays_for_compressed_access(enc) == arrays

    def test_half_compressed_access(self):
        layout = ByteRotatedLayout()
        # Paper example: encl=1100 (2 bytes), ench=1111 (scalar).
        assert layout.arrays_for_half_compressed_access(2, 4) == 2
        assert layout.arrays_for_half_compressed_access(0, 0) == 8
        assert layout.arrays_for_half_compressed_access(4, 4) == 0

    def test_divergent_write_lights_whole_bank(self):
        assert ByteRotatedLayout().arrays_for_divergent_write() == 8

    def test_data_bytes_moved(self):
        layout = ByteRotatedLayout()
        assert layout.data_bytes_moved(3) == 32
        assert layout.data_bytes_moved(0) == 128

    def test_invalid_enc_rejected(self):
        with pytest.raises(ConfigError):
            ByteRotatedLayout().arrays_for_compressed_access(5)


class TestBaseline:
    def test_full_access(self):
        assert BaselineLayout().arrays_for_full_access() == 8

    def test_partial_write_counts_word_groups(self):
        layout = BaselineLayout()
        # One active lane touches one array.
        assert layout.arrays_for_partial_write(0x1) == 1
        # Lanes 0 and 4 live in different 4-lane word arrays.
        assert layout.arrays_for_partial_write(0x11) == 2
        # All lanes.
        assert layout.arrays_for_partial_write(0xFFFFFFFF) == 8
        # One lane in every group.
        assert layout.arrays_for_partial_write(0x11111111) == 8

    def test_data_bytes_moved(self):
        layout = BaselineLayout()
        assert layout.data_bytes_moved() == 128
        assert layout.data_bytes_moved(0xF) == 16
