"""Unit tests for kernel CFGs and post-dominator analysis."""

import networkx as nx
import pytest

from repro.errors import KernelValidationError
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.kernel import (
    EXIT_NODE,
    BasicBlock,
    Branch,
    Exit,
    Jump,
    Kernel,
    immediate_postdominators,
)
from repro.isa.opcodes import Opcode


def mov(dst, value):
    return Instruction(opcode=Opcode.MOV, dst=Reg(dst), srcs=(Imm(value),))


def diamond_kernel():
    """0 -> (1 | 2) -> 3 -> exit."""
    return Kernel(
        name="diamond",
        blocks=[
            BasicBlock(0, [mov(0, 1)], Branch(cond=Reg(0), taken=1, not_taken=2)),
            BasicBlock(1, [mov(1, 10)], Jump(3)),
            BasicBlock(2, [mov(1, 20)], Jump(3)),
            BasicBlock(3, [mov(2, 30)], Exit()),
        ],
    )


def loop_kernel():
    """0 -> 1(header) -> 2(body) -> 1 ... -> 3 -> exit."""
    return Kernel(
        name="loop",
        blocks=[
            BasicBlock(0, [mov(0, 1)], Jump(1)),
            BasicBlock(1, [], Branch(cond=Reg(0), taken=2, not_taken=3)),
            BasicBlock(2, [mov(1, 5)], Jump(1)),
            BasicBlock(3, [], Exit()),
        ],
    )


class TestValidation:
    def test_block_id_mismatch_rejected(self):
        with pytest.raises(KernelValidationError):
            Kernel(name="bad", blocks=[BasicBlock(1, [], Exit())])

    def test_dangling_target_rejected(self):
        with pytest.raises(KernelValidationError):
            Kernel(name="bad", blocks=[BasicBlock(0, [], Jump(7))])

    def test_unreachable_block_rejected(self):
        with pytest.raises(KernelValidationError):
            Kernel(
                name="bad",
                blocks=[
                    BasicBlock(0, [], Exit()),
                    BasicBlock(1, [], Exit()),
                ],
            )

    def test_no_exit_rejected(self):
        with pytest.raises(KernelValidationError):
            Kernel(
                name="bad",
                blocks=[
                    BasicBlock(0, [], Jump(1)),
                    BasicBlock(1, [], Jump(0)),
                ],
            )

    def test_num_registers_computed(self):
        kernel = diamond_kernel()
        assert kernel.num_registers == 3

    def test_static_instruction_count(self):
        assert diamond_kernel().static_instruction_count() == 4

    def test_predecessors(self):
        preds = diamond_kernel().predecessors()
        assert sorted(preds[3]) == [1, 2]
        assert preds[0] == []
        assert preds[EXIT_NODE] == [3]


class TestPostdominators:
    def test_diamond(self):
        ipdom = immediate_postdominators(diamond_kernel())
        assert ipdom[0] == 3
        assert ipdom[1] == 3
        assert ipdom[2] == 3
        assert ipdom[3] == EXIT_NODE

    def test_loop(self):
        ipdom = immediate_postdominators(loop_kernel())
        assert ipdom[1] == 3  # loop branch reconverges at the exit block
        assert ipdom[2] == 1  # body post-dominated by the header

    def test_nested_diamonds_match_networkx(self):
        # 0 -> (1 | 4); 1 -> (2 | 3) -> 5; 4 -> 5; 5 -> exit
        kernel = Kernel(
            name="nested",
            blocks=[
                BasicBlock(0, [mov(0, 1)], Branch(cond=Reg(0), taken=1, not_taken=4)),
                BasicBlock(1, [], Branch(cond=Reg(0), taken=2, not_taken=3)),
                BasicBlock(2, [], Jump(5)),
                BasicBlock(3, [], Jump(5)),
                BasicBlock(4, [], Jump(5)),
                BasicBlock(5, [], Exit()),
            ],
        )
        ours = immediate_postdominators(kernel)
        reference = _networkx_ipdom(kernel)
        assert ours == reference

    def test_random_structured_cfgs_match_networkx(self):
        from repro.isa import KernelBuilder

        b = KernelBuilder("structured")
        tid = b.tid()
        c1 = b.setlt(tid, 10)
        with b.if_(c1) as br:
            c2 = b.setlt(tid, 5)
            with b.if_(c2):
                b.iadd(tid, 1)
            with br.else_():
                with b.for_range(0, 3):
                    b.iadd(tid, 2)
        kernel = b.finish()
        assert immediate_postdominators(kernel) == _networkx_ipdom(kernel)


def _networkx_ipdom(kernel):
    """Reference implementation via networkx on the reverse CFG."""
    graph = nx.DiGraph()
    for block in kernel.blocks:
        for successor in block.successors():
            graph.add_edge(successor, block.block_id)  # reversed edge
    idom = nx.immediate_dominators(graph, EXIT_NODE)
    return {
        block.block_id: idom[block.block_id]
        for block in kernel.blocks
    }
