"""Unit tests for the §4 scalar-eligibility rules."""

import pytest

from repro.compression.encoding import RegisterEncoding
from repro.isa.opcodes import OpCategory
from repro.scalar.eligibility import (
    ScalarClass,
    SourceRead,
    classify_instruction,
    classify_source_read,
)

FULL_MASK = 0xFFFFFFFF
PARTIAL_MASK = 0x0000FFFF


def scalar_source():
    return classify_source_read(
        RegisterEncoding(enc=4, base=7, enc_lo=4, enc_hi=4, full_scalar=True),
        reader_divergent=False,
        reader_mask=FULL_MASK,
    )


def vector_source():
    return classify_source_read(
        RegisterEncoding(enc=1, base=7), reader_divergent=False, reader_mask=FULL_MASK
    )


class TestSourceRead:
    def test_scalar_register_is_scalar_source(self):
        assert scalar_source().scalar_for_read

    def test_partial_prefix_is_not_scalar(self):
        assert not vector_source().scalar_for_read

    def test_divergent_register_needs_exact_mask_match(self):
        encoding = RegisterEncoding(enc=4, base=PARTIAL_MASK, divergent=True)
        match = classify_source_read(encoding, True, PARTIAL_MASK)
        assert match.scalar_for_read
        mismatch = classify_source_read(encoding, True, 0x000000FF)
        assert not mismatch.scalar_for_read

    def test_divergent_register_never_scalar_for_convergent_reader(self):
        # The Figure 7(b) example: enc==1111 but the mask is stale.
        encoding = RegisterEncoding(enc=4, base=PARTIAL_MASK, divergent=True)
        read = classify_source_read(encoding, False, FULL_MASK)
        assert not read.scalar_for_read

    def test_divergent_register_with_low_enc_not_scalar(self):
        encoding = RegisterEncoding(enc=2, base=PARTIAL_MASK, divergent=True)
        read = classify_source_read(encoding, True, PARTIAL_MASK)
        assert not read.scalar_for_read

    def test_nondivergent_scalar_usable_under_any_divergent_mask(self):
        # A register written scalar by a convergent instruction holds
        # one value in every lane, so any divergent reader sees scalar.
        encoding = RegisterEncoding(enc=4, base=7)
        read = classify_source_read(encoding, True, 0x5)
        assert read.scalar_for_read

    def test_half_flags(self):
        encoding = RegisterEncoding(
            enc=0, base=1, enc_lo=4, enc_hi=2, base_lo=1, base_hi=9
        )
        read = classify_source_read(encoding, False, FULL_MASK)
        assert read.lo_scalar and not read.hi_scalar

    def test_half_flags_cleared_for_divergent_registers(self):
        encoding = RegisterEncoding(enc=4, base=3, divergent=True, enc_lo=4, enc_hi=4)
        read = classify_source_read(encoding, True, 3)
        assert not read.lo_scalar and not read.hi_scalar


def _sources(*reads):
    return tuple(
        SourceRead(
            register=i,
            encoding=r.encoding,
            scalar_for_read=r.scalar_for_read,
            lo_scalar=r.lo_scalar,
            hi_scalar=r.hi_scalar,
        )
        for i, r in enumerate(reads)
    )


class TestInstructionClassification:
    def test_alu_scalar(self):
        cls, lo, hi = classify_instruction(
            OpCategory.ALU, False, _sources(scalar_source(), scalar_source()), False
        )
        assert cls is ScalarClass.ALU_SCALAR
        assert lo and hi

    def test_sfu_and_mem_scalar(self):
        for category, expected in (
            (OpCategory.SFU, ScalarClass.SFU_SCALAR),
            (OpCategory.MEM, ScalarClass.MEM_SCALAR),
        ):
            cls, _, _ = classify_instruction(
                category, False, _sources(scalar_source()), False
            )
            assert cls is expected

    def test_no_sources_is_scalar(self):
        cls, _, _ = classify_instruction(OpCategory.ALU, False, (), False)
        assert cls is ScalarClass.ALU_SCALAR

    def test_varying_special_disqualifies(self):
        cls, _, _ = classify_instruction(OpCategory.ALU, False, (), True)
        assert cls is ScalarClass.NOT_ELIGIBLE

    def test_control_never_eligible(self):
        cls, _, _ = classify_instruction(OpCategory.CTRL, False, (), False)
        assert cls is ScalarClass.NOT_ELIGIBLE

    def test_mixed_sources_not_scalar(self):
        cls, _, _ = classify_instruction(
            OpCategory.ALU, False, _sources(scalar_source(), vector_source()), False
        )
        assert cls is ScalarClass.NOT_ELIGIBLE

    def test_half_scalar_single_half(self):
        lo_only = classify_source_read(
            RegisterEncoding(enc=0, base=1, enc_lo=4, enc_hi=0),
            False,
            FULL_MASK,
        )
        cls, lo, hi = classify_instruction(
            OpCategory.ALU, False, _sources(lo_only, scalar_source()), False
        )
        assert cls is ScalarClass.HALF_SCALAR
        assert lo and not hi

    def test_both_halves_scalar_but_distinct(self):
        both = classify_source_read(
            RegisterEncoding(enc=0, base=1, enc_lo=4, enc_hi=4, full_scalar=False),
            False,
            FULL_MASK,
        )
        cls, lo, hi = classify_instruction(
            OpCategory.ALU, False, _sources(both), False
        )
        assert cls is ScalarClass.HALF_SCALAR
        assert lo and hi

    def test_divergent_scalar(self):
        divergent_src = classify_source_read(
            RegisterEncoding(enc=4, base=PARTIAL_MASK, divergent=True),
            True,
            PARTIAL_MASK,
        )
        cls, _, _ = classify_instruction(
            OpCategory.ALU, True, _sources(divergent_src), False
        )
        assert cls is ScalarClass.DIVERGENT_SCALAR

    def test_divergent_nonscalar(self):
        cls, _, _ = classify_instruction(
            OpCategory.ALU, True, _sources(vector_source()), False
        )
        assert cls is ScalarClass.NOT_ELIGIBLE

    def test_full_scalar_buckets_property(self):
        assert ScalarClass.ALU_SCALAR.is_full_scalar
        assert ScalarClass.SFU_SCALAR.is_full_scalar
        assert ScalarClass.MEM_SCALAR.is_full_scalar
        assert not ScalarClass.HALF_SCALAR.is_full_scalar
        assert not ScalarClass.DIVERGENT_SCALAR.is_full_scalar
