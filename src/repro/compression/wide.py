"""Wide-value (64-bit) compression — the §5.3 forward-looking study.

The paper notes that GPUs addressing more than 4 GB must compute
64-bit addresses, and that byte-wise compression then captures *more*
savings: intra-warp addresses typically differ only in their lowest
bytes, so widening the register doubles the shareable prefix.

:func:`common_prefix_bytes_wide` generalizes the Figure 2 comparison to
8-byte lanes; :func:`address_width_study` replays a trace's memory
events and reports the fraction of register-file bytes that still need
storing under 32-bit vs 64-bit addressing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.isa.opcodes import OpCategory
from repro.simt.trace import KernelTrace


def common_prefix_bytes_wide(values: np.ndarray, width_bytes: int = 8) -> int:
    """Identical most-significant bytes across lanes of wide values.

    ``values`` is a 1-D uint64 array; returns 0..``width_bytes``.
    """
    if width_bytes < 1 or width_bytes > 8:
        raise CompressionError(f"width_bytes must be 1..8, got {width_bytes}")
    words = np.ascontiguousarray(values, dtype=np.uint64)
    if words.ndim != 1:
        raise CompressionError(f"expected a 1-D lane array, got shape {words.shape}")
    if words.size <= 1:
        return width_bytes
    difference = int(np.bitwise_or.reduce(words ^ words[0]))
    for prefix in range(width_bytes):
        top_byte_shift = 8 * (width_bytes - 1 - prefix)
        if (difference >> top_byte_shift) & 0xFF:
            return prefix
    return width_bytes


@dataclass(frozen=True)
class AddressWidthStudy:
    """Stored-byte fractions for address registers at both widths."""

    accesses: int
    stored_fraction_32bit: float
    stored_fraction_64bit: float

    @property
    def savings_32bit(self) -> float:
        return 1.0 - self.stored_fraction_32bit

    @property
    def savings_64bit(self) -> float:
        return 1.0 - self.stored_fraction_64bit


def address_width_study(
    trace: KernelTrace, heap_base: int = 0x7F40_0000_0000
) -> AddressWidthStudy:
    """Compare address-register compressibility at 32 vs 64 bits.

    Every memory event's per-lane addresses are evaluated twice: as the
    32-bit words the trace recorded, and zero-extended onto a 64-bit
    heap base (the virtual-address layout a >4 GB GPU would use).  The
    returned fractions are stored-bytes / register-bytes; lower is
    better, and the 64-bit fraction is expected to be lower — the §5.3
    claim that wide addresses make byte-wise compression *more*
    effective.
    """
    from repro.compression.gscalar import common_prefix_bytes

    accesses = 0
    stored_32 = 0
    total_32 = 0
    stored_64 = 0
    total_64 = 0
    for event in trace.all_events():
        if event.category is not OpCategory.MEM or event.addresses is None:
            continue
        accesses += 1
        lanes = event.addresses.shape[0]
        narrow = event.addresses
        enc32 = common_prefix_bytes(narrow)
        stored_32 += (4 - enc32) * lanes
        total_32 += 4 * lanes
        wide = narrow.astype(np.uint64) + np.uint64(heap_base)
        enc64 = common_prefix_bytes_wide(wide)
        stored_64 += (8 - enc64) * lanes
        total_64 += 8 * lanes
    if accesses == 0:
        return AddressWidthStudy(0, 1.0, 1.0)
    return AddressWidthStudy(
        accesses=accesses,
        stored_fraction_32bit=stored_32 / total_32,
        stored_fraction_64bit=stored_64 / total_64,
    )
