"""Tests for 64-bit wide-value compression (§5.3's forward study)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.wide import (
    address_width_study,
    common_prefix_bytes_wide,
)
from repro.errors import CompressionError
from repro.simt import LaunchConfig, MemoryImage, run_kernel


class TestWidePrefix:
    def test_scalar(self):
        values = np.full(32, 0x7F40_1234_5678_9ABC, dtype=np.uint64)
        assert common_prefix_bytes_wide(values) == 8

    def test_coalesced_64bit_addresses(self):
        base = np.uint64(0x7F40_0000_1000)
        values = base + 4 * np.arange(32, dtype=np.uint64)
        assert common_prefix_bytes_wide(values) == 7

    def test_no_similarity(self):
        values = np.array([1 << 56, 2 << 56], dtype=np.uint64)
        assert common_prefix_bytes_wide(values) == 0

    def test_narrower_width(self):
        values = np.uint64(0xAABB00) + np.arange(8, dtype=np.uint64)
        assert common_prefix_bytes_wide(values, width_bytes=4) == 3

    def test_invalid_width(self):
        with pytest.raises(CompressionError):
            common_prefix_bytes_wide(np.zeros(4, dtype=np.uint64), width_bytes=9)

    def test_single_lane_is_fully_scalar(self):
        assert common_prefix_bytes_wide(np.array([5], dtype=np.uint64)) == 8


@settings(max_examples=100, deadline=None)
@given(
    base=st.integers(min_value=0, max_value=2**63),
    offsets=st.lists(st.integers(min_value=0, max_value=255), min_size=8, max_size=8),
)
def test_low_byte_offsets_share_seven_bytes(base, offsets):
    base &= ~0xFF  # align so offsets stay within the low byte
    values = (np.uint64(base) + np.array(offsets, dtype=np.uint64)).astype(np.uint64)
    assert common_prefix_bytes_wide(values) >= 7


class TestAddressWidthStudy:
    def _trace(self):
        from repro.isa import KernelBuilder

        b = KernelBuilder("addrs")
        tid = b.tid()
        x = b.ld_global(b.imad(tid, 4, 0x1000))  # coalesced addresses
        b.st_global(b.imad(tid, 4, 0x2000), x)
        return run_kernel(b.finish(), LaunchConfig(1, 32), MemoryImage())

    def test_wider_addresses_compress_better(self):
        study = address_width_study(self._trace())
        assert study.accesses == 2
        # §5.3: 64-bit addressing leaves a smaller stored fraction.
        assert study.stored_fraction_64bit < study.stored_fraction_32bit
        assert study.savings_64bit > study.savings_32bit

    def test_empty_trace(self):
        from repro.simt.trace import KernelTrace

        study = address_width_study(KernelTrace(kernel_name="e", warp_size=32))
        assert study.accesses == 0
        assert study.stored_fraction_32bit == 1.0

    def test_workload_study(self):
        from repro.simt.executor import run_kernel as rk
        from repro.workloads.registry import build_workload

        built = build_workload("LBM", scale="tiny")
        trace = rk(built.kernel, built.launch, built.memory)
        study = address_width_study(trace)
        assert study.accesses > 0
        assert study.savings_64bit >= study.savings_32bit
