"""Unit tests for the columnar classified/processed containers."""

import numpy as np
import pytest

from repro.config import ArchitectureConfig
from repro.scalar.architectures import process_classified
from repro.scalar.batch import classify_columnar_batch
from repro.scalar.columns import (
    CATEGORY_CODE_BY_OPCODE,
    CATEGORY_TO_CODE,
    CODE_TO_CATEGORY,
    ClassifiedColumns,
    ProcessedColumns,
    processed_columns_diff,
    processed_columns_equal,
)
from repro.scalar.eligibility import ID_TO_SCALAR_CLASS, SCALAR_CLASS_TO_ID
from repro.scalar.tracker import classify_trace
from repro.simt import MemoryImage, run_kernel
from repro.workloads.registry import build_workload

from tests.conftest import run_one_warp


@pytest.fixture(scope="module")
def bp_small():
    built = build_workload("BP", "small")
    trace = run_kernel(built.kernel, built.launch, built.memory)
    columnar = trace.to_columnar()
    _, classified = classify_columnar_batch(columnar, built.kernel.num_registers)
    return trace, columnar, classified


class TestIdTables:
    def test_category_codes_round_trip(self):
        for category, code in CATEGORY_TO_CODE.items():
            assert CODE_TO_CATEGORY[code] is category

    def test_category_lut_matches_opcode_categories(self):
        from repro.isa.opcodes import category_of
        from repro.simt.trace import ID_TO_OPCODE

        for opcode_id, opcode in ID_TO_OPCODE.items():
            code = int(CATEGORY_CODE_BY_OPCODE[opcode_id])
            assert CODE_TO_CATEGORY[code] is category_of(opcode)

    def test_scalar_class_ids_round_trip(self):
        for cls, class_id in SCALAR_CLASS_TO_ID.items():
            assert ID_TO_SCALAR_CLASS[class_id] is cls


class TestClassifiedColumns:
    def test_from_classified_matches_event_stream(self, bp_small):
        trace, columnar, classified = bp_small
        cols = ClassifiedColumns.from_classified(classified, trace.warp_size)
        events = [ev for warp in classified for ev in warp]
        assert cols.num_events == len(events)
        assert cols.warp_lengths.tolist() == [len(w) for w in classified]
        for index, ev in enumerate(events):
            assert int(cols.opcode_ids[index]) >= 0
            assert bool(cols.divergent[index]) == ev.divergent
            expected_dst = -1 if ev.event.dst is None else ev.event.dst
            assert int(cols.dst[index]) == expected_dst
            lo, hi = cols.src_offsets[index], cols.src_offsets[index + 1]
            assert hi - lo == len(ev.sources)
            for k, src in enumerate(ev.sources):
                assert int(cols.src_registers[lo + k]) == src.register
                assert bool(cols.src_divergent[lo + k]) == src.encoding.divergent

    def test_columnar_backed_equals_extracted(self, bp_small):
        trace, columnar, classified = bp_small
        extracted = ClassifiedColumns.from_classified(classified, trace.warp_size)
        backed = ClassifiedColumns.from_classified(
            classified, trace.warp_size, columnar=columnar
        )
        assert np.array_equal(extracted.opcode_ids, backed.opcode_ids)
        assert np.array_equal(extracted.masks, backed.masks)
        assert np.array_equal(extracted.src_offsets, backed.src_offsets)
        assert np.array_equal(extracted.src_registers, backed.src_registers)
        assert np.array_equal(extracted.dst, backed.dst)

    def test_warp_bounds_tile_the_stream(self, bp_small):
        trace, _, classified = bp_small
        cols = ClassifiedColumns.from_classified(classified, trace.warp_size)
        bounds = cols.warp_bounds()
        assert bounds[0] == 0
        assert bounds[-1] == cols.num_events
        assert np.array_equal(np.diff(bounds), cols.warp_lengths)


class TestProcessedColumns:
    def _processed(self, kernel, arch):
        trace = run_one_warp(kernel, MemoryImage())
        classified = classify_trace(trace, kernel.num_registers)
        processed = process_classified(classified, arch, trace.warp_size)
        return ProcessedColumns.from_events(processed, trace.warp_size)

    def test_from_events_shapes(self, divergent_kernel):
        cols = self._processed(divergent_kernel, ArchitectureConfig.gscalar())
        n = cols.opcode_ids.shape[0]
        assert cols.acc_offsets.shape == (n + 1,)
        assert cols.acc_offsets[-1] == cols.acc_kind_ids.shape[0]
        assert cols.exec_lanes.min() >= 0

    def test_equal_and_diff_helpers(self, scalar_heavy_kernel):
        arch = ArchitectureConfig.gscalar()
        a = self._processed(scalar_heavy_kernel, arch)
        b = self._processed(scalar_heavy_kernel, arch)
        assert processed_columns_equal(a, b)
        assert processed_columns_diff(a, b) == []
        b.exec_lanes[0] += 1
        assert not processed_columns_equal(a, b)
        assert "exec_lanes" in processed_columns_diff(a, b)

    def test_architectures_differ_in_columns(self, scalar_heavy_kernel):
        base = self._processed(scalar_heavy_kernel, ArchitectureConfig.baseline())
        gsc = self._processed(scalar_heavy_kernel, ArchitectureConfig.gscalar())
        assert not base.scalar_executed.any()
        assert gsc.scalar_executed.any()
        assert gsc.exec_lanes.sum() < base.exec_lanes.sum()
