"""Cycle-level SM timing model."""

from repro.timing.gpu import (
    lower_to_timing_ops,
    lower_to_timing_ops_columns,
    simulate_architecture,
    simulate_architecture_columns,
)
from repro.timing.multisim import GpuTimingResult, simulate_gpu
from repro.timing.memory import (
    MemoryAccessCounts,
    MemoryModel,
    SetAssociativeCache,
)
from repro.timing.ops import (
    SCALAR_RF_BANK,
    TimingOp,
    build_timing_ops,
    build_timing_ops_columns,
    coalesce_addresses,
)
from repro.timing.scheduler import (
    WarpScheduler,
    partition_slots,
    partition_warps,
    scheduler_of_slot,
)
from repro.timing.scoreboard import Scoreboard
from repro.timing.sm import (
    ALU_LATENCY,
    CTRL_LATENCY,
    LONG_ALU_LATENCY,
    SFU_LATENCY,
    STALL_CAUSES,
    SmSimulator,
    StallBreakdown,
    TimingResult,
)
from repro.timing.sm_event import (
    DEFAULT_SM_ENGINE,
    SM_ENGINE_CHOICES,
    EventSmSimulator,
    create_sm_simulator,
)

__all__ = [
    "ALU_LATENCY",
    "CTRL_LATENCY",
    "LONG_ALU_LATENCY",
    "SCALAR_RF_BANK",
    "SFU_LATENCY",
    "STALL_CAUSES",
    "DEFAULT_SM_ENGINE",
    "SM_ENGINE_CHOICES",
    "EventSmSimulator",
    "GpuTimingResult",
    "MemoryAccessCounts",
    "MemoryModel",
    "Scoreboard",
    "SetAssociativeCache",
    "SmSimulator",
    "StallBreakdown",
    "TimingOp",
    "TimingResult",
    "WarpScheduler",
    "build_timing_ops",
    "build_timing_ops_columns",
    "coalesce_addresses",
    "create_sm_simulator",
    "lower_to_timing_ops",
    "lower_to_timing_ops_columns",
    "partition_slots",
    "partition_warps",
    "scheduler_of_slot",
    "simulate_architecture",
    "simulate_architecture_columns",
    "simulate_gpu",
]
