"""Functional correctness of workload kernels against numpy references.

The figure pipeline only consumes statistics, so a silently-wrong
kernel could still produce plausible-looking figures.  These tests
recompute several proxies' outputs with plain numpy and demand exact
(bit-level, float32) agreement — validating the executor's semantics on
real multi-block, divergent, looping kernels.
"""

import numpy as np
import pytest

from repro.simt.executor import run_kernel
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
)
from repro.workloads.registry import SCALES, build_workload

SCALE = SCALES["tiny"]


def f32(x):
    return np.float32(x)


class TestSgemm:
    def test_matches_reference(self):
        built = build_workload("MM", scale="tiny")
        total_threads = built.launch.total_threads
        k_dim = 4 * SCALE.inner_iterations
        a_column = built.memory.read_array(INPUT_A, k_dim + 1, dtype=np.float32)
        b_values = built.memory.read_array(
            INPUT_B, total_threads, dtype=np.float32
        ).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        acc = np.zeros(total_threads, dtype=np.float32)
        b_current = b_values.astype(np.float32)
        growth = f32(np.float32(1.0009765625))
        for k in range(k_dim):
            row_scale = f32(a_column[k]) * f32(1.0)
            acc = (b_current * f32(row_scale) + acc).astype(np.float32)
            b_current = (b_current * growth).astype(np.float32)
        assert np.array_equal(out, acc)


class TestPathfinder:
    def test_matches_reference(self):
        built = build_workload("PF", scale="tiny")
        total_threads = built.launch.total_threads
        rows = 2 * SCALE.inner_iterations
        cost0 = built.memory.read_array(INPUT_A, total_threads).copy()
        grid = built.memory.read_array(INPUT_B, total_threads + rows + 2).copy()
        penalty = int(built.memory.read_array(PARAMS_BASE, 1)[0])
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        cost = cost0.astype(np.int64)
        for row in range(rows):
            # row_base = INPUT_B + 4*row; loads at tid*4 + row_base etc.
            left = grid[row + np.arange(total_threads)]
            center = grid[row + np.arange(total_threads) + 1]
            right = grid[row + np.arange(total_threads) + 2]
            best = np.minimum(np.minimum(left, center), right).astype(np.int64)
            edge_increment = min(2 * penalty, 255)
            cost = np.where(flags != 0, cost + edge_increment, cost + best)
        assert np.array_equal(out, (cost & 0xFFFFFFFF).astype(np.uint32))


class TestHeartwall:
    def test_matches_reference(self):
        built = build_workload("HW", scale="tiny")
        total_threads = built.launch.total_threads
        iterations = 2 * SCALE.inner_iterations
        pixel = built.memory.read_array(INPUT_A, total_threads).astype(np.int64)
        template = built.memory.read_array(INPUT_B, total_threads).astype(np.int64)
        params = built.memory.read_array(PARAMS_BASE, 3)
        threshold, gain, offset = (int(v) for v in params)
        flags = built.memory.read_array(
            FLAGS_BASE, total_threads + iterations
        ).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        tids = np.arange(total_threads)
        score = np.zeros(total_threads, dtype=np.int64)
        for step in range(iterations):
            edge = flags[tids + step] != 0
            diff = pixel - template
            mag = np.maximum(diff, -diff)
            boost = threshold * 3
            window = boost + offset
            norm = window >> 2
            floor = np.maximum(norm, offset)
            span = floor + gain
            inner = mag > threshold
            smooth = gain * 2
            score = np.where(edge, score + span + np.where(inner, mag, 0),
                             score + diff)
            pixel = np.where(~edge, pixel + smooth, pixel)
            template = template + 1
        assert np.array_equal(out, (score & 0xFFFFFFFF).astype(np.uint32))


class TestBtree:
    def test_matches_reference(self):
        built = build_workload("BT", scale="tiny")
        total_threads = built.launch.total_threads
        levels = 2 * SCALE.inner_iterations
        query = built.memory.read_array(INPUT_A, total_threads).astype(np.int64)
        nodes = built.memory.read_array(INPUT_B, 2 * levels + 2).copy()
        stride = int(built.memory.read_array(PARAMS_BASE, 1)[0])
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        position = np.zeros(total_threads, dtype=np.int64)
        node_addr_offset = 0
        for _level in range(levels):
            pivot = np.int64(np.int32(nodes[node_addr_offset // 4]))
            go_right = query.astype(np.int32) >= np.int32(pivot)
            right_step = stride * 2 + 4
            left_step = stride * 1
            position = position + np.where(go_right, right_step, left_step)
            node_addr_offset += 8
            query = query + 1
        assert np.array_equal(out, (position & 0xFFFFFFFF).astype(np.uint32))


class TestMriQ:
    def test_matches_reference(self):
        built = build_workload("MQ", scale="tiny")
        total_threads = built.launch.total_threads
        samples = 2 * SCALE.inner_iterations
        x = built.memory.read_array(INPUT_A, total_threads, dtype=np.float32).copy()
        kspace = built.memory.read_array(
            INPUT_B, 3 * samples + 3, dtype=np.float32
        ).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out_real = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        q_real = np.zeros(total_threads, dtype=np.float32)
        for sample in range(samples):
            kx = f32(kspace[3 * sample])
            ky = f32(kspace[3 * sample + 1])
            w = f32(kspace[3 * sample + 2])
            k_mag = f32(kx * kx) + f32(ky * ky)
            w_mag = f32(w * np.sqrt(k_mag, dtype=np.float32))
            phase = (kx * x).astype(np.float32)
            c = np.cos(phase, dtype=np.float32)
            q_real = (w_mag * c + q_real).astype(np.float32)
        assert np.array_equal(out_real, q_real)


class TestStencil:
    def test_matches_reference(self):
        built = build_workload("ST", scale="tiny")
        total_threads = built.launch.total_threads
        field = built.memory.read_array(
            INPUT_A, total_threads + 4, dtype=np.float32
        ).copy()
        c0, c1 = built.memory.read_array(PARAMS_BASE, 2, dtype=np.float32)
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        tids = np.arange(total_threads)
        center = field[tids].astype(np.float32)
        west = field[tids + 1]
        east = field[tids + 2]
        north = field[tids + 3]
        south = field[tids + 4]
        at_face = flags != 0
        for _sweep in range(SCALE.inner_iterations):
            ring = ((west + east) + (north + south)).astype(np.float32)
            scaled_c1 = f32(c1 * f32(0.25))
            combined = (ring * scaled_c1).astype(np.float32)
            weighted = (center * c0).astype(np.float32)
            center = (combined + weighted).astype(np.float32)
            center = np.where(
                at_face, (center * f32(0.5)).astype(np.float32), center
            )
        assert np.array_equal(out, center)


class TestSad:
    def test_matches_reference(self):
        built = build_workload("SAD", scale="tiny")
        total_threads = built.launch.total_threads
        candidates = 2 * SCALE.inner_iterations
        current = built.memory.read_array(INPUT_A, total_threads).astype(np.int64)
        reference = built.memory.read_array(
            INPUT_B, total_threads + candidates + 1
        ).astype(np.int64)
        window, penalty = (
            int(v) for v in built.memory.read_array(PARAMS_BASE, 2)
        )
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        tids = np.arange(total_threads)
        best = np.full(total_threads, 0xFFFF, dtype=np.int64)
        near_border = flags != 0
        clamped = min(window, 64)
        folded = max((clamped + penalty) << 1, penalty)
        for candidate in range(candidates):
            ref = reference[tids + candidate]
            abs_diff = np.abs(current - ref)
            best = np.where(
                near_border,
                np.minimum(best, folded),
                np.minimum(best, abs_diff),
            )
        assert np.array_equal(out, best.astype(np.uint32))


class TestSrad2:
    def test_matches_reference(self):
        built = build_workload("SR2", scale="tiny")
        total_threads = built.launch.total_threads
        image = built.memory.read_array(
            INPUT_A, total_threads, dtype=np.float32
        ).copy()
        coeffs = built.memory.read_array(
            INPUT_B, total_threads + 2, dtype=np.float32
        ).copy()
        dt, scale_c = built.memory.read_array(PARAMS_BASE, 2, dtype=np.float32)
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        tids = np.arange(total_threads)
        coeff_e = coeffs[tids].astype(np.float32)
        coeff_s = coeffs[tids + 1].astype(np.float32)
        at_border = flags != 0
        for _sweep in range(SCALE.inner_iterations):
            step_gain = f32(dt * scale_c)
            quarter = f32(step_gain * f32(0.25))
            flux = (coeff_e + coeff_s).astype(np.float32)
            delta = (flux * quarter).astype(np.float32)
            image = (image + delta).astype(np.float32)
            bounded = f32(np.fmin(f32(step_gain * f32(0.5)), dt))
            coeff_e = np.where(
                at_border, (coeff_e + bounded).astype(np.float32), coeff_e
            )
            coeff_s = (coeff_s * f32(0.995)).astype(np.float32)
        assert np.array_equal(out, image)


class TestLeukocyte:
    def test_matches_reference(self):
        built = build_workload("LC", scale="tiny")
        total_threads = built.launch.total_threads
        iterations = 4 * SCALE.inner_iterations
        sample = built.memory.read_array(INPUT_A, total_threads).astype(np.int64)
        radius, divisor = (
            int(v) for v in built.memory.read_array(PARAMS_BASE, 2)
        )
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        in_cell = flags != 0
        gradient = np.zeros(total_threads, dtype=np.int64)
        window = radius * 5 + 3
        trimmed = min((window >> 1) + radius, window)
        for _step in range(iterations):
            quotient = sample // divisor  # all values positive: trunc==floor
            remainder = sample - quotient * divisor
            gradient = gradient + quotient
            gradient = np.where(in_cell, gradient + trimmed, gradient)
            sample = np.maximum(sample + remainder, 1)
        assert np.array_equal(out, (gradient & 0xFFFFFFFF).astype(np.uint32))


class TestCutcp:
    def test_matches_reference(self):
        from repro.workloads.parboil.cc import _ATOMS

        built = build_workload("CC", scale="tiny")
        total_threads = built.launch.total_threads
        atoms = 2 * SCALE.inner_iterations
        grid_x = built.memory.read_array(
            INPUT_A, total_threads, dtype=np.float32
        ).copy()
        atom_table = built.memory.read_array(
            _ATOMS, 2 * atoms + 2, dtype=np.float32
        ).copy()
        cutoff_sq, charge_scale = built.memory.read_array(
            PARAMS_BASE, 2, dtype=np.float32
        )
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        potential = np.zeros(total_threads, dtype=np.float32)
        for atom in range(atoms):
            atom_x = f32(atom_table[2 * atom])
            atom_q = f32(atom_table[2 * atom + 1])
            dx = (grid_x - atom_x).astype(np.float32)
            dist_sq = (dx * dx).astype(np.float32)
            in_range = dist_sq < cutoff_sq
            softened = f32(f32(atom_q * charge_scale) + f32(0.05))
            inv_r = (f32(1.0) / np.sqrt(dist_sq, dtype=np.float32)).astype(
                np.float32
            )
            contribution = (softened * inv_r + potential).astype(np.float32)
            potential = np.where(in_range, contribution, potential)
        assert np.array_equal(out, potential)


class TestSrad1:
    def test_matches_reference(self):
        built = build_workload("SR1", scale="tiny")
        total_threads = built.launch.total_threads
        field = built.memory.read_array(
            INPUT_A, total_threads + 2, dtype=np.float32
        ).copy()
        q0, lam = built.memory.read_array(PARAMS_BASE, 2, dtype=np.float32)
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        tids = np.arange(total_threads)
        image = field[tids].astype(np.float32)
        north = field[tids + 1]
        south = field[tids + 2]
        at_border = flags != 0
        q_current = f32(q0)
        for _sweep in range(SCALE.inner_iterations):
            q_scaled = f32(q_current * f32(-1.4427))
            coefficient = f32(np.exp2(q_scaled, dtype=np.float32))
            damping = f32(coefficient * lam)
            gradient_n = (north - image).astype(np.float32)
            gradient_s = (south - image).astype(np.float32)
            divergence_term = (gradient_n + gradient_s).astype(np.float32)
            update = (divergence_term * damping).astype(np.float32)
            image = np.where(
                at_border, image, (image + update).astype(np.float32)
            )
            q_current = f32(q_current * f32(0.97))
        assert np.array_equal(out, image)


class TestLbm:
    def test_matches_reference(self):
        from repro.workloads.patterns import INPUT_C, INPUT_D, OUTPUT_B

        built = build_workload("LBM", scale="tiny")
        total_threads = built.launch.total_threads
        f_in = [
            built.memory.read_array(base, total_threads, dtype=np.float32).copy()
            for base in (INPUT_A, INPUT_B, INPUT_C, INPUT_D)
        ]
        omega, w_center, w_axis = built.memory.read_array(
            PARAMS_BASE, 3, dtype=np.float32
        )
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out_f0 = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)
        out_f1 = built.memory.read_array(OUTPUT_B, total_threads, dtype=np.float32)

        # Distributions reload from the (unmodified) inputs each
        # iteration, so the stored result equals one collision step.
        f0, f1, f2, f3 = (values.astype(np.float32) for values in f_in)
        is_fluid = flags != 0
        tau = f32(f32(1.0) / omega)
        eq_center = f32(w_center * tau)
        eq_axis = f32(w_axis * tau)
        relax = f32(f32(1.0) - omega)
        gain = f32(relax * eq_center)
        bias = f32(gain + eq_axis)
        spread = f32(bias - f32(bias * f32(0.5)))
        norm = f32(np.fmax(spread, eq_axis))
        new_f0 = (f0 * relax + norm).astype(np.float32)
        new_f1 = (f1 * relax + spread).astype(np.float32)
        expected_f0 = np.where(is_fluid, new_f0, f0)
        expected_f1 = np.where(is_fluid, new_f1, f1)
        assert np.array_equal(out_f0, expected_f0)
        assert np.array_equal(out_f1, expected_f1)


class TestSpmv:
    def test_matches_reference(self):
        from repro.workloads.parboil.mv import (
            _COLUMNS,
            _ROW_LENGTHS,
            _VALUES,
            _VECTOR,
        )

        built = build_workload("MV", scale="tiny")
        total_threads = built.launch.total_threads
        max_nnz = 2 * SCALE.inner_iterations
        lengths = built.memory.read_array(_ROW_LENGTHS, total_threads).copy()
        values = built.memory.read_array(
            _VALUES, total_threads * max_nnz, dtype=np.float32
        ).copy()
        columns = built.memory.read_array(
            _COLUMNS, total_threads * max_nnz
        ).copy()
        vector = built.memory.read_array(_VECTOR, 4096, dtype=np.float32).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        expected = np.zeros(total_threads, dtype=np.float32)
        for thread in range(total_threads):
            acc = f32(0.0)
            for index in range(int(lengths[thread])):
                value = f32(values[thread * max_nnz + index])
                column = int(columns[thread * max_nnz + index])
                acc = f32(f32(value * vector[column]) + acc)
            expected[thread] = acc
        assert np.array_equal(out, expected)


class TestBackprop:
    def test_matches_reference(self):
        from repro.workloads.patterns import OUTPUT_B

        built = build_workload("BP", scale="tiny")
        total_threads = built.launch.total_threads
        iterations = 2 * SCALE.inner_iterations
        x = built.memory.read_array(INPUT_A, total_threads, dtype=np.float32).copy()
        params = built.memory.read_array(PARAMS_BASE, 4, dtype=np.float32)
        weight, eta, hp_lo, hp_hi = (f32(v) for v in params)
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out_acc = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)
        out_half = built.memory.read_array(OUTPUT_B, total_threads, dtype=np.float32)

        lanes = np.arange(total_threads) % 32
        hp = np.where(lanes < 16, hp_lo, hp_hi).astype(np.float32)
        acc = np.zeros(total_threads, dtype=np.float32)
        half_acc = np.zeros(total_threads, dtype=np.float32)
        bias = np.full(total_threads, 0.5, dtype=np.float32)
        one = f32(1.0)
        for k in range(iterations):
            power = f32(np.exp2(np.float32(k), dtype=np.float32))
            scaled_weight = f32(weight * power)
            term = (x * scaled_weight).astype(np.float32)
            acc = (acc + term).astype(np.float32)
            half_term = (hp * power).astype(np.float32)
            half_acc = (half_acc + half_term).astype(np.float32)
            bias = (bias + scaled_weight).astype(np.float32)
            exponent = np.exp2(-bias, dtype=np.float32)
            sigmoid = (one / (one + exponent)).astype(np.float32)
            delta = (term * sigmoid + acc).astype(np.float32)
            acc = (acc + delta).astype(np.float32)
        acc = np.where(flags != 0, (acc * eta).astype(np.float32), acc)
        assert np.array_equal(out_acc, acc)
        assert np.array_equal(out_half, half_acc)


class TestTpacf:
    def test_matches_reference(self):
        from repro.workloads.parboil.acf import _BIN_EDGES

        built = build_workload("ACF", scale="tiny")
        total_threads = built.launch.total_threads
        pairs = 2 * SCALE.inner_iterations
        x = built.memory.read_array(INPUT_A, total_threads, dtype=np.float32).copy()
        others = built.memory.read_array(INPUT_B, pairs + 1, dtype=np.float32).copy()
        edges = built.memory.read_array(
            _BIN_EDGES, pairs + 1, dtype=np.float32
        ).copy()
        bin_scale = f32(
            built.memory.read_array(PARAMS_BASE, 1, dtype=np.float32)[0]
        )
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        histogram = np.zeros(total_threads, dtype=np.int64)
        for pair in range(pairs):
            other = f32(others[pair])
            dot = np.fmin((x * other).astype(np.float32), f32(0.9999))
            angle_sq = (f32(1.0) - (dot * dot).astype(np.float32)).astype(
                np.float32
            )
            angle = np.sqrt(angle_sq, dtype=np.float32)
            log_angle = np.log2(
                (angle + f32(1e-6)).astype(np.float32), dtype=np.float32
            )
            edge = f32(edges[pair])
            above = log_angle > edge
            shifted = f32(f32(bin_scale * f32(2.0)) + edge)
            bin_bump = int(np.trunc(np.float64(shifted)))
            histogram = np.where(above, histogram + bin_bump, histogram + 1)
        assert np.array_equal(out, (histogram & 0xFFFFFFFF).astype(np.uint32))


class TestHotspot:
    def test_matches_reference(self):
        built = build_workload("HS", scale="tiny")
        total_threads = built.launch.total_threads
        field = built.memory.read_array(
            INPUT_A, total_threads + 2, dtype=np.float32
        ).copy()
        ambient, r_step, cap = (
            f32(v)
            for v in built.memory.read_array(PARAMS_BASE, 3, dtype=np.float32)
        )
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads, dtype=np.float32)

        tids = np.arange(total_threads)
        temp = field[tids].astype(np.float32)
        left = field[tids + 1].astype(np.float32)
        right = field[tids + 2].astype(np.float32)
        boundary = flags != 0
        limited = f32(np.fmin(f32(f32(f32(ambient * r_step) + cap) * f32(0.5)), cap))
        for _step in range(SCALE.inner_iterations):
            laplacian = (left + right).astype(np.float32)
            laplacian = (laplacian - (temp * f32(2.0)).astype(np.float32)).astype(
                np.float32
            )
            delta = (laplacian * r_step).astype(np.float32)
            temp = np.where(
                boundary,
                (temp + limited).astype(np.float32),
                (temp + delta).astype(np.float32),
            )
            left = np.where(boundary, left, (left + delta).astype(np.float32))
            right = np.where(boundary, right, (right - delta).astype(np.float32))
        assert np.array_equal(out, temp)


class TestMriGrid:
    def test_matches_reference(self):
        from repro.workloads.parboil.mg import _GRID
        from repro.workloads.patterns import INPUT_C

        built = build_workload("MG", scale="tiny")
        total_threads = built.launch.total_threads
        passes = SCALE.inner_iterations
        count = total_threads + passes + 1
        coords = built.memory.read_array(INPUT_A, count + 3 * passes).copy()
        weights = built.memory.read_array(INPUT_B, count + 3 * passes).copy()
        densities = built.memory.read_array(INPUT_C, count + 3 * passes).copy()
        flags = built.memory.read_array(FLAGS_BASE, total_threads).copy()
        run_kernel(built.kernel, built.launch, built.memory)
        out = built.memory.read_array(OUTPUT_A, total_threads)

        def spread_for(thread, pass_index):
            idx = thread + 4 * pass_index
            coord = int(coords[idx])
            weight = int(weights[idx])
            density = int(densities[idx])
            bin_offset = coord & 0xFFF
            contribution = (weight * density) & 0xFFFFFFFF
            spread = (contribution + bin_offset) & 0xFFFFFFFF
            if flags[thread]:
                spread >>= 1
            return coord >> 20, spread, contribution

        # OUTPUT_A holds the final pass's contribution per thread.
        expected_out = np.zeros(total_threads, dtype=np.uint32)
        for thread in range(total_threads):
            _, _, contribution = spread_for(thread, passes - 1)
            expected_out[thread] = contribution
        assert np.array_equal(out, expected_out)

        # The scatter grid resolves collisions in execution order:
        # warps run to completion in warp order; lanes ascend.
        grid_expected: dict[int, int] = {}
        warps = total_threads // 32
        for warp in range(warps):
            for pass_index in range(passes):
                for lane in range(32):
                    thread = warp * 32 + lane
                    bin_index, spread, _ = spread_for(thread, pass_index)
                    grid_expected[bin_index] = spread
        for bin_index, value in grid_expected.items():
            stored = built.memory.read_array(_GRID + 4 * bin_index, 1)[0]
            assert stored == value, bin_index
