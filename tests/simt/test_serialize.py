"""Round-trip tests for trace serialization."""

import numpy as np
import pytest

from repro.simt import MemoryImage
from repro.simt.serialize import load_trace, save_trace

from tests.conftest import run_one_warp


def assert_traces_equal(a, b):
    assert a.kernel_name == b.kernel_name
    assert a.warp_size == b.warp_size
    assert len(a.warps) == len(b.warps)
    for warp_a, warp_b in zip(a.warps, b.warps):
        assert warp_a.warp_id == warp_b.warp_id
        assert len(warp_a) == len(warp_b)
        for ev_a, ev_b in zip(warp_a.events, warp_b.events):
            assert ev_a.opcode is ev_b.opcode
            assert ev_a.dst == ev_b.dst
            assert ev_a.src_regs == ev_b.src_regs
            assert ev_a.active_mask == ev_b.active_mask
            assert ev_a.block_id == ev_b.block_id
            assert ev_a.varying_special_src == ev_b.varying_special_src
            assert ev_a.scalar_nonreg_srcs == ev_b.scalar_nonreg_srcs
            if ev_a.dst_values is None:
                assert ev_b.dst_values is None
            else:
                assert np.array_equal(ev_a.dst_values, ev_b.dst_values)
            if ev_a.addresses is None:
                assert ev_b.addresses is None
            else:
                assert np.array_equal(ev_a.addresses, ev_b.addresses)


class TestRoundTrip:
    def test_divergent_trace(self, divergent_kernel, tmp_path):
        trace = run_one_warp(divergent_kernel, MemoryImage(), cta=64)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))

    def test_memory_trace(self, saxpy_kernel, simple_memory, tmp_path):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))

    def test_empty_trace(self, tmp_path):
        from repro.simt.trace import KernelTrace

        trace = KernelTrace(kernel_name="empty", warp_size=32)
        path = tmp_path / "empty.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.total_instructions == 0

    def test_downstream_results_identical(self, divergent_kernel, tmp_path):
        """A reloaded trace must classify identically."""
        from repro.scalar import classify_trace, trace_statistics

        trace = run_one_warp(divergent_kernel, MemoryImage())
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        reloaded = load_trace(path)
        original = trace_statistics(
            classify_trace(trace, divergent_kernel.num_registers)
        )
        recovered = trace_statistics(
            classify_trace(reloaded, divergent_kernel.num_registers)
        )
        assert original.class_counts == recovered.class_counts

    def test_workload_trace_round_trip(self, tmp_path):
        from repro.simt.executor import run_kernel
        from repro.workloads.registry import build_workload

        built = build_workload("HS", scale="tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        path = tmp_path / "hs.npz"
        save_trace(trace, path)
        assert_traces_equal(trace, load_trace(path))
        assert path.stat().st_size > 0
