"""The functional SIMT executor.

Executes a kernel warp by warp, handling branch divergence with the
classic immediate-post-dominator reconvergence stack (the same scheme
GPGPU-Sim and Fermi-class hardware use), and records a full dynamic
trace with operand values for the downstream compression, scalar and
power models.

Warps of a CTA synchronize at ``bar.sync`` barriers: the coordinator in
:func:`run_kernel` runs every warp to its next barrier (or completion)
before releasing any of them past it, so pre-barrier shared-memory
writes are visible after the barrier.  There is no *sub*-barrier
interleaving — the model is not a race detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.isa.instructions import Imm, Instruction, Operand, Reg, SpecialReg
from repro.isa.kernel import EXIT_NODE, Branch, Exit, Jump, Kernel, immediate_postdominators
from repro.isa.opcodes import Opcode
from repro.obs.instrument import record_warp_trace
from repro.obs.telemetry import get_telemetry
from repro.simt.grid import LaunchConfig, WarpIdentity, enumerate_warps, mask_to_int
from repro.simt.memory_state import MemoryImage
from repro.simt.special import UNARY_SFU, sfu_fdiv
from repro.simt.trace import KernelTrace, TraceEvent, WarpTrace

#: Specials whose value differs between lanes of a warp.
_VARYING_SPECIALS = frozenset({SpecialReg.TID, SpecialReg.LANE})


@dataclass
class _StackEntry:
    """One SIMT reconvergence-stack entry: run ``pc`` under ``mask``
    until reaching ``rpc``.  ``inst_index`` is the resume point within
    the block (used when execution pauses at a CTA barrier)."""

    pc: int
    rpc: int
    mask: np.ndarray
    inst_index: int = 0


def _u32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.uint32)


def _f32(bits: np.ndarray) -> np.ndarray:
    return _u32(bits).view(np.float32)


def _from_f32(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)


def _i32(bits: np.ndarray) -> np.ndarray:
    return _u32(bits).view(np.int32)


class WarpExecutor:
    """Functional execution of a single warp."""

    def __init__(
        self,
        kernel: Kernel,
        identity: WarpIdentity,
        global_memory: MemoryImage,
        shared_memory: MemoryImage,
        ipdom: dict[int, int],
        max_instructions: int,
    ):
        self.kernel = kernel
        self.identity = identity
        self.global_memory = global_memory
        self.shared_memory = shared_memory
        self.ipdom = ipdom
        self.max_instructions = max_instructions
        self.warp_size = identity.warp_size
        self.registers = np.zeros((kernel.num_registers, self.warp_size), dtype=np.uint32)
        self._tid = identity.global_thread_ids()
        self._lane = identity.lane_indices()
        self.trace = WarpTrace(warp_id=identity.warp_id, warp_size=self.warp_size)
        self._stack: list[_StackEntry] | None = None
        self._executed = 0
        #: Deepest reconvergence-stack nesting reached (telemetry).
        self.max_stack_depth = 1

    # ------------------------------------------------------------------
    # Operand evaluation.
    # ------------------------------------------------------------------
    def _value_of(self, operand: Operand) -> np.ndarray:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return np.full(self.warp_size, operand.value, dtype=np.uint32)
        if operand is SpecialReg.TID:
            return self._tid
        if operand is SpecialReg.LANE:
            return self._lane
        if operand is SpecialReg.CTAID:
            return np.full(self.warp_size, self.identity.cta_id, dtype=np.uint32)
        if operand is SpecialReg.WARP_IN_CTA:
            return np.full(self.warp_size, self.identity.warp_in_cta, dtype=np.uint32)
        if operand is SpecialReg.NTID:
            return np.full(self.warp_size, self.identity.cta_dim, dtype=np.uint32)
        raise ExecutionError(f"unknown operand {operand!r}")

    # ------------------------------------------------------------------
    # Opcode semantics (all compute full-warp arrays; masking happens
    # at write-back).
    # ------------------------------------------------------------------
    def _compute(self, inst: Instruction, values: list[np.ndarray]) -> np.ndarray:
        op = inst.opcode
        with np.errstate(all="ignore"):
            if op is Opcode.MOV or op is Opcode.DECOMPRESS_MOV:
                return values[0].copy()
            if op is Opcode.IADD:
                return values[0] + values[1]
            if op is Opcode.ISUB:
                return values[0] - values[1]
            if op is Opcode.IMUL:
                return values[0] * values[1]
            if op is Opcode.IMAD:
                return values[0] * values[1] + values[2]
            if op is Opcode.IDIV:
                return self._signed_div(values[0], values[1])
            if op is Opcode.IREM:
                return self._signed_rem(values[0], values[1])
            if op is Opcode.IMIN:
                return np.minimum(_i32(values[0]), _i32(values[1])).view(np.uint32)
            if op is Opcode.IMAX:
                return np.maximum(_i32(values[0]), _i32(values[1])).view(np.uint32)
            if op is Opcode.AND:
                return values[0] & values[1]
            if op is Opcode.OR:
                return values[0] | values[1]
            if op is Opcode.XOR:
                return values[0] ^ values[1]
            if op is Opcode.NOT:
                return ~values[0]
            if op is Opcode.SHL:
                return values[0] << (values[1] & 31)
            if op is Opcode.SHR:
                return values[0] >> (values[1] & 31)
            if op is Opcode.SETEQ:
                return (values[0] == values[1]).astype(np.uint32)
            if op is Opcode.SETNE:
                return (values[0] != values[1]).astype(np.uint32)
            if op is Opcode.SETLT:
                return (_i32(values[0]) < _i32(values[1])).astype(np.uint32)
            if op is Opcode.SETLE:
                return (_i32(values[0]) <= _i32(values[1])).astype(np.uint32)
            if op is Opcode.SETGT:
                return (_i32(values[0]) > _i32(values[1])).astype(np.uint32)
            if op is Opcode.SETGE:
                return (_i32(values[0]) >= _i32(values[1])).astype(np.uint32)
            if op is Opcode.SELP:
                return np.where(values[2] != 0, values[0], values[1])
            if op is Opcode.FADD:
                return _from_f32(_f32(values[0]) + _f32(values[1]))
            if op is Opcode.FSUB:
                return _from_f32(_f32(values[0]) - _f32(values[1]))
            if op is Opcode.FMUL:
                return _from_f32(_f32(values[0]) * _f32(values[1]))
            if op is Opcode.FFMA:
                product = _f32(values[0]).astype(np.float32) * _f32(values[1])
                return _from_f32(product + _f32(values[2]))
            if op is Opcode.FMIN:
                return _from_f32(np.fmin(_f32(values[0]), _f32(values[1])))
            if op is Opcode.FMAX:
                return _from_f32(np.fmax(_f32(values[0]), _f32(values[1])))
            if op is Opcode.FSETLT:
                return (_f32(values[0]) < _f32(values[1])).astype(np.uint32)
            if op is Opcode.FSETGT:
                return (_f32(values[0]) > _f32(values[1])).astype(np.uint32)
            if op is Opcode.FSETLE:
                return (_f32(values[0]) <= _f32(values[1])).astype(np.uint32)
            if op is Opcode.FSETGE:
                return (_f32(values[0]) >= _f32(values[1])).astype(np.uint32)
            if op is Opcode.FABS:
                return values[0] & np.uint32(0x7FFFFFFF)
            if op is Opcode.FNEG:
                return values[0] ^ np.uint32(0x80000000)
            if op is Opcode.I2F:
                return _from_f32(_i32(values[0]).astype(np.float32))
            if op is Opcode.F2I:
                floats = _f32(values[0]).astype(np.float64)
                floats = np.nan_to_num(floats, nan=0.0, posinf=2**31 - 1, neginf=-(2**31))
                clipped = np.clip(np.trunc(floats), -(2**31), 2**31 - 1)
                return clipped.astype(np.int64).astype(np.int32).view(np.uint32)
            if op in UNARY_SFU:
                return UNARY_SFU[op](values[0])
            if op is Opcode.FDIV:
                return sfu_fdiv(values[0], values[1])
        raise ExecutionError(f"no functional semantics for opcode {op.value}")

    @staticmethod
    def _signed_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dividend = _i32(a).astype(np.int64)
        divisor = _i32(b).astype(np.int64)
        safe = np.where(divisor == 0, 1, divisor)
        quotient = np.trunc(dividend / safe).astype(np.int64)
        # CUDA defines signed division by zero as returning -1 (all ones).
        quotient = np.where(divisor == 0, -1, quotient)
        return quotient.astype(np.int32).view(np.uint32)

    @staticmethod
    def _signed_rem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dividend = _i32(a).astype(np.int64)
        divisor = _i32(b).astype(np.int64)
        safe = np.where(divisor == 0, 1, divisor)
        quotient = np.trunc(dividend / safe).astype(np.int64)
        remainder = dividend - quotient * safe
        remainder = np.where(divisor == 0, dividend, remainder)
        return remainder.astype(np.int32).view(np.uint32)

    # ------------------------------------------------------------------
    # Instruction execution with masking and trace recording.
    # ------------------------------------------------------------------
    def _execute_instruction(self, inst: Instruction, mask: np.ndarray, block_id: int) -> None:
        op = inst.opcode
        values = [self._value_of(s) for s in inst.srcs]
        varying = any(
            isinstance(s, SpecialReg) and s in _VARYING_SPECIALS for s in inst.srcs
        )
        scalar_nonreg = sum(
            1
            for s in inst.srcs
            if isinstance(s, Imm)
            or (isinstance(s, SpecialReg) and s not in _VARYING_SPECIALS)
        )
        addresses: np.ndarray | None = None

        if op in (Opcode.LD_GLOBAL, Opcode.LD_SHARED):
            addresses = values[0].copy()
            memory = self.global_memory if op is Opcode.LD_GLOBAL else self.shared_memory
            computed = memory.load(addresses, mask)
        elif op in (Opcode.ST_GLOBAL, Opcode.ST_SHARED):
            addresses = values[0].copy()
            memory = self.global_memory if op is Opcode.ST_GLOBAL else self.shared_memory
            memory.store(addresses, values[1], mask)
            computed = None
        else:
            computed = self._compute(inst, values)

        dst_snapshot: np.ndarray | None = None
        if inst.dst is not None and computed is not None:
            register = self.registers[inst.dst.index]
            np.copyto(register, computed, where=mask)
            dst_snapshot = register.copy()

        self.trace.append(
            TraceEvent(
                opcode=op,
                dst=inst.dst.index if inst.dst is not None else None,
                src_regs=tuple(r.index for r in inst.source_registers),
                active_mask=mask_to_int(mask),
                block_id=block_id,
                dst_values=dst_snapshot,
                addresses=addresses,
                varying_special_src=varying,
                scalar_nonreg_srcs=scalar_nonreg,
            )
        )

    # ------------------------------------------------------------------
    # SIMT-stack main loop.
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the warp has executed to completion."""
        return self._stack is not None and not self._stack

    def run_until_barrier(self) -> str:
        """Execute until the next CTA barrier or completion.

        Returns ``"barrier"`` when paused at a ``bar.sync`` (call again
        to continue past it once the CTA coordinator releases it) or
        ``"done"`` when the warp finished.
        """
        if self._stack is None:
            initial = self.identity.initial_mask()
            if not initial.any():
                self._stack = []
                return "done"
            self._stack = [_StackEntry(pc=0, rpc=EXIT_NODE, mask=initial)]
        stack = self._stack
        while stack:
            entry = stack[-1]
            if entry.pc == entry.rpc or entry.pc == EXIT_NODE:
                stack.pop()
                continue
            block = self.kernel.blocks[entry.pc]
            paused = self._execute_block_body(entry, block)
            if paused:
                return "barrier"
            entry.inst_index = 0
            terminator = block.terminator
            if isinstance(terminator, Jump):
                entry.pc = terminator.target
            elif isinstance(terminator, Exit):
                entry.pc = EXIT_NODE
            elif isinstance(terminator, Branch):
                cond = self.registers[terminator.cond.index]
                taken_mask = entry.mask & (cond != 0)
                not_taken_mask = entry.mask & ~taken_mask
                self.trace.append(
                    TraceEvent(
                        opcode=Opcode.BRA,
                        dst=None,
                        src_regs=(terminator.cond.index,),
                        active_mask=mask_to_int(entry.mask),
                        block_id=block.block_id,
                    )
                )
                self._executed += 1
                if not not_taken_mask.any():
                    entry.pc = terminator.taken
                elif not taken_mask.any():
                    entry.pc = terminator.not_taken
                else:
                    reconvergence = self.ipdom[block.block_id]
                    entry.pc = reconvergence
                    stack.append(
                        _StackEntry(
                            pc=terminator.not_taken, rpc=reconvergence, mask=not_taken_mask
                        )
                    )
                    stack.append(
                        _StackEntry(pc=terminator.taken, rpc=reconvergence, mask=taken_mask)
                    )
                    if len(stack) > self.max_stack_depth:
                        self.max_stack_depth = len(stack)
            else:
                raise ExecutionError(f"unknown terminator {terminator!r}")
        return "done"

    def _execute_block_body(self, entry: _StackEntry, block) -> bool:
        """Run the block's instructions from the entry's resume point.

        Returns True when paused at a barrier (resume point advanced
        past it), False when the block body completed.
        """
        instructions = block.instructions
        while entry.inst_index < len(instructions):
            inst = instructions[entry.inst_index]
            if inst.opcode is Opcode.BAR:
                if not np.array_equal(entry.mask, self.identity.initial_mask()):
                    raise ExecutionError(
                        f"warp {self.identity.warp_id}: bar.sync under a "
                        "divergent mask is undefined behaviour "
                        f"(kernel {self.kernel.name!r}, block {block.block_id})"
                    )
                self.trace.append(
                    TraceEvent(
                        opcode=Opcode.BAR,
                        dst=None,
                        src_regs=(),
                        active_mask=mask_to_int(entry.mask),
                        block_id=block.block_id,
                    )
                )
                self._executed += 1
                entry.inst_index += 1
                return True
            self._execute_instruction(inst, entry.mask, block.block_id)
            self._executed += 1
            if self._executed > self.max_instructions:
                raise ExecutionError(
                    f"warp {self.identity.warp_id} exceeded "
                    f"{self.max_instructions} dynamic instructions "
                    f"(kernel {self.kernel.name!r}: runaway loop?)"
                )
            entry.inst_index += 1
        return False

    def run(self) -> WarpTrace:
        """Execute the warp to completion (barriers pass trivially).

        Standalone execution treats each barrier as immediately
        satisfied — valid only for single-warp CTAs; multi-warp barrier
        coordination is :func:`run_kernel`'s job.
        """
        while self.run_until_barrier() == "barrier":
            pass
        return self.trace


def run_kernel(
    kernel: Kernel,
    launch: LaunchConfig,
    memory: MemoryImage,
    warp_size: int = 32,
    max_warp_instructions: int = 2_000_000,
) -> KernelTrace:
    """Execute a kernel launch and return its full dynamic trace.

    ``memory`` is the global memory image (mutated in place by stores).
    Each CTA gets a private, zero-initialized shared-memory image.
    Warps of a CTA synchronize at ``bar.sync``: every warp runs to its
    next barrier (or completion) before any warp continues past it, so
    pre-barrier shared-memory writes are visible after the barrier.
    """
    ipdom = immediate_postdominators(kernel)
    trace = KernelTrace(kernel_name=kernel.name, warp_size=warp_size)
    by_cta: dict[int, list[WarpExecutor]] = {}
    shared_by_cta: dict[int, MemoryImage] = {}
    for identity in enumerate_warps(launch, warp_size):
        shared = by_cta.setdefault(identity.cta_id, [])
        cta_shared = shared_by_cta.setdefault(identity.cta_id, MemoryImage())
        executor = WarpExecutor(
            kernel=kernel,
            identity=identity,
            global_memory=memory,
            shared_memory=cta_shared,
            ipdom=ipdom,
            max_instructions=max_warp_instructions,
        )
        shared.append(executor)
    telemetry = get_telemetry()
    with telemetry.span(
        f"execute:{kernel.name}", cat="kernel", kernel=kernel.name, warp_size=warp_size
    ):
        for cta_id, executors in by_cta.items():
            _run_cta(kernel, cta_id, executors)
            for executor in executors:
                trace.warps.append(executor.trace)
                if telemetry.enabled:
                    record_warp_trace(
                        telemetry, executor.trace, executor.max_stack_depth
                    )
    return trace


def _run_cta(kernel: Kernel, cta_id: int, executors: list["WarpExecutor"]) -> None:
    """Drive one CTA's warps with barrier coordination."""
    telemetry = get_telemetry()
    pending = list(executors)
    while pending:
        if telemetry.enabled:
            # One span per barrier-to-barrier execution segment of each
            # warp: the Chrome trace shows the CTA's warps on their own
            # rows (tid = warp id), one box per segment.
            statuses = []
            for executor in pending:
                with telemetry.span(
                    f"warp{executor.identity.warp_id}",
                    cat="warp",
                    tid=executor.identity.warp_id + 1,
                    cta=cta_id,
                ):
                    statuses.append(executor.run_until_barrier())
        else:
            statuses = [executor.run_until_barrier() for executor in pending]
        at_barrier = [
            executor
            for executor, status in zip(pending, statuses)
            if status == "barrier"
        ]
        finished = [
            executor
            for executor, status in zip(pending, statuses)
            if status == "done"
        ]
        if at_barrier and finished:
            raise ExecutionError(
                f"kernel {kernel.name!r}, CTA {cta_id}: warps "
                f"{[e.identity.warp_id for e in finished]} exited while "
                f"{[e.identity.warp_id for e in at_barrier]} wait at a "
                "barrier (barrier divergence across warps)"
            )
        pending = at_barrier
