"""``srad_2`` (SR2) proxy.

Signature reproduced: the second SRAD kernel — applies the diffusion
update using neighbour coefficients (vector float work on similar
values), with a smaller divergent fraction than SR1 and a heavier
store tail.  Scalar population comes from the shared time-step
constants.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    OUTPUT_B,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 808


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the SR2 proxy at the given scale."""
    b = KernelBuilder("srad_2")
    tid = b.tid()
    dt = load_broadcast(b, PARAMS_BASE)  # scalar time step
    scale_c = load_broadcast(b, PARAMS_BASE + 4)
    flag = load_thread_flag(b, tid)
    at_border = b.setne(flag, 0)
    image = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    coeff_e = b.ld_global(thread_element_addr(b, tid, INPUT_B))
    coeff_s = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_B), 4))

    with b.for_range(0, scale.inner_iterations) as _sweep:
        step_gain = b.fmul(dt, scale_c)  # ALU scalar
        quarter = b.fmul(step_gain, b.fimm(0.25))  # ALU scalar
        flux = b.fadd(coeff_e, coeff_s)  # vector
        delta = b.fmul(flux, quarter)  # vector
        image = b.fadd(image, delta, dst=image)
        with b.if_(at_border):
            # Border: renormalize with the scalar gain (divergent scalar).
            renorm = b.fmul(step_gain, b.fimm(0.5))
            bounded = b.fmin(renorm, dt)
            coeff_e = b.fadd(coeff_e, bounded, dst=coeff_e)
        coeff_s = b.fmul(coeff_s, b.fimm(0.995), dst=coeff_s)
        b.st_global(thread_element_addr(b, tid, OUTPUT_B), delta)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), image)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads, 0.55, 0.015, _SEED)
    )
    memory.bind_array(
        INPUT_B, datagen.narrow_floats(total_threads + 2, 0.2, 0.01, _SEED + 1)
    )
    memory.bind_array(PARAMS_BASE, np.array([0.05, 1.5], dtype=np.float32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.5, _SEED + 2),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="SRAD update kernel with scalar time-step chain",
    )
