"""Classification-engine microbenchmark: batch vs per-event.

Executes each requested benchmark once (the trace is reused across
timed repetitions), then times the classification stage under both
engines — :func:`repro.scalar.tracker.classify_trace` (the per-event
reference path) and :func:`repro.scalar.batch.classify_trace_batch`
(the vectorized engine) — and reports median seconds plus the speedup
ratio.  Before timing, the two engines' outputs are checked for
equality on every benchmark, so a reported speedup can never come from
a divergent result.

Prints a JSON object (also written to ``--json`` when given; the
committed ``BENCH_classify.json`` at the repo root is this output) and
exits non-zero when any benchmark's speedup falls below
``--min-speedup`` — which makes the command directly usable as the CI
perf-smoke gate.  Usage::

    PYTHONPATH=src python -m repro.scalar.bench BP LC --scale default \
        --min-speedup 2.0 --json BENCH_classify.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable

from repro.scalar.batch import classify_trace_batch
from repro.scalar.tracker import classify_trace, trace_statistics
from repro.simt.executor import run_kernel
from repro.simt.trace import KernelTrace
from repro.workloads.registry import SCALES, build_workload

DEFAULT_BENCHMARKS = ("BP", "LC")


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def measure(benchmark: str, scale: str, repeats: int) -> dict:
    """Median classify seconds per engine for one benchmark."""
    built = build_workload(benchmark, scale)
    trace: KernelTrace = run_kernel(built.kernel, built.launch, built.memory)
    num_registers = built.kernel.num_registers

    # Equivalence gate: identical statistics (class counts, divergence,
    # decompress-moves) or the timing numbers are meaningless.
    event_stats = trace_statistics(classify_trace(trace, num_registers))
    batch_stats = trace_statistics(classify_trace_batch(trace, num_registers))
    if event_stats != batch_stats:
        raise AssertionError(
            f"{benchmark}: engines disagree — event {event_stats} "
            f"!= batch {batch_stats}"
        )

    event_seconds = _median_seconds(
        lambda: classify_trace(trace, num_registers), repeats
    )
    batch_seconds = _median_seconds(
        lambda: classify_trace_batch(trace, num_registers), repeats
    )
    return {
        "benchmark": benchmark,
        "scale": scale,
        "repeats": repeats,
        "events": trace.total_instructions,
        "event_seconds": round(event_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(event_seconds / batch_seconds, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scalar.bench",
        description="Benchmark batch vs per-event classification.",
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        default=list(DEFAULT_BENCHMARKS),
        help=f"workload abbreviations (default: {' '.join(DEFAULT_BENCHMARKS)})",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="workload problem size (default: default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        metavar="N",
        help="timed repetitions per engine; medians are reported (default: 5)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless every benchmark's batch speedup is >= X",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report to PATH",
    )
    args = parser.parse_args(argv)
    benchmarks = [name.strip().upper() for name in args.benchmarks]

    results = [measure(name, args.scale, args.repeats) for name in benchmarks]
    worst = min(result["speedup"] for result in results)
    report = {
        "scale": args.scale,
        "repeats": args.repeats,
        "min_speedup_required": args.min_speedup,
        "worst_speedup": worst,
        "results": results,
    }
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.json is not None:
        with open(args.json, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"[wrote report to {args.json}]", file=sys.stderr)
    if args.min_speedup is not None and worst < args.min_speedup:
        print(
            f"FAIL: worst speedup {worst:.2f}x < required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
