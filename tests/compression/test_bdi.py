"""Unit + property tests for the BDI comparison compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bdi import (
    BdiMode,
    bdi_bytes_accessed,
    bdi_compress,
    bdi_decompress,
)
from repro.errors import CompressionError


class TestModes:
    def test_repeated(self):
        compressed = bdi_compress(np.full(32, 99, dtype=np.uint32))
        assert compressed.mode is BdiMode.REPEATED
        assert compressed.total_bits == 34

    def test_delta1(self):
        values = np.uint32(1000) + np.arange(32, dtype=np.uint32)
        compressed = bdi_compress(values)
        assert compressed.mode is BdiMode.DELTA1

    def test_delta2(self):
        values = np.uint32(1000) + 300 * np.arange(32, dtype=np.uint32)
        compressed = bdi_compress(values)
        assert compressed.mode is BdiMode.DELTA2

    def test_uncompressed(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(np.uint32)
        compressed = bdi_compress(values)
        assert compressed.mode is BdiMode.UNCOMPRESSED

    def test_negative_deltas(self):
        values = np.uint32(1000) - np.arange(32, dtype=np.uint32)
        assert bdi_compress(values).mode is BdiMode.DELTA1

    def test_modular_wraparound_delta(self):
        # Base near 2^32; values wrap around zero -> small modular deltas.
        values = (np.uint32(0xFFFFFFF0) + np.arange(32, dtype=np.uint32))
        assert bdi_compress(values).mode is BdiMode.DELTA1

    def test_2d_input_rejected(self):
        with pytest.raises(CompressionError):
            bdi_compress(np.zeros((2, 2), dtype=np.uint32))


class TestBytesAccessed:
    def test_compressed_access_counts_base_and_deltas(self):
        values = np.uint32(1000) + np.arange(32, dtype=np.uint32)
        compressed = bdi_compress(values)
        assert bdi_bytes_accessed(compressed) == 4 + 32

    def test_uncompressed_access_moves_everything(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**32, size=32, dtype=np.uint64).astype(np.uint32)
        assert bdi_bytes_accessed(bdi_compress(values)) == 128


lane_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=32, max_size=32
).map(lambda xs: np.array(xs, dtype=np.uint32))


@settings(max_examples=200, deadline=None)
@given(values=lane_arrays)
def test_round_trip_property(values):
    assert np.array_equal(bdi_decompress(bdi_compress(values)), values)


@settings(max_examples=100, deadline=None)
@given(values=lane_arrays)
def test_compressed_never_larger_than_raw_plus_tag(values):
    compressed = bdi_compress(values)
    assert compressed.total_bits <= 32 * 32 + 2


@settings(max_examples=100, deadline=None)
@given(
    base=st.integers(min_value=0, max_value=2**32 - 1),
    deltas=st.lists(
        st.integers(min_value=0, max_value=127), min_size=32, max_size=32
    ),
)
def test_byte_deltas_always_compress(base, deltas):
    # BDI deltas are taken against lane 0, so offsets in [0, 127] keep
    # every lane-0-relative delta within one signed byte.
    deltas[0] = 0
    values = ((base + np.array(deltas, dtype=np.int64)) % 2**32).astype(np.uint32)
    compressed = bdi_compress(values)
    assert compressed.mode in (BdiMode.REPEATED, BdiMode.DELTA1)
