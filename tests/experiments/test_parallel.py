"""Tests for the process-pool experiment engine.

The heavyweight guarantee — parallel prefetch produces *bit-identical*
figure data to the serial in-process path (DESIGN §5 determinism) — is
checked on a benchmark subset at tiny scale so the pool spin-up stays
cheap inside the unit suite.
"""

import pytest

from repro.analysis.halfwarp import chunk_scalar_stats
from repro.experiments.parallel import MatrixTask, execute_task, run_matrix
from repro.experiments.runner import ExperimentRunner, paper_architectures

SUBSET = ["HS", "PF"]


class TestExecuteTask:
    def test_worker_fills_cache_and_reports_stats(self, tmp_path):
        task = MatrixTask(
            abbr="HS",
            scale="tiny",
            cache_dir=str(tmp_path),
            warp_sizes=(32, 64),
            arches=(paper_architectures()[0],),
            config=None,
            params=None,
        )
        stats = execute_task(task)
        assert stats["counters"]["trace_executions"] == 2  # warp 32 + 64
        assert (tmp_path / "HS_tiny.v5.json").exists()
        assert (tmp_path / "HS_tiny_w64.v5.json").exists()
        assert (tmp_path / "HS_tiny_classified.pkl").exists()
        assert (tmp_path / "HS_tiny_results_baseline.pkl").exists()


class TestRunMatrix:
    def test_parallel_matrix_matches_serial(self, tmp_path):
        serial = ExperimentRunner(scale="tiny")
        stats = run_matrix(
            names=SUBSET,
            scale="tiny",
            cache_dir=tmp_path,
            jobs=2,
            warp_sizes=(32, 64),
        )
        assert stats.trace_executions == 2 * len(SUBSET)
        parallel = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        for abbr in SUBSET:
            run_s = serial.run(abbr)
            run_p = parallel.run(abbr)
            masks_s = [e.active_mask for e in run_s.trace.all_events()]
            masks_p = [e.active_mask for e in run_p.trace.all_events()]
            assert masks_s == masks_p
            # Figure-10 data: chunk-scalar fractions from both warp sizes.
            for warp_size in (32, 64):
                trace_s = serial.trace_with_warp_size(abbr, warp_size)
                trace_p = parallel.trace_with_warp_size(abbr, warp_size)
                assert (
                    chunk_scalar_stats(trace_s, 16).chunk_scalar_fraction
                    == chunk_scalar_stats(trace_p, 16).chunk_scalar_fraction
                )
            # Figure-11 data: power efficiency on every architecture.
            for arch in paper_architectures():
                report_s = serial.power(abbr, arch)
                report_p = parallel.power(abbr, arch)
                assert report_s.ipc_per_watt == report_p.ipc_per_watt
                assert report_s.cycles == report_p.cycles
        # The parent replayed everything from cache: no re-execution.
        assert parallel.stats.trace_executions == 0

    def test_progress_callback_sees_every_benchmark(self, tmp_path):
        seen = []
        run_matrix(
            names=SUBSET,
            scale="tiny",
            cache_dir=tmp_path,
            jobs=2,
            warp_sizes=(32,),
            arches=(),
            progress=lambda abbr, done, total: seen.append((abbr, done, total)),
        )
        assert sorted(abbr for abbr, _, _ in seen) == sorted(SUBSET)
        assert [done for _, done, _ in seen] == [1, 2]
        assert all(total == len(SUBSET) for _, _, total in seen)


class TestPrefetch:
    def test_parallel_prefetch_requires_cache_dir(self):
        runner = ExperimentRunner(scale="tiny")
        with pytest.raises(ValueError, match="cache_dir"):
            runner.prefetch(names=SUBSET, jobs=2)

    def test_serial_prefetch_without_cache_dir(self):
        runner = ExperimentRunner(scale="tiny")
        stats = runner.prefetch(names=["HS"], jobs=1, arches=())
        assert stats.trace_executions == 1
        assert "HS" in runner._runs

    def test_warm_prefetch_reports_zero_reexecutions(self, tmp_path):
        cold = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        cold.prefetch(names=SUBSET, jobs=2, warp_sizes=(32, 64))
        assert cold.stats.trace_executions == 2 * len(SUBSET)
        warm = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        warm.prefetch(names=SUBSET, jobs=2, warp_sizes=(32, 64))
        assert warm.stats.trace_executions == 0
        assert warm.stats.counters["trace_cache_hits"] >= 2 * len(SUBSET)

    def test_prefetch_normalizes_names(self, tmp_path):
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        runner.prefetch(names=["hs"], jobs=1, arches=())
        assert (tmp_path / "HS_tiny.v5.json").exists()
        assert runner.run("HS").abbr == "HS"
        assert runner.stats.trace_executions == 1
