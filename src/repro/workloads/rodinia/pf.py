"""``pathfinder`` (PF) proxy.

Signature reproduced: the dynamic-programming row relaxation — each
thread loads its three upstream costs (small integers, so registers
share their top three bytes), takes a min-chain, and a modest fraction
of warps diverge at the grid edge where the shared penalty constant is
applied (divergent-scalar work).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 606


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the PF proxy at the given scale."""
    rows = 2 * scale.inner_iterations
    b = KernelBuilder("pathfinder")
    tid = b.tid()
    penalty = load_broadcast(b, PARAMS_BASE)  # scalar edge penalty
    cost = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    flag = load_thread_flag(b, tid)
    at_edge = b.setne(flag, 0)

    with b.for_range(0, rows) as row:
        row_base = b.imad(row, 4, INPUT_B)  # scalar address math
        left = b.ld_global(b.imad(tid, 4, row_base))
        center = b.ld_global(b.iadd(b.imad(tid, 4, row_base), 4))
        right = b.ld_global(b.iadd(b.imad(tid, 4, row_base), 8))
        best = b.imin(left, center)
        best = b.imin(best, right, dst=best)
        with b.if_(at_edge) as branch:
            # Edge path: shared penalty chain (divergent scalar).
            doubled = b.imul(penalty, 2)
            capped = b.imin(doubled, b.mov(255))
            cost = b.iadd(cost, capped, dst=cost)
            with branch.else_():
                cost = b.iadd(cost, best, dst=cost)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), cost)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(INPUT_A, datagen.small_ints(total_threads, 64, _SEED))
    memory.bind_array(
        INPUT_B, datagen.small_ints(total_threads + rows + 2, 64, _SEED + 1)
    )
    memory.bind_array(PARAMS_BASE, np.array([9], dtype=np.uint32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.62, _SEED + 2),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="DP row relaxation over small-integer costs",
    )
