"""Compression explorer: byte-wise prefix coding vs BDI, value by value.

Feeds characteristic value patterns through both compressors and prints
what each stores — a hands-on version of the paper's Figure 2 example
and the §5.3 ours-vs-BDI comparison.

Run with:  python examples/compression_explorer.py
"""

import numpy as np

from repro.compression import (
    bdi_bytes_accessed,
    bdi_compress,
    common_prefix_bytes,
    compress,
    compress_halves,
    decompress,
)
from repro.regfile import ByteRotatedLayout


def show(name, values):
    values = np.ascontiguousarray(values, dtype=np.uint32)
    ours = compress(values)
    bdi = bdi_compress(values)
    layout = ByteRotatedLayout()
    arrays = layout.arrays_for_compressed_access(ours.enc)
    halves = compress_halves(values)
    assert np.array_equal(decompress(ours), values)  # round-trip check

    print(f"\n{name}")
    print(f"  lanes[0:4]        : {[hex(int(v)) for v in values[:4]]}")
    print(f"  ours: enc={ours.enc} ({'scalar' if ours.enc == 4 else f'{ours.enc}-byte prefix'}), "
          f"{ours.total_bits} bits stored, ratio {ours.compression_ratio:.2f}x, "
          f"{arrays}/8 SRAM arrays activated")
    print(f"  halves: enc_lo={halves.enc_lo} enc_hi={halves.enc_hi} "
          f"FS={halves.full_scalar}")
    print(f"  BDI : mode={bdi.mode.value}, {bdi.total_bits} bits, "
          f"ratio {bdi.compression_ratio:.2f}x, "
          f"{bdi_bytes_accessed(bdi)} bytes/access")


def main():
    lanes = np.arange(32, dtype=np.uint32)

    show("Figure 2's example (C04039C0, C04039C2, ...)",
         0xC04039C0 + 2 * lanes)

    show("scalar register (a broadcast kernel parameter)",
         np.full(32, 0x3F8CCCCD, dtype=np.uint32))

    show("per-half scalars (two 16-lane groups, distinct values)",
         np.where(lanes < 16, 0x11111111, 0x22222222).astype(np.uint32))

    show("coalesced addresses (base + tid*4)",
         0x80041000 + 4 * lanes)

    show("narrow-range floats (temperatures ~330K)",
         (330.0 + 0.01 * lanes.astype(np.float32)).view(np.uint32))

    show("BDI-friendly, byte-hostile: +200 strides cross byte boundaries",
         0x00010000 + 200 * lanes)

    show("uncompressible noise",
         np.random.default_rng(0).integers(0, 2**32, 32, dtype=np.uint64)
         .astype(np.uint32))

    print(
        "\nNote the '+200 strides' row: BDI wins there (delta2 fits, byte"
        "\nprefix does not) — the 'special cases' §3.1 concedes to BDI,"
        "\ntraded for a far simpler circuit (Table 3)."
    )


if __name__ == "__main__":
    main()
