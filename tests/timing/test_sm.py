"""Behavioural tests for the cycle-level SM simulator."""

import pytest

from repro.config import GpuConfig
from repro.errors import TimingError
from repro.isa.opcodes import OpCategory
from repro.timing.ops import SCALAR_RF_BANK, TimingOp
from repro.timing.sm import ALU_LATENCY, SmSimulator

CONFIG = GpuConfig()


def alu_op(dst=None, srcs=(), banks=None, dispatch=2, inserted=False):
    banks = tuple(banks) if banks is not None else tuple(r % 16 for r in srcs)
    return TimingOp(
        category=OpCategory.ALU,
        dst=dst,
        src_regs=tuple(srcs),
        src_banks=banks,
        dispatch_cycles=dispatch,
        long_latency=False,
        is_store=False,
        inserted=inserted,
    )


def mem_op(dst, addr_reg, segments=(0,)):
    return TimingOp(
        category=OpCategory.MEM,
        dst=dst,
        src_regs=(addr_reg,),
        src_banks=(addr_reg % 16,),
        dispatch_cycles=max(2, len(segments)),
        long_latency=False,
        is_store=False,
        mem_segments=tuple(segments),
    )


class TestBasics:
    def test_empty_simulation(self):
        result = SmSimulator([], CONFIG).run()
        assert result.cycles == 0
        assert result.instructions == 0

    def test_single_op_completes(self):
        result = SmSimulator([[alu_op(dst=0)]], CONFIG).run()
        assert result.instructions == 1
        assert result.cycles >= 2

    def test_all_warps_complete(self):
        warps = [[alu_op(dst=0), alu_op(dst=1, srcs=(0,))] for _ in range(8)]
        result = SmSimulator(warps, CONFIG).run()
        assert result.instructions == 16

    def test_empty_warps_handled(self):
        warps = [[], [alu_op(dst=0)], []]
        result = SmSimulator(warps, CONFIG).run()
        assert result.instructions == 1

    def test_more_warps_than_residency(self):
        warps = [[alu_op(dst=0)] for _ in range(60)]  # > 48 resident
        result = SmSimulator(warps, CONFIG).run()
        assert result.instructions == 60


class TestDependencies:
    def test_dependent_chain_pays_latency(self):
        chain = [alu_op(dst=0)]
        for _ in range(4):
            chain.append(alu_op(dst=0, srcs=(0,)))
        result = SmSimulator([chain], CONFIG).run()
        # Five ops, each waiting for the previous write-back.
        assert result.cycles >= 5 * ALU_LATENCY

    def test_independent_ops_pipeline(self):
        independent = [alu_op(dst=i) for i in range(10)]
        dependent = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(9)]
        fast = SmSimulator([independent], CONFIG).run()
        slow = SmSimulator([dependent], CONFIG).run()
        assert fast.cycles < slow.cycles

    def test_extra_latency_slows_dependent_chain(self):
        chain = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(9)]
        base = SmSimulator([chain], CONFIG).run()
        stretched = SmSimulator([chain], CONFIG, extra_latency=3).run()
        assert stretched.cycles >= base.cycles + 3 * 9


class TestStructuralHazards:
    def test_scalar_bank_serializes(self):
        # Many warps all reading two scalar-RF operands per op.
        warps = [
            [alu_op(dst=1, srcs=(2, 3), banks=(SCALAR_RF_BANK, SCALAR_RF_BANK))
             for _ in range(5)]
            for _ in range(8)
        ]
        conflicted = SmSimulator(warps, CONFIG).run()
        assert conflicted.scalar_bank_conflicts > 0

    def test_bank_conflicts_counted(self):
        # Two source registers in the same bank conflict.
        warps = [[alu_op(dst=1, srcs=(0, 16))] for _ in range(4)]  # both bank 0
        result = SmSimulator(warps, CONFIG).run()
        assert result.bank_conflict_cycles > 0

    def test_memory_latency_observed(self):
        warp = [mem_op(dst=0, addr_reg=1), alu_op(dst=2, srcs=(0,))]
        result = SmSimulator([warp], CONFIG).run()
        # Cold DRAM access: hundreds of cycles before the dependent op.
        assert result.cycles > 300
        assert result.memory_counts.dram_accesses == 1

    def test_deadlock_guard_raises(self):
        with pytest.raises(TimingError, match="exceeded"):
            chain = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(50)]
            SmSimulator([chain], CONFIG).run(max_cycles=10)


class TestCounting:
    def test_inserted_ops_excluded_from_useful(self):
        warp = [alu_op(dst=0, inserted=True), alu_op(dst=1)]
        result = SmSimulator([warp], CONFIG).run()
        assert result.instructions == 2
        assert result.useful_instructions == 1
        assert result.ipc < result.raw_ipc

    def test_issue_split_across_schedulers(self):
        warps = [[alu_op(dst=0)] for _ in range(8)]
        result = SmSimulator(warps, CONFIG).run()
        assert len(result.issued_per_scheduler) == 2
        assert sum(result.issued_per_scheduler) == 8
        assert all(count == 4 for count in result.issued_per_scheduler)


class TestStallBreakdown:
    def test_dependent_chain_reports_no_ready_stalls(self):
        chain = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(5)]
        result = SmSimulator([chain], CONFIG).run()
        assert result.stalls.no_ready_warp > 0
        assert result.stalls.total >= result.stalls.no_ready_warp

    def test_collector_pressure_reported(self):
        # Many independent warps flood the 16-entry collector pool.
        independent = [[alu_op(dst=i % 8) for i in range(10)] for _ in range(8)]
        result = SmSimulator(independent, CONFIG).run()
        assert result.stalls.collectors_full > 0

    def test_stall_accounting_tiles_issue_slots_exactly(self):
        chain = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(5)]
        result = SmSimulator([chain], CONFIG).run()
        # Every issue slot (cycles × schedulers) is either an issue or
        # exactly one attributed stall — skipped-ahead dead cycles
        # included, since the skip replays each scheduler's cause.
        assert (
            result.stalls.total + sum(result.issued_per_scheduler)
            == result.cycles * CONFIG.schedulers_per_sm
        )


class TestConfigurableLatencies:
    def test_module_constants_alias_config_defaults(self):
        from repro.timing.sm import (
            CTRL_LATENCY,
            LONG_ALU_LATENCY,
            SFU_LATENCY,
        )

        config = GpuConfig()
        assert ALU_LATENCY == config.alu_latency
        assert LONG_ALU_LATENCY == config.long_alu_latency
        assert SFU_LATENCY == config.sfu_latency
        assert CTRL_LATENCY == config.ctrl_latency

    def test_longer_alu_latency_slows_dependent_chain(self):
        def run(config):
            ops = [
                alu_op(dst=1, dispatch=2),
                alu_op(dst=2, srcs=(1,), dispatch=2),
            ]
            return SmSimulator([ops], config).run().cycles

        # A dependent chain pays the write-back latency twice, so
        # raising it must strictly grow the cycle count.
        slow = run(GpuConfig(alu_latency=40))
        fast = run(GpuConfig(alu_latency=4))
        assert slow > fast
