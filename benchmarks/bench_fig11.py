"""Regenerate Figure 11: normalized power efficiency and performance.

Paper: G-Scalar improves IPC/W by 24% over baseline and 15% over the
ALU-scalar architecture; BP peaks at +79%; the +3-cycle pipeline
stretch costs 1.7% IPC on average with LC hit hardest.
"""

from repro.experiments import fig11

from conftest import run_once


def bench_fig11(benchmark, shared_runner):
    data = run_once(benchmark, fig11.compute, shared_runner)
    print()
    print(fig11.render(data))

    # Headline efficiency ordering: G-Scalar > ALU-scalar > baseline.
    assert data.average_gscalar_efficiency > 1.08
    assert data.average_gscalar_efficiency > data.average_alu_scalar_efficiency
    assert data.average_alu_scalar_efficiency > 1.0

    by_abbr = {row.abbr: row for row in data.rows}
    # BP is the top gainer (scalar SFU chains).
    bp_gain = by_abbr["BP"].normalized_efficiency("gscalar")
    assert bp_gain == max(r.normalized_efficiency("gscalar") for r in data.rows)
    assert bp_gain > 1.4

    # Memory-intensive LBM gains less than 20% (§5.3).
    assert by_abbr["LBM"].normalized_efficiency("gscalar") < 1.20

    # Performance: small average loss; LC (low occupancy + integer DIV)
    # is the most degraded benchmark (§5.4).
    assert 0.85 < data.average_gscalar_ipc < 1.02
    lc_ipc = by_abbr["LC"].normalized_ipc("gscalar")
    assert lc_ipc < 0.96  # LC pays visibly for the +3 cycles
    degraded = sorted(r.normalized_ipc("gscalar") for r in data.rows)
    assert lc_ipc <= degraded[len(degraded) // 2]  # bottom half

    # Divergent-scalar support helps the divergent benchmarks.
    for abbr in ("HW", "SAD", "BT"):
        row = by_abbr[abbr]
        assert row.normalized_efficiency("gscalar") >= row.normalized_efficiency(
            "gscalar_no_divergent"
        )
