"""Unit tests for grid/warp decomposition and mask helpers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simt.grid import (
    LaunchConfig,
    enumerate_warps,
    int_to_mask,
    mask_to_int,
    popcount,
)


class TestLaunchConfig:
    def test_totals(self):
        launch = LaunchConfig(grid_dim=3, cta_dim=128)
        assert launch.total_threads == 384
        assert launch.warps_per_cta(32) == 4
        assert launch.total_warps(32) == 12

    def test_ragged_cta_rounds_up(self):
        launch = LaunchConfig(grid_dim=1, cta_dim=33)
        assert launch.warps_per_cta(32) == 2

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigError):
            LaunchConfig(grid_dim=0, cta_dim=32)
        with pytest.raises(ConfigError):
            LaunchConfig(grid_dim=1, cta_dim=0)


class TestWarpEnumeration:
    def test_identities(self):
        warps = enumerate_warps(LaunchConfig(grid_dim=2, cta_dim=64), 32)
        assert len(warps) == 4
        assert warps[0].first_thread == 0
        assert warps[1].first_thread == 32
        assert warps[2].cta_id == 1
        assert warps[2].first_thread == 64
        assert warps[3].warp_in_cta == 1

    def test_global_thread_ids(self):
        warps = enumerate_warps(LaunchConfig(grid_dim=2, cta_dim=32), 32)
        ids = warps[1].global_thread_ids()
        assert ids[0] == 32
        assert ids[-1] == 63

    def test_partial_warp_mask(self):
        warps = enumerate_warps(LaunchConfig(grid_dim=1, cta_dim=40), 32)
        assert warps[0].initial_mask().all()
        tail = warps[1].initial_mask()
        assert tail[:8].all()
        assert not tail[8:].any()

    def test_invalid_warp_size_rejected(self):
        with pytest.raises(ConfigError):
            enumerate_warps(LaunchConfig(grid_dim=1, cta_dim=32), 0)


class TestMaskConversion:
    def test_round_trip(self):
        mask = np.array([True, False] * 16)
        bits = mask_to_int(mask)
        assert bits == 0x55555555
        assert np.array_equal(int_to_mask(bits, 32), mask)

    def test_empty_and_full(self):
        assert mask_to_int(np.zeros(32, dtype=bool)) == 0
        assert mask_to_int(np.ones(32, dtype=bool)) == 0xFFFFFFFF

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0xFF) == 8
        assert popcount(0x80000001) == 2
