"""Differential tests: event-driven SM engine vs the cycle-level reference.

The event engine's contract is *bit-identical* ``TimingResult`` output —
cycles, instruction counts, memory counters, per-scheduler issue counts,
conflict and stall counters — for any op stream the cycle model accepts.
These tests pin that on every paper workload × architecture, on both
scheduler policies, on barrier-coordinated CTAs and on randomized op
streams.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static_.widths import analyze_widths
from repro.config import GpuConfig, SchedulerPolicy
from repro.errors import TimingError
from repro.experiments.runner import matrix_architectures, paper_architectures
from repro.isa.opcodes import OpCategory
from repro.scalar.architectures import process_classified
from repro.scalar.batch import classify_trace_with
from repro.simt.executor import run_kernel
from repro.timing.gpu import lower_to_timing_ops
from repro.timing.ops import TimingOp
from repro.timing.sm import SmSimulator
from repro.timing.sm_event import (
    DEFAULT_SM_ENGINE,
    SM_ENGINE_CHOICES,
    EventSmSimulator,
    create_sm_simulator,
)
from repro.workloads.registry import all_workloads, build_workload
from tests.timing.test_sm_properties import random_ops

WORKLOADS = [spec.abbr for spec in all_workloads()]


def _assert_identical(ref, got, context: str) -> None:
    if ref == got:
        return
    diffs = []
    for field in dataclasses.fields(ref):
        r, g = getattr(ref, field.name), getattr(got, field.name)
        if r != g:
            diffs.append(f"{field.name}: cycle={r} event={g}")
    raise AssertionError(f"{context}: " + "; ".join(diffs))


def _run_both(warp_ops, config, extra_latency=0, warps_per_cta=None):
    ref = SmSimulator(
        warp_ops, config, extra_latency=extra_latency, warps_per_cta=warps_per_cta
    ).run(max_cycles=2_000_000)
    got = EventSmSimulator(
        warp_ops, config, extra_latency=extra_latency, warps_per_cta=warps_per_cta
    ).run(max_cycles=2_000_000)
    return ref, got


@pytest.fixture(scope="module")
def workload_streams():
    """Per-workload (classified, warp_size, warps_per_cta, static
    widths), traced once.  The width table feeds the static-compression
    architecture's interpretation (``None`` is fine for the others)."""
    streams = {}
    for abbr in WORKLOADS:
        built = build_workload(abbr, "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classified = classify_trace_with(trace, built.kernel.num_registers)
        streams[abbr] = (
            classified,
            trace.warp_size,
            built.launch.warps_per_cta(trace.warp_size),
            analyze_widths(built.kernel, warp_size=trace.warp_size).register_enc,
        )
    return streams


class TestWorkloadDifferential:
    """All 17 workloads × 5 architectures, bit-identical TimingResult.

    ``matrix_architectures()`` is the paper's four plus the
    statically-compressed RF design point; the equality covers every
    ``TimingResult`` field (via ``dataclasses.fields``), so the
    per-scheduler stall-cause attributions are pinned bit-identically
    between the two engines on every pair.
    """

    @pytest.mark.parametrize("abbr", WORKLOADS)
    def test_all_architectures_identical(self, workload_streams, abbr):
        classified, warp_size, warps_per_cta, widths = workload_streams[abbr]
        config = GpuConfig()
        for arch in matrix_architectures():
            processed = process_classified(
                classified,
                arch,
                warp_size,
                static_widths=widths if arch.static_compression else None,
            )
            warp_ops = lower_to_timing_ops(processed, arch, config, warp_size)
            ref, got = _run_both(
                warp_ops,
                config,
                extra_latency=arch.extra_pipeline_cycles,
                warps_per_cta=warps_per_cta,
            )
            _assert_identical(ref, got, f"{abbr}/{arch.name}")

    @pytest.mark.parametrize("abbr", ("BP", "HS"))
    def test_gto_policy_identical(self, workload_streams, abbr):
        classified, warp_size, warps_per_cta, _ = workload_streams[abbr]
        config = GpuConfig(scheduler_policy=SchedulerPolicy.GTO)
        for arch in paper_architectures():
            processed = process_classified(classified, arch, warp_size)
            warp_ops = lower_to_timing_ops(processed, arch, config, warp_size)
            ref, got = _run_both(
                warp_ops,
                config,
                extra_latency=arch.extra_pipeline_cycles,
                warps_per_cta=warps_per_cta,
            )
            _assert_identical(ref, got, f"{abbr}/{arch.name}/GTO")


class TestRandomStreamDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        warps=st.lists(random_ops(), min_size=0, max_size=6),
        policy=st.sampled_from(list(SchedulerPolicy)),
        extra=st.sampled_from([0, 3]),
    )
    def test_random_streams_identical(self, warps, policy, extra):
        config = GpuConfig(scheduler_policy=policy)
        ref, got = _run_both(warps, config, extra_latency=extra)
        _assert_identical(ref, got, f"random/{policy.name}/+{extra}")

    @settings(max_examples=40, deadline=None)
    @given(
        warps=st.lists(random_ops(), min_size=2, max_size=6),
        warps_per_cta=st.sampled_from([1, 2, 3]),
        barriers=st.integers(min_value=1, max_value=2),
    )
    def test_barrier_streams_identical(self, warps, warps_per_cta, barriers):
        barrier = TimingOp(
            category=OpCategory.CTRL,
            dst=None,
            src_regs=(),
            src_banks=(),
            dispatch_cycles=1,
            long_latency=False,
            is_store=False,
            is_barrier=True,
        )
        with_barriers = [list(w) + [barrier] * barriers for w in warps]
        ref, got = _run_both(with_barriers, GpuConfig(), warps_per_cta=warps_per_cta)
        _assert_identical(ref, got, f"barrier/cta{warps_per_cta}")

    @settings(max_examples=25, deadline=None)
    @given(warps=st.lists(random_ops(), min_size=3, max_size=8))
    def test_small_residency_identical(self, warps):
        """Multiple residency generations: more warps than slots."""
        config = GpuConfig(threads_per_sm=64)  # 2 resident warps
        ref, got = _run_both(warps, config)
        _assert_identical(ref, got, "small-residency")


class TestEngineFactory:
    def test_choices_and_default(self):
        assert DEFAULT_SM_ENGINE == "event"
        assert set(SM_ENGINE_CHOICES) == {"event", "cycle"}

    def test_factory_selects_engine(self):
        ops = [[TimingOp(
            category=OpCategory.ALU, dst=0, src_regs=(), src_banks=(),
            dispatch_cycles=2, long_latency=False, is_store=False,
        )]]
        assert isinstance(
            create_sm_simulator("event", ops, GpuConfig()), EventSmSimulator
        )
        assert isinstance(
            create_sm_simulator("cycle", ops, GpuConfig()), SmSimulator
        )

    def test_factory_rejects_unknown_engine(self):
        with pytest.raises(TimingError):
            create_sm_simulator("warp-speed", [], GpuConfig())

    def test_event_engine_validates_like_reference(self):
        with pytest.raises(TimingError):
            EventSmSimulator([], GpuConfig(), extra_latency=-1)
        with pytest.raises(TimingError):
            EventSmSimulator([], GpuConfig(), warps_per_cta=0)

    def test_empty_simulation(self):
        result = EventSmSimulator([], GpuConfig()).run()
        assert result.cycles == 0
        assert result.instructions == 0
