"""Quickstart: write a kernel, run it, and see what G-Scalar does to it.

This walks the full public API in ~60 lines:

1. build a small CUDA-like kernel with :class:`repro.isa.KernelBuilder`,
2. execute it functionally on a 32-wide SIMT machine,
3. classify every dynamic instruction for scalar eligibility,
4. run the cycle-level timing model, and
5. compare power efficiency between the baseline GPU and G-Scalar.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.config import ArchitectureConfig
from repro.isa import KernelBuilder
from repro.power import PowerAccountant
from repro.scalar import ScalarClass, classify_trace, process_classified
from repro.simt import LaunchConfig, MemoryImage, run_kernel
from repro.timing import simulate_architecture


def build_kernel():
    """result[tid] = sigmoid(scale * x[tid]) + 2**iteration, looped."""
    b = KernelBuilder("quickstart")
    tid = b.tid()
    x = b.ld_global(b.imad(tid, 4, 0x1000))  # per-thread input
    scale = b.ld_global(b.mov(0x100))  # broadcast parameter -> scalar!
    acc = b.mov(b.fimm(0.0))
    with b.for_range(0, 4) as k:
        power = b.ex2(b.i2f(k))  # 2**k on the loop counter: scalar SFU
        term = b.fmul(x, b.fmul(scale, power))
        acc = b.fadd(acc, term, dst=acc)
    b.st_global(b.imad(tid, 4, 0x2000), acc)
    return b.finish()


def main():
    kernel = build_kernel()
    print(f"built {kernel}")

    memory = MemoryImage()
    memory.bind_array(0x100, np.array([0.5], dtype=np.float32))
    memory.bind_array(0x1000, np.linspace(0, 1, 256, dtype=np.float32))
    launch = LaunchConfig(grid_dim=2, cta_dim=128)

    trace = run_kernel(kernel, launch, memory)
    print(f"executed {trace.total_instructions} dynamic instructions "
          f"over {len(trace.warps)} warps")

    classified = classify_trace(trace, kernel.num_registers)
    counts = {cls: 0 for cls in ScalarClass}
    for warp_events in classified:
        for item in warp_events:
            counts[item.scalar_class] += 1
    total = trace.total_instructions
    print("\nscalar eligibility (Figure 9 buckets):")
    for cls, count in counts.items():
        if count:
            print(f"  {cls.value:18s} {100 * count / total:5.1f}%")

    print("\narchitecture comparison:")
    for arch in (ArchitectureConfig.baseline(), ArchitectureConfig.gscalar()):
        processed = process_classified(classified, arch, trace.warp_size)
        timing = simulate_architecture(processed, arch)
        report = PowerAccountant(arch).account(processed, timing)
        print(
            f"  {arch.name:10s} ipc={report.ipc:5.2f} "
            f"power={report.total_power_w:5.2f} W/SM "
            f"ipc/W={report.ipc_per_watt:6.3f}"
        )

    result = memory.read_array(0x2000, 4, dtype=np.float32)
    print(f"\nfirst outputs: {result}")


if __name__ == "__main__":
    main()
