"""Warp-timeline flight recorder for the SM timing engines.

:class:`FlightRecorder` is the opt-in cycle-level introspection layer
shared by :class:`~repro.timing.sm.SmSimulator` and
:class:`~repro.timing.sm_event.EventSmSimulator`: pass one as the
``recorder`` argument of :func:`~repro.timing.sm_event.create_sm_simulator`
and the engine streams per-warp lifecycle events into a **bounded ring
buffer** — warp activation/retirement, every issue (with category and
scheduler), write-backs, barrier arrivals/releases, and stall spans
derived lazily from the gap between consecutive issues of a warp,
labelled with the cause the engine computed when the gap opened
(branch shadow, barrier wait, scoreboard — including the blocking
registers — or scheduler/collector contention).

The ring is a ``collections.deque(maxlen=capacity)``: recording never
allocates beyond the cap, the oldest events fall off first, and
:attr:`dropped` says how many did.  Two interval-bucketed aggregates
live *outside* the ring (their size is cycles/interval, not events):
issued instructions per interval (an issued-IPC time series) and
integrated warp-residency per interval (an occupancy time series).

Exports:

* :meth:`FlightRecorder.to_spans` — the ring as
  :class:`~repro.obs.telemetry.SpanEvent` rows under the **1 cycle =
  1 µs convention**: ``pid`` is the SM index, ``tid`` the warp id (or a
  per-scheduler row), so :func:`~repro.obs.chrome_trace.chrome_trace`
  renders per-SM/per-scheduler/per-warp timelines in Perfetto;
* :meth:`FlightRecorder.to_telemetry` — the interval series as
  labelled counters/histograms for the Prometheus and summary
  exporters (interval labels are zero-padded so text sorts = time
  order);
* :func:`stalls_to_telemetry` — a :class:`TimingResult`'s per-scheduler
  stall-cause attribution as counters.

Disabled-path discipline: the engines guard every recorder call with a
single local ``is not None`` test, so a ``None`` recorder (the default
everywhere) adds no per-event work — the ``repro.obs.bench`` guard
bounds exactly this configuration.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.obs.telemetry import SpanEvent, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.timing.sm import TimingResult

# NOTE: this module must not import repro.timing at module level —
# repro.compression (deep in the timing import chain) imports
# repro.obs.telemetry, so an eager timing import here closes a circular
# import through the obs package init.  The two tiny timing symbols the
# exporters need (scheduler_of_slot, STALL_CAUSES) are imported lazily
# inside the export methods, which never sit on the recording hot path.

__all__ = [
    "DEFAULT_CAPACITY",
    "SCHEDULER_TID_BASE",
    "FlightRecorder",
    "stalls_to_telemetry",
]

#: Default ring capacity: enough for every event of a small-scale run,
#: a bounded window over the tail of a large one.
DEFAULT_CAPACITY = 65_536

#: Chrome-trace tid offset for the per-scheduler rows (far above any
#: realistic warp id, so warp rows and scheduler rows never collide).
SCHEDULER_TID_BASE = 1_000_000

# Ring-event kinds (first tuple element).
_ACTIVATE = 0
_ISSUE = 1
_STALL = 2
_WRITEBACK = 3
_BARRIER_ARRIVE = 4
_BARRIER_RELEASE = 5
_RETIRE = 6

EVENT_KIND_NAMES = (
    "activate",
    "issue",
    "stall",
    "writeback",
    "barrier_arrive",
    "barrier_release",
    "retire",
)


class FlightRecorder:
    """Bounded ring buffer of per-warp SM lifecycle events.

    One recorder captures one SM's run.  ``capacity`` bounds the ring,
    ``interval_cycles`` sets the bucket width of the issued-IPC and
    occupancy time series, ``sm`` is the process id stamped on every
    exported span (one Perfetto process group per SM).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        interval_cycles: int = 1024,
        sm: int = 0,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if interval_cycles < 1:
            raise ValueError(f"interval_cycles must be >= 1, got {interval_cycles}")
        self.capacity = capacity
        self.interval_cycles = interval_cycles
        self.sm = sm
        self.events: deque[tuple] = deque(maxlen=capacity)
        self.recorded = 0  # events ever recorded; dropped = recorded - len(events)
        self.end_cycle = 0
        #: issued instructions per interval bucket.
        self.issued_by_interval: dict[int, int] = {}
        #: integrated warp-cycles of residency per interval bucket.
        self.occupancy_by_interval: dict[int, int] = {}
        self._warp_slots: dict[int, int] = {}
        # warp -> (last issue cycle, stall hint, hint registers); the
        # stall span is materialized when the next issue closes the gap.
        self._open_stalls: dict[int, tuple[int, str, tuple[int, ...]]] = {}
        self._resident = 0
        self._occ_cycle = 0

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (oldest first)."""
        return self.recorded - len(self.events)

    # ------------------------------------------------------------------
    # Engine-facing hooks (hot path when recording is enabled).
    # ------------------------------------------------------------------
    def _append(self, event: tuple) -> None:
        self.events.append(event)
        self.recorded += 1

    def _advance_occupancy(self, cycle: int) -> None:
        """Integrate residency up to ``cycle``, split across buckets."""
        start = self._occ_cycle
        if cycle <= start:
            return
        self._occ_cycle = cycle
        resident = self._resident
        if not resident:
            return
        interval = self.interval_cycles
        occupancy = self.occupancy_by_interval
        while start < cycle:
            bucket = start // interval
            bucket_end = min(cycle, (bucket + 1) * interval)
            occupancy[bucket] = occupancy.get(bucket, 0) + resident * (
                bucket_end - start
            )
            start = bucket_end

    def warp_activate(self, cycle: int, warp: int, slot: int) -> None:
        self._advance_occupancy(cycle)
        self._resident += 1
        self._warp_slots[warp] = slot
        self._append((_ACTIVATE, cycle, warp, slot))

    def issue(
        self,
        cycle: int,
        warp: int,
        scheduler: int,
        category: str,
        hint: str | None,
        hint_regs: tuple[int, ...],
    ) -> None:
        """One instruction issued; closes any open stall gap of the warp.

        ``hint`` is the engine's prediction of why the warp will wait
        *after* this issue (``barrier``, ``branch``, ``scoreboard``,
        ``drain`` or ``scheduler``); if the warp next issues more than
        one cycle later, the gap becomes a stall event with that cause.
        """
        previous = self._open_stalls.pop(warp, None)
        if previous is not None:
            prev_cycle, prev_hint, prev_regs = previous
            gap = cycle - prev_cycle - 1
            if gap > 0:
                self._append((_STALL, prev_cycle + 1, warp, gap, prev_hint, prev_regs))
        if hint is not None:
            self._open_stalls[warp] = (cycle, hint, hint_regs)
        bucket = cycle // self.interval_cycles
        self.issued_by_interval[bucket] = self.issued_by_interval.get(bucket, 0) + 1
        self._append((_ISSUE, cycle, warp, scheduler, category, hint))

    def writeback(self, cycle: int, warp: int, dst: int | None) -> None:
        self._append((_WRITEBACK, cycle, warp, dst))

    def barrier_arrive(self, cycle: int, warp: int) -> None:
        self._append((_BARRIER_ARRIVE, cycle, warp))

    def barrier_release(self, cycle: int, warp: int) -> None:
        self._append((_BARRIER_RELEASE, cycle, warp))

    def warp_retire(self, cycle: int, warp: int) -> None:
        self._advance_occupancy(cycle)
        self._resident -= 1
        previous = self._open_stalls.pop(warp, None)
        if previous is not None:
            prev_cycle, prev_hint, prev_regs = previous
            gap = cycle - prev_cycle - 1
            if gap > 0:
                self._append((_STALL, prev_cycle + 1, warp, gap, prev_hint, prev_regs))
        self._append((_RETIRE, cycle, warp))

    def finalize(self, end_cycle: int) -> None:
        """Close the occupancy integration at the end of the run."""
        self._advance_occupancy(end_cycle)
        self.end_cycle = max(self.end_cycle, end_cycle)

    # ------------------------------------------------------------------
    # Exports.
    # ------------------------------------------------------------------
    def scheduler_of_warp(self, warp: int, num_schedulers: int) -> int | None:
        from repro.timing.scheduler import scheduler_of_slot

        slot = self._warp_slots.get(warp)
        if slot is None:
            return None
        return scheduler_of_slot(slot, num_schedulers)

    def to_spans(self) -> list[SpanEvent]:
        """The surviving ring events as Chrome-traceable spans.

        1 cycle = 1 µs; ``pid`` = SM index; ``tid`` = warp id for the
        per-warp rows, ``SCHEDULER_TID_BASE + s`` for the per-scheduler
        issue rows.  Residency and barrier spans are paired up while
        walking the ring; a pair whose opening event was dropped by the
        ring renders from the earliest surviving cycle.
        """
        pid = self.sm
        spans: list[SpanEvent] = []
        active_since: dict[int, int] = {}
        barrier_since: dict[int, int] = {}
        horizon = self.end_cycle
        for event in self.events:
            kind = event[0]
            cycle = event[1]
            warp = event[2]
            if kind == _ISSUE:
                _, _, _, scheduler, category, hint = event
                args: dict[str, Any] = {"scheduler": scheduler}
                if hint is not None:
                    args["next_wait"] = hint
                spans.append(
                    SpanEvent(
                        name=category,
                        cat="issue",
                        ts_us=cycle,
                        dur_us=1,
                        pid=pid,
                        tid=warp,
                        args=args,
                    )
                )
                spans.append(
                    SpanEvent(
                        name=f"w{warp}:{category}",
                        cat="issue",
                        ts_us=cycle,
                        dur_us=1,
                        pid=pid,
                        tid=SCHEDULER_TID_BASE + scheduler,
                        args={"warp": warp},
                    )
                )
            elif kind == _STALL:
                _, start, _, duration, cause, regs = event
                args = {"cause": cause}
                if regs:
                    args["registers"] = list(regs)
                spans.append(
                    SpanEvent(
                        name=f"stall:{cause}",
                        cat="stall",
                        ts_us=start,
                        dur_us=duration,
                        pid=pid,
                        tid=warp,
                        args=args,
                    )
                )
            elif kind == _WRITEBACK:
                dst = event[3]
                spans.append(
                    SpanEvent(
                        name="writeback",
                        cat="writeback",
                        ts_us=cycle,
                        dur_us=0,
                        pid=pid,
                        tid=warp,
                        args={} if dst is None else {"register": dst},
                    )
                )
            elif kind == _ACTIVATE:
                active_since[warp] = cycle
            elif kind == _RETIRE:
                start = active_since.pop(warp, None)
                first = self.events[0][1] if self.events else 0
                begin = start if start is not None else first
                spans.append(
                    SpanEvent(
                        name=f"warp {warp}",
                        cat="warp",
                        ts_us=begin,
                        dur_us=max(0, cycle - begin),
                        pid=pid,
                        tid=warp,
                        args={"slot": self._warp_slots.get(warp, -1)},
                    )
                )
            elif kind == _BARRIER_ARRIVE:
                barrier_since[warp] = cycle
            elif kind == _BARRIER_RELEASE:
                start = barrier_since.pop(warp, None)
                begin = start if start is not None else cycle
                spans.append(
                    SpanEvent(
                        name="barrier",
                        cat="barrier",
                        ts_us=begin,
                        dur_us=max(0, cycle - begin),
                        pid=pid,
                        tid=warp,
                        args={},
                    )
                )
        # Warps still resident (or parked) when recording stopped.
        for warp, begin in sorted(active_since.items()):
            spans.append(
                SpanEvent(
                    name=f"warp {warp}",
                    cat="warp",
                    ts_us=begin,
                    dur_us=max(0, horizon - begin),
                    pid=pid,
                    tid=warp,
                    args={"slot": self._warp_slots.get(warp, -1), "open": True},
                )
            )
        for warp, begin in sorted(barrier_since.items()):
            spans.append(
                SpanEvent(
                    name="barrier",
                    cat="barrier",
                    ts_us=begin,
                    dur_us=max(0, horizon - begin),
                    pid=pid,
                    tid=warp,
                    args={"open": True},
                )
            )
        return spans

    def chrome_metadata(self, num_schedulers: int) -> dict:
        """Row-naming metadata for :func:`~repro.obs.chrome_trace.chrome_trace`."""
        from repro.timing.scheduler import scheduler_of_slot

        pid = self.sm
        thread_names = {
            (pid, SCHEDULER_TID_BASE + s): f"scheduler {s}"
            for s in range(num_schedulers)
        }
        for warp, slot in sorted(self._warp_slots.items()):
            scheduler = scheduler_of_slot(slot, num_schedulers)
            thread_names[(pid, warp)] = f"warp {warp} (sched {scheduler})"
        return {
            "process_names": {pid: f"SM {pid}"},
            "thread_names": thread_names,
        }

    def to_telemetry(self, telemetry: Telemetry) -> None:
        """Fold the interval time series and ring health into a registry.

        Interval labels are zero-padded so every text exporter renders
        the series in time order; per-interval issued counts and mean
        occupancy also land in histograms for the summary digests.
        """
        sm = str(self.sm)
        interval = self.interval_cycles
        buckets = sorted(set(self.issued_by_interval) | set(self.occupancy_by_interval))
        width = max(5, len(str(buckets[-1])) if buckets else 1)
        for bucket in buckets:
            label = f"{bucket:0{width}d}"
            issued = self.issued_by_interval.get(bucket, 0)
            occupancy = self.occupancy_by_interval.get(bucket, 0)
            if issued:
                telemetry.count("timeline_issued", issued, sm=sm, interval=label)
            if occupancy:
                telemetry.count(
                    "timeline_occupancy_warp_cycles", occupancy, sm=sm, interval=label
                )
            cycles_in_bucket = min(interval, max(1, self.end_cycle - bucket * interval))
            telemetry.observe(
                "timeline_issued_per_interval", issued, sm=sm
            )
            telemetry.observe(
                "timeline_mean_occupancy",
                round(occupancy / cycles_in_bucket, 2),
                sm=sm,
            )
        telemetry.count("timeline_events_recorded", self.recorded, sm=sm)
        if self.dropped:
            telemetry.count("timeline_events_dropped", self.dropped, sm=sm)


def stalls_to_telemetry(
    telemetry: Telemetry, result: "TimingResult", sm: int = 0
) -> None:
    """Record a timing result's stall attribution as labelled counters.

    One ``sm_stall_scheduler_cycles`` series per (scheduler, cause),
    plus the issued counts — together they tile ``cycles ×
    schedulers``, so the exported metrics obey the same accounting
    invariant the engines are tested for.
    """
    from repro.timing.sm import STALL_CAUSES

    sm_label = str(sm)
    for scheduler, breakdown in enumerate(result.stalls_per_scheduler):
        for cause in STALL_CAUSES:
            value = getattr(breakdown, cause)
            if value:
                telemetry.count(
                    "sm_stall_scheduler_cycles",
                    value,
                    sm=sm_label,
                    scheduler=str(scheduler),
                    cause=cause,
                )
    for scheduler, issued in enumerate(result.issued_per_scheduler):
        if issued:
            telemetry.count(
                "sm_issued_instructions",
                issued,
                sm=sm_label,
                scheduler=str(scheduler),
            )
    telemetry.count("sm_cycles", result.cycles, sm=sm_label)
