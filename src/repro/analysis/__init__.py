"""Trace analyses (Figures 1, 8, 10) and the static kernel analyzer.

Dynamic-trace analyses live at this level; the compile-time lint/
diagnostic subsystem is the :mod:`repro.analysis.static_` subpackage.
"""

from repro.analysis.divergence import DivergenceStats, divergence_stats
from repro.analysis.halfwarp import ChunkScalarStats, chunk_scalar_stats
from repro.analysis.similarity import (
    CATEGORIES,
    AccessDistribution,
    access_distribution,
)
from repro.analysis.static_ import (
    Diagnostic,
    LintReport,
    Severity,
    StaticScalarClass,
    analyze_uniformity,
    lint_kernel,
)

__all__ = [
    "CATEGORIES",
    "AccessDistribution",
    "ChunkScalarStats",
    "Diagnostic",
    "DivergenceStats",
    "LintReport",
    "Severity",
    "StaticScalarClass",
    "access_distribution",
    "analyze_uniformity",
    "chunk_scalar_stats",
    "divergence_stats",
    "lint_kernel",
]
