"""Unit tests for the extra kernel validation passes."""

import pytest

from repro.errors import KernelValidationError
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Instruction, Reg
from repro.isa.kernel import BasicBlock, Exit, Kernel
from repro.isa.opcodes import Opcode
from repro.isa.validation import validate_kernel


def test_clean_kernel_passes():
    b = KernelBuilder("clean")
    x = b.mov(1)
    b.iadd(x, 2)
    report = validate_kernel(b.finish())
    assert report.num_instructions == 2
    assert report.read_registers <= report.written_registers


def test_undefined_read_rejected():
    kernel = Kernel(
        name="undef",
        blocks=[
            BasicBlock(
                0,
                [Instruction(opcode=Opcode.IADD, dst=Reg(0), srcs=(Reg(5), Reg(6)))],
                Exit(),
            )
        ],
    )
    with pytest.raises(KernelValidationError, match="read"):
        validate_kernel(kernel)


def test_branch_local_write_read_after_join_rejected():
    # The known-bad shape the old whole-kernel set check missed: x is
    # written *somewhere* (one branch arm) but not on the fall-through
    # path, and read unconditionally after the join.
    b = KernelBuilder("maybe_uninit")
    tid = b.tid()
    cond = b.setlt(tid, 16)
    with b.if_(cond):
        x = b.mov(5)
    b.iadd(x, 1)
    with pytest.raises(KernelValidationError, match="GS-E002"):
        validate_kernel(b.finish())


def test_write_in_both_arms_accepted():
    # Same shape, but the else-arm also defines x: initialized on every
    # path, so the path-sensitive check must NOT fire.
    b = KernelBuilder("both_arms")
    tid = b.tid()
    cond = b.setlt(tid, 16)
    with b.if_(cond) as branch:
        x = b.mov(5)
        with branch.else_():
            b.mov(6, dst=x)
    b.iadd(x, 1)
    report = validate_kernel(b.finish())
    assert x.index in report.read_registers


def test_register_budget_enforced():
    b = KernelBuilder("pressure")
    regs = [b.mov(i) for i in range(70)]
    b.iadd(regs[0], regs[1])
    kernel = b.finish()
    with pytest.raises(KernelValidationError, match="budget"):
        validate_kernel(kernel, max_registers=64)
    report = validate_kernel(kernel, max_registers=128)
    assert report.num_registers == 71


def test_report_tracks_read_and_written_sets():
    b = KernelBuilder("sets")
    x = b.mov(1)
    y = b.iadd(x, 2)
    b.st_global(b.mov(0x100), y)
    report = validate_kernel(b.finish())
    assert x.index in report.written_registers
    assert x.index in report.read_registers
