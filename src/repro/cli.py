"""Command-line entry point: regenerate the paper's figures and tables.

Examples::

    python -m repro table2
    python -m repro fig9 --scale small
    python -m repro all --scale default --jobs 4 --cache-dir .repro-cache
    python -m repro profile bp --scale small
    python -m repro timeline bp --scale small --trace-out bp.trace.json
    python -m repro suite --trace-out suite.trace.json --metrics-out suite.prom
    python -m repro cache stats --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import tempfile
import time

from repro.experiments import (
    extras,
    fig1,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    scorecard,
    stalls,
    staticdyn,
    suite,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import ExperimentRunner
from repro.scalar.arch_batch import ARCH_ENGINE_CHOICES, DEFAULT_ARCH_ENGINE
from repro.timing.sm_event import DEFAULT_SM_ENGINE, SM_ENGINE_CHOICES
from repro.scalar.batch import CLASSIFIER_CHOICES, DEFAULT_CLASSIFIER
from repro.workloads.registry import SCALES

_TRACE_EXPERIMENTS = (
    "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "extras", "scorecard",
    "suite", "staticdyn", "stalls",
)
_STATIC_EXPERIMENTS = ("table1", "table2", "table3")
EXPERIMENTS = _TRACE_EXPERIMENTS + _STATIC_EXPERIMENTS

#: Experiments that need warp-64 traces (Figure 10's warp-size sweep).
_WARP64_EXPERIMENTS = frozenset({"fig10"})
#: Experiments that need timing/power over the four paper architectures.
_MATRIX_EXPERIMENTS = frozenset({"fig11", "scorecard", "stalls"})


def _run_one(name: str, runner: ExperimentRunner | None) -> str:
    if name == "table1":
        return table1.render()
    if name == "table2":
        return table2.render()
    if name == "table3":
        return table3.render()
    assert runner is not None
    module = {
        "fig1": fig1,
        "fig8": fig8,
        "fig9": fig9,
        "fig10": fig10,
        "fig11": fig11,
        "fig12": fig12,
        "extras": extras,
        "scorecard": scorecard,
        "stalls": stalls,
        "suite": suite,
        "staticdyn": staticdyn,
    }[name]
    return module.render(module.compute(runner))


def _bars_for(name: str, runner: ExperimentRunner) -> str:
    """Bar-chart view of a normalized figure."""
    from repro.experiments.tables import render_bar_chart

    if name == "fig11":
        data = fig11.compute(runner)
        labels = [row.abbr for row in data.rows]
        series = {
            "ALU scalar": [r.normalized_efficiency("alu_scalar") for r in data.rows],
            "G-Scalar": [r.normalized_efficiency("gscalar") for r in data.rows],
        }
        return render_bar_chart(
            labels, series, reference=1.0,
            title="Figure 11 (bars): normalized IPC/W, | marks baseline",
        )
    data = fig12.compute(runner)
    labels = [row.abbr for row in data.rows]
    series = {
        "scalar only": [r.normalized["scalar_rf"] for r in data.rows],
        "ours": [r.normalized["ours"] for r in data.rows],
    }
    return render_bar_chart(
        labels, series, reference=1.0,
        title="Figure 12 (bars): normalized RF power, | marks baseline",
    )


def _lint_main(argv: list[str]) -> int:
    """``repro lint``: run the static analyzer over workload kernels.

    Exit status is 1 when any kernel has a diagnostic at or above the
    ``--fail-on`` severity (default: error), making the command directly
    usable as a CI gate.
    """
    from repro.analysis.static_ import (
        PassManager,
        Severity,
        default_passes,
        load_baseline,
        unsuppressed,
        write_baseline,
    )
    from repro.workloads.registry import all_workloads, build_workload, workload_by_name

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Lint workload kernels with the static analyzer.",
    )
    parser.add_argument(
        "kernels",
        nargs="*",
        metavar="KERNEL",
        help="workload abbreviations or names (default: all 17)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="workload problem size (default: default)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format: human-readable text (default) or one flat "
        "JSON array of diagnostics (rule, severity, kernel, block, "
        "instruction, message)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the legacy nested per-kernel JSON reports "
        "(prefer --format=json, a flat diagnostic array)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="error",
        help="lowest severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress diagnostics recorded in FILE; only *new* findings "
        "count toward --fail-on",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current diagnostics to FILE (then exit 0 unless "
        "new findings remain against an existing --baseline)",
    )
    parser.add_argument(
        "--min-severity",
        choices=("info", "warning", "error"),
        default="info",
        help="lowest severity to print in text mode (default: info)",
    )
    parser.add_argument(
        "--max-registers",
        type=int,
        default=64,
        metavar="N",
        help="per-thread register budget for GS-E003 (default: 64)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write per-rule diagnostic counts (GS-E/GS-W/GS-I) as a "
        "Prometheus text exposition to PATH",
    )
    args = parser.parse_args(argv)

    specs = (
        [workload_by_name(name) for name in args.kernels]
        if args.kernels
        else all_workloads()
    )
    manager = PassManager(default_passes(max_registers=args.max_registers))
    threshold = Severity.parse(args.fail_on)
    min_shown = Severity.parse(args.min_severity)
    reports = []
    for spec in specs:
        kernel = build_workload(spec.abbr, args.scale).kernel
        reports.append(manager.run(kernel))

    suppressed = set()
    if args.baseline is not None:
        try:
            suppressed = load_baseline(args.baseline)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {args.baseline}")
        except ValueError as exc:
            parser.error(str(exc))
    gated = [unsuppressed(report, suppressed) for report in reports]
    failing = sum(
        1
        for found in gated
        if any(d.severity >= threshold for d in found)
    )
    if args.write_baseline is not None:
        recorded = write_baseline(reports, args.write_baseline)
        print(
            f"[recorded {recorded} diagnostic(s) to {args.write_baseline}]",
            file=sys.stderr,
        )
    if args.metrics_out is not None:
        # Static-analysis results flow through the same metrics
        # exposition as the dynamic pipeline: one counter per rule
        # (GS-I informational reports included) plus severity totals.
        from repro.obs import Telemetry, write_prometheus

        registry = Telemetry()
        registry.count("lint_kernels", len(reports))
        for report in reports:
            for diagnostic in report.diagnostics:
                registry.count(
                    "lint_diagnostics",
                    rule=diagnostic.rule,
                    severity=diagnostic.severity.value,
                )
        write_prometheus(registry, args.metrics_out)
        print(f"[wrote lint metrics to {args.metrics_out}]", file=sys.stderr)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True))
    elif args.output_format == "json":
        # The stable machine interface: one flat array, one object per
        # diagnostic, in pass order within each kernel (shape pinned by
        # tests/analysis/test_static_lint.py).
        diagnostics = [
            d.to_dict() for report in reports for d in report.diagnostics
        ]
        print(json.dumps(diagnostics, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render(min_severity=min_shown))
        suffix = f" ({len(suppressed)} baselined)" if args.baseline else ""
        print(
            f"[linted {len(reports)} kernel(s): {failing} at or above "
            f"{threshold.value}{suffix}]",
            file=sys.stderr,
        )
    return 1 if failing else 0


def _profile_main(argv: list[str]) -> int:
    """``repro profile``: run one benchmark fully instrumented.

    Executes the pipeline (trace -> classify -> per-architecture
    process/timing/power) for one benchmark with the telemetry registry
    enabled, then writes a Chrome trace-event file (open it at
    https://ui.perfetto.dev), a Prometheus text exposition, optionally
    a JSONL event stream, and prints a human-readable summary.
    """
    from repro.experiments.runner import ExperimentRunner, paper_architectures
    from repro.obs import (
        JsonlSink,
        Telemetry,
        summary_table,
        telemetry_session,
        write_chrome_trace,
        write_prometheus,
    )

    arch_names = [arch.name for arch in paper_architectures()]
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile one benchmark with full pipeline telemetry.",
    )
    parser.add_argument("benchmark", metavar="BENCHMARK",
                        help="workload abbreviation (e.g. bp)")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="workload problem size (default: default)",
    )
    parser.add_argument(
        "--arch",
        choices=arch_names + ["all"],
        default="all",
        help="architecture(s) to run timing/power for (default: all)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="Chrome trace-event JSON path "
        "(default: profile_<benchmark>.trace.json)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="Prometheus text exposition path "
        "(default: profile_<benchmark>.prom)",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="also stream span events as JSON Lines to PATH",
    )
    parser.add_argument(
        "--classifier",
        choices=CLASSIFIER_CHOICES,
        default=DEFAULT_CLASSIFIER,
        help="classification engine: 'batch' (vectorized, default) or "
        "'event' (per-event reference path)",
    )
    parser.add_argument(
        "--arch-engine",
        choices=ARCH_ENGINE_CHOICES,
        default=DEFAULT_ARCH_ENGINE,
        help="architecture interpretation + power engine: 'batch' "
        "(columnar, default) or 'event' (per-event reference path; "
        "bit-identical output)",
    )
    parser.add_argument(
        "--sm-engine",
        choices=SM_ENGINE_CHOICES,
        default=DEFAULT_SM_ENGINE,
        help="SM timing engine: 'event' (event-driven, default) or "
        "'cycle' (cycle-by-cycle reference model; bit-identical output)",
    )
    parser.add_argument(
        "--no-summary",
        action="store_true",
        help="skip the human-readable summary table",
    )
    args = parser.parse_args(argv)

    bench = args.benchmark.strip().upper()
    trace_out = args.trace_out or f"profile_{bench.lower()}.trace.json"
    metrics_out = args.metrics_out or f"profile_{bench.lower()}.prom"
    arches = (
        paper_architectures()
        if args.arch == "all"
        else tuple(a for a in paper_architectures() if a.name == args.arch)
    )
    sink = JsonlSink(args.events_out) if args.events_out is not None else None
    with telemetry_session(Telemetry(sink=sink)) as telemetry:
        runner = ExperimentRunner(
            scale=args.scale,
            classifier=args.classifier,
            arch_engine=args.arch_engine,
            sm_engine=args.sm_engine,
        )
        with runner.stats.timer("profile", benchmark=bench):
            runner.run(bench)
            for arch in arches:
                runner.power(bench, arch)
        write_chrome_trace(telemetry, trace_out)
        write_prometheus(telemetry, metrics_out)
        if not args.no_summary:
            print(summary_table(telemetry))
    print(f"[wrote Chrome trace to {trace_out}]", file=sys.stderr)
    print(f"[wrote metrics to {metrics_out}]", file=sys.stderr)
    if args.events_out is not None:
        print(f"[wrote event stream to {args.events_out}]", file=sys.stderr)
    return 0


def _timeline_main(argv: list[str]) -> int:
    """``repro timeline``: cycle-level introspection of one benchmark.

    Runs the SM timing model for one (benchmark, architecture) pair
    with the warp-timeline flight recorder attached, prints the
    per-scheduler stall-cause attribution table, and optionally writes
    a Chrome trace-event file (per-SM/per-scheduler/per-warp Perfetto
    timelines) and a Prometheus exposition (attribution counters plus
    the occupancy and issued-IPC interval series).

    ``--compare-engines`` additionally runs the *other* SM engine over
    the same streams and exits 1 unless both produce bit-identical
    per-scheduler attributions — the CI smoke hook for the
    cycle-vs-event differential guarantee.
    """
    import dataclasses

    from repro.config import GpuConfig, architecture_by_name
    from repro.experiments.runner import ExperimentRunner, matrix_architectures
    from repro.experiments.tables import render_table
    from repro.obs import (
        DEFAULT_CAPACITY,
        FlightRecorder,
        Telemetry,
        stalls_to_telemetry,
        write_chrome_trace,
        write_prometheus,
    )
    from repro.timing.sm import STALL_CAUSES

    arch_names = [arch.name for arch in matrix_architectures()]
    parser = argparse.ArgumentParser(
        prog="repro timeline",
        description="Stall-cause attribution and warp timelines for one "
        "benchmark (open the trace at https://ui.perfetto.dev).",
    )
    parser.add_argument("benchmark", metavar="BENCHMARK",
                        help="workload abbreviation (e.g. bp)")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="workload problem size (default: default)",
    )
    parser.add_argument(
        "--arch",
        choices=arch_names,
        default="baseline",
        help="architecture to simulate (default: baseline)",
    )
    parser.add_argument(
        "--sm-engine",
        choices=SM_ENGINE_CHOICES,
        default=DEFAULT_SM_ENGINE,
        help="SM timing engine driving the recorded run (default: event)",
    )
    parser.add_argument(
        "--compare-engines",
        action="store_true",
        help="also run the other SM engine and exit 1 unless the "
        "per-scheduler stall attributions are bit-identical",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the warp/scheduler timelines as a Chrome trace-event "
        "JSON file to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write attribution counters and the interval time series as "
        "a Prometheus text exposition to PATH",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        metavar="N",
        help=f"flight-recorder ring capacity in events "
        f"(default: {DEFAULT_CAPACITY}; oldest events drop first)",
    )
    parser.add_argument(
        "--interval-cycles",
        type=int,
        default=None,
        metavar="N",
        help="bucket width of the occupancy/issued-IPC time series "
        "(default: GpuConfig.timeline_interval_cycles)",
    )
    args = parser.parse_args(argv)
    if args.capacity < 1:
        parser.error("--capacity must be >= 1")
    if args.interval_cycles is not None and args.interval_cycles < 1:
        parser.error("--interval-cycles must be >= 1")

    config = GpuConfig()
    if args.interval_cycles is not None:
        config = dataclasses.replace(
            config, timeline_interval_cycles=args.interval_cycles
        )
    arch = architecture_by_name(args.arch)
    bench = args.benchmark.strip().upper()
    runner = ExperimentRunner(
        scale=args.scale, config=config, sm_engine=args.sm_engine
    )
    recording = args.trace_out is not None or args.metrics_out is not None
    recorder = (
        FlightRecorder(
            capacity=args.capacity,
            interval_cycles=config.timeline_interval_cycles,
        )
        if recording
        else None
    )
    result = runner.timeline(bench, arch, recorder, sm_engine=args.sm_engine)

    if args.compare_engines:
        other = "cycle" if args.sm_engine == "event" else "event"
        other_result = runner.timeline(bench, arch, None, sm_engine=other)
        mismatches = []
        if result.cycles != other_result.cycles:
            mismatches.append(
                f"cycles: {args.sm_engine}={result.cycles} "
                f"{other}={other_result.cycles}"
            )
        if result.stalls_per_scheduler != other_result.stalls_per_scheduler:
            mismatches.append(
                f"stalls_per_scheduler: {args.sm_engine}="
                f"{[b.as_dict() for b in result.stalls_per_scheduler]} "
                f"{other}="
                f"{[b.as_dict() for b in other_result.stalls_per_scheduler]}"
            )
        if result.issued_per_scheduler != other_result.issued_per_scheduler:
            mismatches.append(
                f"issued_per_scheduler: {args.sm_engine}="
                f"{result.issued_per_scheduler} "
                f"{other}={other_result.issued_per_scheduler}"
            )
        if mismatches:
            for line in mismatches:
                print(f"[engine mismatch] {line}", file=sys.stderr)
            return 1
        print(
            f"[engines agree: {args.sm_engine} == {other} on "
            f"{len(result.stalls_per_scheduler)} scheduler(s)]",
            file=sys.stderr,
        )

    # Per-scheduler attribution table (the six-cause taxonomy), with
    # the aggregate row last; issued + causes tiles cycles × schedulers.
    headers = ["scheduler", "issued"] + list(STALL_CAUSES) + ["stall total"]
    rows = []
    for index, breakdown in enumerate(result.stalls_per_scheduler):
        issued = (
            result.issued_per_scheduler[index]
            if index < len(result.issued_per_scheduler)
            else 0
        )
        rows.append(
            [str(index), str(issued)]
            + [str(getattr(breakdown, cause)) for cause in STALL_CAUSES]
            + [str(breakdown.total)]
        )
    rows.append(
        ["all", str(sum(result.issued_per_scheduler))]
        + [str(getattr(result.stalls, cause)) for cause in STALL_CAUSES]
        + [str(result.stalls.total)]
    )
    print(
        render_table(
            headers,
            rows,
            title=f"{bench} on {arch.name} ({args.sm_engine} engine): "
            f"{result.cycles} cycles, IPC {result.ipc:.3f}",
        )
    )

    if recorder is not None:
        print(
            f"[recorded {recorder.recorded} events "
            f"({recorder.dropped} dropped by the {args.capacity}-event ring)]",
            file=sys.stderr,
        )
    if args.trace_out is not None:
        assert recorder is not None
        registry = Telemetry()
        registry.spans.extend(recorder.to_spans())
        metadata = recorder.chrome_metadata(config.schedulers_per_sm)
        write_chrome_trace(
            registry,
            args.trace_out,
            process_names=metadata["process_names"],
            thread_names=metadata["thread_names"],
        )
        print(f"[wrote Chrome trace to {args.trace_out}]", file=sys.stderr)
    if args.metrics_out is not None:
        assert recorder is not None
        registry = Telemetry()
        recorder.to_telemetry(registry)
        stalls_to_telemetry(registry, result)
        write_prometheus(registry, args.metrics_out)
        print(f"[wrote metrics to {args.metrics_out}]", file=sys.stderr)
    return 0


def _cache_main(argv: list[str]) -> int:
    """``repro cache``: inventory and maintenance of a cache directory.

    ``stats`` prints a JSON inventory — per-stage entry counts and
    on-disk bytes (v5 kinds like ``trace``/``ccols``/``pcols`` plus the
    legacy ``trace_npz``/``classified_pickle``/``results_pickle``
    shapes) and the orphaned temp files / superseded bank directories
    still awaiting a sweep.  ``sweep`` reclaims those orphans now
    (every runner also sweeps on cache open, but only debris older than
    the age gate).
    """
    from repro.experiments import store

    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or garbage-collect an experiment cache "
        "directory.",
    )
    parser.add_argument(
        "action",
        choices=("stats", "sweep"),
        help="stats: per-stage entry counts and bytes as JSON; "
        "sweep: remove orphaned temp files and superseded v5 banks",
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="cache directory to inspect",
    )
    parser.add_argument(
        "--max-age",
        type=float,
        default=store.TMP_SWEEP_AGE_SECONDS,
        metavar="SECONDS",
        help="sweep only: reclaim orphans older than this many seconds "
        f"(default: {store.TMP_SWEEP_AGE_SECONDS:.0f}; 0 sweeps "
        "everything, unsafe while writers are live)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report to PATH",
    )
    args = parser.parse_args(argv)
    if args.action == "sweep":
        swept = store.sweep_orphans(args.cache_dir, age_seconds=args.max_age)
        report = {
            "cache_dir": str(args.cache_dir),
            "tmp_files": swept.tmp_files,
            "orphan_bank_dirs": swept.orphan_bank_dirs,
            "bytes_freed": swept.bytes_freed,
        }
    else:
        report = store.scan_cache(args.cache_dir)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.json is not None:
        with open(args.json, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"[wrote report to {args.json}]", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["lint"]:
        # The lint subcommand has its own flags; dispatch before the
        # experiment parser sees (and rejects) them.
        return _lint_main(arguments[1:])
    if arguments[:1] == ["profile"]:
        return _profile_main(arguments[1:])
    if arguments[:1] == ["timeline"]:
        return _timeline_main(arguments[1:])
    if arguments[:1] == ["cache"]:
        return _cache_main(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the G-Scalar paper's figures and tables.",
        epilog="'repro lint --help' describes the static-analysis gate; "
        "'repro timeline --help' the cycle-level introspection command; "
        "'repro cache --help' the cache inventory/GC command.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="workload problem size (default: default)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print progress while running"
    )
    parser.add_argument(
        "--bars",
        action="store_true",
        help="append text bar-chart views to fig11/fig12 output",
    )
    parser.add_argument(
        "--widths",
        action="store_true",
        help="staticdyn only: validate the static width analysis against "
        "the dynamic enc-prefix stream; exits 1 if any static claim "
        "over-promises (soundness gate)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the computed data as JSON to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the benchmark matrix (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist traces and stage results in DIR across runs",
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="write cache/stage statistics (hits, misses, timings) to PATH",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable telemetry and write a Chrome trace-event file to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable telemetry and write Prometheus text metrics to PATH",
    )
    parser.add_argument(
        "--classifier",
        choices=CLASSIFIER_CHOICES,
        default=DEFAULT_CLASSIFIER,
        help="classification engine: 'batch' (vectorized, default) or "
        "'event' (per-event reference path)",
    )
    parser.add_argument(
        "--arch-engine",
        choices=ARCH_ENGINE_CHOICES,
        default=DEFAULT_ARCH_ENGINE,
        help="architecture interpretation + power engine: 'batch' "
        "(columnar, default) or 'event' (per-event reference path; "
        "bit-identical output)",
    )
    parser.add_argument(
        "--sm-engine",
        choices=SM_ENGINE_CHOICES,
        default=DEFAULT_SM_ENGINE,
        help="SM timing engine: 'event' (event-driven, default) or "
        "'cycle' (cycle-by-cycle reference model; bit-identical output)",
    )
    parser.add_argument(
        "--chunk-events",
        type=int,
        default=None,
        metavar="N",
        help="stream the pipeline in N-event chunks with carry state "
        "between chunks (bounded memory, bit-identical output; "
        "default: whole-trace). Requires the batch classifier and "
        "batch arch engine",
    )
    args = parser.parse_args(arguments)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.chunk_events is not None:
        if args.chunk_events < 1:
            parser.error("--chunk-events must be >= 1")
        if args.classifier != "batch" or args.arch_engine != "batch":
            parser.error(
                "--chunk-events requires --classifier=batch and "
                "--arch-engine=batch"
            )
    if args.widths and args.experiment not in ("staticdyn", "all"):
        parser.error("--widths only applies to the staticdyn experiment")

    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    needs_runner = any(name in _TRACE_EXPERIMENTS for name in wanted)
    telemetry = None
    with contextlib.ExitStack() as stack:
        if args.trace_out is not None or args.metrics_out is not None:
            # Either export flag turns the pipeline instrumentation on
            # for the whole invocation; the session scope restores the
            # previous (null) registry when main() returns, so repeated
            # in-process calls stay independent.
            from repro.obs import Telemetry, telemetry_session

            telemetry = stack.enter_context(telemetry_session(Telemetry()))
        exit_code = _experiment_main(args, wanted, needs_runner)
        if telemetry is not None:
            if args.trace_out is not None:
                from repro.obs import write_chrome_trace

                write_chrome_trace(telemetry, args.trace_out)
                print(f"[wrote Chrome trace to {args.trace_out}]", file=sys.stderr)
            if args.metrics_out is not None:
                from repro.obs import write_prometheus

                write_prometheus(telemetry, args.metrics_out)
                print(f"[wrote metrics to {args.metrics_out}]", file=sys.stderr)
    return exit_code


def _experiment_main(
    args: argparse.Namespace, wanted: list[str], needs_runner: bool
) -> int:
    """Run the selected experiments and write any requested outputs."""
    cache_dir = args.cache_dir
    if needs_runner and args.jobs > 1 and cache_dir is None:
        # Workers communicate through the on-disk cache; give them one.
        cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
        print(f"[--jobs {args.jobs}: using temporary cache {cache_dir}]",
              file=sys.stderr)
    runner = (
        ExperimentRunner(
            scale=args.scale,
            verbose=args.verbose,
            cache_dir=cache_dir,
            classifier=args.classifier,
            arch_engine=args.arch_engine,
            sm_engine=args.sm_engine,
            chunk_events=args.chunk_events,
        )
        if needs_runner
        else None
    )
    if runner is not None and args.jobs > 1:
        warp_sizes = (
            (32, 64)
            if any(name in _WARP64_EXPERIMENTS for name in wanted)
            else (32,)
        )
        arches = (
            None  # prefetch's default: the four paper architectures
            if any(name in _MATRIX_EXPERIMENTS for name in wanted)
            else ()
        )
        runner.prefetch(jobs=args.jobs, warp_sizes=warp_sizes, arches=arches)
    json_results = []
    experiment_seconds: dict[str, float] = {}
    exit_code = 0
    for name in wanted:
        started = time.time()
        print(_run_one(name, runner))
        if name == "staticdyn" and args.widths:
            # Width-claim soundness gate: zero over-claims or exit 1.
            assert runner is not None
            widths_data = staticdyn.compute_widths(runner)
            print()
            print(staticdyn.render_widths(widths_data))
            if widths_data.total_over_claims:
                exit_code = 1
        if args.bars and name in ("fig11", "fig12") and runner is not None:
            print()
            print(_bars_for(name, runner))
        if args.json is not None and runner is not None:
            from repro.experiments.export import (
                export_experiment,
                exportable_experiments,
            )

            if name in exportable_experiments():
                json_results.append(export_experiment(name, runner, args.scale))
        experiment_seconds[name] = round(time.time() - started, 6)
        if args.verbose:
            print(f"[{name}: {experiment_seconds[name]:.1f}s]", file=sys.stderr)
        print()
    if args.json is not None and json_results:
        from repro.experiments.export import write_json

        write_json(json_results, args.json)
        print(f"[wrote JSON to {args.json}]", file=sys.stderr)
    if args.stats_json is not None:
        stats = {
            "experiment": args.experiment,
            "scale": args.scale,
            "jobs": args.jobs,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
            "experiment_seconds": experiment_seconds,
        }
        if runner is not None:
            stats.update(runner.stats.to_dict())
        with open(args.stats_json, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[wrote stats to {args.stats_json}]", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
