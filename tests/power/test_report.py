"""Direct tests for power-report arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.power.report import EnergyBreakdown, PowerReport


def make_report(cycles=1000, instructions=900, **energy):
    breakdown = EnergyBreakdown(**energy)
    return PowerReport(
        arch_name="test",
        cycles=cycles,
        instructions=instructions,
        frequency_ghz=1.4,
        static_w=2.0,
        breakdown=breakdown,
    )


class TestEnergyBreakdown:
    def test_exec_sums_sub_pipelines(self):
        breakdown = EnergyBreakdown(
            exec_alu_pj=10.0, exec_sfu_pj=20.0, exec_mem_pj=5.0
        )
        assert breakdown.exec_pj == 35.0

    def test_total(self):
        breakdown = EnergyBreakdown(
            exec_alu_pj=1, rf_pj=2, crossbar_pj=3, compression_pj=4,
            fds_pj=5, memory_pj=6,
        )
        assert breakdown.total_pj == 21

    def test_fractions_empty(self):
        assert EnergyBreakdown().fractions() == {}


class TestPowerReport:
    def test_runtime_and_power(self):
        report = make_report(cycles=1400, exec_alu_pj=1e6)
        assert report.runtime_s == pytest.approx(1e-6)
        # 1e6 pJ over 1 us = 1 W dynamic.
        assert report.dynamic_power_w == pytest.approx(1.0)
        assert report.total_power_w == pytest.approx(3.0)

    def test_ipc_per_watt(self):
        report = make_report(cycles=1000, instructions=500, exec_alu_pj=0.0)
        assert report.ipc == 0.5
        assert report.ipc_per_watt == pytest.approx(0.5 / report.total_power_w)

    def test_zero_cycles(self):
        report = make_report(cycles=0, instructions=0)
        assert report.ipc == 0.0
        assert report.dynamic_power_w == 0.0
        assert report.ipc_per_watt == 0.0

    def test_component_powers(self):
        report = make_report(cycles=1400, exec_sfu_pj=1e6, rf_pj=5e5)
        assert report.sfu_power_w == pytest.approx(1.0)
        assert report.rf_dynamic_power_w == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_report(cycles=-1)
        with pytest.raises(ConfigError):
            PowerReport(
                arch_name="x", cycles=1, instructions=1,
                frequency_ghz=0.0, static_w=1.0,
            )
