"""Regression tests for three cycle-model fixes.

1. Stores are write-through/no-allocate: they must only *probe* the L1,
   never allocate lines or inflate the demand hit/miss statistics.
2. GTO greediness names a *slot*; when the slot's warp retires the
   preference must be dropped, not silently transferred to whatever
   warp is activated into the slot next.
3. CTAs activate as whole units (GigaThread-style), so a barrier can
   never wait on a CTA-mate that has no slot to run in, and a CTA that
   cannot fit on the SM at all is a clear error instead of a deadlock.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GpuConfig, SchedulerPolicy
from repro.errors import TimingError
from repro.isa.opcodes import OpCategory
from repro.timing.memory import MemoryModel
from repro.timing.ops import TimingOp
from repro.timing.scheduler import WarpScheduler
from repro.timing.sm import SmSimulator
from repro.timing.sm_event import EventSmSimulator
from tests.timing.test_sm_properties import random_ops


def _alu(dst=None, srcs=()):
    return TimingOp(
        category=OpCategory.ALU,
        dst=dst,
        src_regs=tuple(srcs),
        src_banks=tuple(r % 16 for r in srcs),
        dispatch_cycles=2,
        long_latency=False,
        is_store=False,
    )


_BARRIER = TimingOp(
    category=OpCategory.CTRL,
    dst=None,
    src_regs=(),
    src_banks=(),
    dispatch_cycles=1,
    long_latency=False,
    is_store=False,
    is_barrier=True,
)


class TestStoreNoAllocate:
    def test_store_does_not_allocate_l1_line(self):
        memory = MemoryModel()
        memory.access_global((7,), is_store=True)
        memory.access_global((7,), is_store=False)
        # The load must miss: the store left no line behind.
        assert memory.l1.misses == 1
        assert memory.l1.hits == 0

    def test_store_does_not_count_in_hit_miss_statistics(self):
        memory = MemoryModel()
        for _ in range(5):
            memory.access_global((3,), is_store=True)
        assert memory.l1.accesses == 0
        assert memory.l1.hit_rate() == 0.0

    def test_store_still_counts_power_traffic(self):
        memory = MemoryModel()
        memory.access_global((1, 2), is_store=True)
        assert memory.counts.l1_accesses == 2
        assert memory.counts.l2_accesses == 2
        assert memory.counts.dram_accesses == 0

    def test_store_latency_is_l1_hit_latency(self):
        memory = MemoryModel()
        assert memory.access_global((9,), is_store=True) == memory.l1_hit_latency

    def test_store_hit_refreshes_lru(self):
        memory = MemoryModel()
        sets = memory.l1.num_sets
        colliding = [k * sets for k in range(5)]  # all map to one 4-way set
        for segment in colliding[:4]:
            memory.access_global((segment,), is_store=False)
        # Refresh the oldest line via a store, then force one eviction.
        memory.access_global((colliding[0],), is_store=True)
        memory.access_global((colliding[4],), is_store=False)
        # The store-refreshed line survived; the true LRU was evicted.
        assert memory.access_global((colliding[0],), is_store=False) == (
            memory.l1_hit_latency
        )
        memory2 = MemoryModel()
        for segment in colliding[:4]:
            memory2.access_global((segment,), is_store=False)
        memory2.access_global((colliding[4],), is_store=False)
        assert memory2.access_global((colliding[0],), is_store=False) > (
            memory2.l1_hit_latency
        )


class TestGtoForget:
    def test_forget_drops_greedy_preference(self):
        scheduler = WarpScheduler([0, 2, 4], SchedulerPolicy.GTO)
        assert scheduler.pick({2}) == 2
        assert scheduler.pick({0, 2}) == 2  # greedy on the last slot
        scheduler.forget(2)
        assert scheduler.pick({0, 2}) == 0  # back to oldest

    def test_forget_of_other_slot_keeps_preference(self):
        scheduler = WarpScheduler([0, 2, 4], SchedulerPolicy.GTO)
        assert scheduler.pick({2}) == 2
        scheduler.forget(0)
        assert scheduler.pick({0, 2}) == 2

    def test_no_greedy_transfer_across_warp_replacement(self):
        """A retired warp's slot gets a new warp; GTO must treat it as
        a fresh candidate, not inherit the retiree's greedy claim.

        Two warps share slot 0's scheduler partition over time: warp 0
        retires quickly and warp 2 is activated into its slot while
        warp 1's long dependency chain runs in the other partition.
        Both engines must agree (the event engine replicates forget()).
        """
        config = GpuConfig(
            threads_per_sm=64, scheduler_policy=SchedulerPolicy.GTO
        )
        chain = [_alu(dst=0)] + [_alu(dst=0, srcs=(0,)) for _ in range(6)]
        warps = [[_alu(dst=1)], list(chain), list(chain)]
        ref = SmSimulator(warps, config).run()
        got = EventSmSimulator(warps, config).run()
        assert ref == got
        assert ref.instructions == sum(len(w) for w in warps)


class TestWholeCtaActivation:
    def test_unfittable_cta_is_a_clear_error(self):
        config = GpuConfig(threads_per_sm=64)  # 2 warp slots
        warps = [[_BARRIER, _alu(dst=0)] for _ in range(3)]
        with pytest.raises(TimingError, match="residency"):
            SmSimulator(warps, config, warps_per_cta=3)
        with pytest.raises(TimingError, match="residency"):
            EventSmSimulator(warps, config, warps_per_cta=3)

    def test_cta_spanning_generations_completes(self):
        """Two CTAs, one SM generation each: barriers inside the second
        CTA must resolve even though it was not initially resident."""
        config = GpuConfig(threads_per_sm=64)  # 2 warp slots
        warp = [_alu(dst=0), _BARRIER, _alu(dst=1, srcs=(0,))]
        warps = [list(warp) for _ in range(4)]  # 2 CTAs of 2 warps
        for simulator in (
            SmSimulator(warps, config, warps_per_cta=2),
            EventSmSimulator(warps, config, warps_per_cta=2),
        ):
            result = simulator.run(max_cycles=100_000)
            assert result.instructions == 12

    def test_partial_trailing_cta_completes(self):
        config = GpuConfig(threads_per_sm=96)  # 3 warp slots
        warp = [_BARRIER, _alu(dst=0)]
        warps = [list(warp) for _ in range(5)]  # CTAs {0,1}, {2,3}, {4}
        ref = SmSimulator(warps, config, warps_per_cta=2).run()
        got = EventSmSimulator(warps, config, warps_per_cta=2).run()
        assert ref == got
        assert ref.instructions == 10

    @settings(max_examples=40, deadline=None)
    @given(
        warps=st.lists(random_ops(), min_size=2, max_size=8),
        warps_per_cta=st.sampled_from([1, 2, 3]),
        positions=st.data(),
    )
    def test_randomized_barrier_placements_never_deadlock(
        self, warps, warps_per_cta, positions
    ):
        """CTA-uniform barrier *counts* at arbitrary per-warp positions
        must always finish, even with fewer slots than warps."""
        barriers = positions.draw(st.integers(min_value=1, max_value=3))
        placed = []
        for ops in warps:
            ops = list(ops)
            for _ in range(barriers):
                index = positions.draw(
                    st.integers(min_value=0, max_value=len(ops))
                )
                ops.insert(index, _BARRIER)
            placed.append(ops)
        config = GpuConfig(threads_per_sm=96)  # 3 slots < up to 8 warps
        if min(warps_per_cta, len(placed)) > min(3, len(placed)):
            with pytest.raises(TimingError, match="residency"):
                SmSimulator(placed, config, warps_per_cta=warps_per_cta)
            return
        ref = SmSimulator(placed, config, warps_per_cta=warps_per_cta).run(
            max_cycles=2_000_000
        )
        got = EventSmSimulator(placed, config, warps_per_cta=warps_per_cta).run(
            max_cycles=2_000_000
        )
        assert ref == got
        assert ref.instructions == sum(len(w) for w in placed)
