"""Regenerators for every figure and table in the paper's evaluation."""

from repro.experiments import (  # noqa: F401
    extras,
    fig1,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    scorecard,
    suite,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import BenchmarkRun, ExperimentRunner
from repro.experiments.sensitivity import (
    SweepPoint,
    headline_is_robust,
    sweep_energy_parameter,
    sweep_latency_parameter,
)
from repro.experiments.tables import render_table

__all__ = [
    "BenchmarkRun",
    "ExperimentRunner",
    "SweepPoint",
    "extras",
    "fig1",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "headline_is_robust",
    "render_table",
    "scorecard",
    "suite",
    "sweep_energy_parameter",
    "sweep_latency_parameter",
    "table1",
    "table2",
    "table3",
]
