"""Figure 12 — normalized register-file dynamic power.

Series normalized to the baseline RF: "scalar only" [3],
Warped-Compression (BDI) [4], and our byte-wise compression.  Paper
reference: scalar-only RF consumes 63% of baseline (a 37% saving); ours
consumes 46% (a 54% saving); ours also beats the BDI scheme.

The metric here is RF dynamic *energy* over the same classified trace,
which equals the paper's power ratio up to the (small) cycle-count
differences between architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.power.rf_techniques import rf_energy_for_technique

SERIES = ("scalar_rf", "wc_bdi", "ours")


@dataclass
class Fig12Row:
    abbr: str
    normalized: dict[str, float]  # technique -> energy / baseline energy


@dataclass
class Fig12Data:
    rows: list[Fig12Row]

    def average(self, technique: str) -> float:
        if not self.rows:
            return 0.0
        return sum(r.normalized[technique] for r in self.rows) / len(self.rows)


def compute(runner: ExperimentRunner) -> Fig12Data:
    """Regenerate Figure 12 over all benchmarks."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        warp_size = run.trace.warp_size
        baseline = rf_energy_for_technique(
            run.classified, "baseline", warp_size, runner.params
        )
        normalized = {}
        for technique in SERIES:
            result = rf_energy_for_technique(
                run.classified, technique, warp_size, runner.params
            )
            normalized[technique] = result.normalized_to(baseline)
        rows.append(Fig12Row(abbr=abbr, normalized=normalized))
    return Fig12Data(rows=rows)


def render(data: Fig12Data) -> str:
    """Figure 12 as a text table."""
    table_rows = [
        (
            row.abbr,
            f"{row.normalized['scalar_rf']:.2f}",
            f"{row.normalized['wc_bdi']:.2f}",
            f"{row.normalized['ours']:.2f}",
        )
        for row in data.rows
    ]
    table_rows.append(
        (
            "AVG",
            f"{data.average('scalar_rf'):.2f}",
            f"{data.average('wc_bdi'):.2f}",
            f"{data.average('ours'):.2f}",
        )
    )
    body = render_table(
        ["bench", "scalar only", "W-C (BDI)", "ours"],
        table_rows,
        title="Figure 12: normalized RF dynamic power (baseline = 1.0)",
    )
    return body + "\npaper averages: scalar-only 0.63, ours 0.46"
