"""Unit tests for per-access register-file energy."""

import pytest

from repro.config import ArchitectureConfig
from repro.power.energy import DEFAULT_ENERGY
from repro.power.rf_energy import RegisterFileEnergyModel
from repro.regfile.access import AccessKind, RegisterAccess

BASELINE_MODEL = RegisterFileEnergyModel(ArchitectureConfig.baseline(), DEFAULT_ENERGY)
GSCALAR_MODEL = RegisterFileEnergyModel(ArchitectureConfig.gscalar(), DEFAULT_ENERGY)


class TestAccessShapes:
    def test_full_read(self):
        energy = BASELINE_MODEL.energy_of(
            RegisterAccess(kind=AccessKind.FULL_READ, register=0)
        )
        assert energy.rf_pj == pytest.approx(DEFAULT_ENERGY.rf_full_access_pj)
        assert energy.crossbar_pj == pytest.approx(
            128 * DEFAULT_ENERGY.crossbar_per_byte_pj
        )

    def test_scalar_read_costs_sidecar_only(self):
        energy = GSCALAR_MODEL.energy_of(
            RegisterAccess(kind=AccessKind.SCALAR_READ, register=0, enc=4, sidecar=True)
        )
        assert energy.rf_pj == pytest.approx(DEFAULT_ENERGY.sidecar_pj)
        assert energy.rf_pj < 0.06 * DEFAULT_ENERGY.rf_full_access_pj

    def test_compressed_read_scales_with_prefix(self):
        def rf_for(enc):
            return GSCALAR_MODEL.energy_of(
                RegisterAccess(
                    kind=AccessKind.COMPRESSED_READ,
                    register=0,
                    enc=enc,
                    enc_lo=enc,
                    enc_hi=enc,
                    half_compressed=True,
                    sidecar=True,
                )
            ).rf_pj

        assert rf_for(3) < rf_for(2) < rf_for(1) < rf_for(0)
        # 3-byte prefix: 2 of 8 arrays + sidecar.
        expected = 2 * DEFAULT_ENERGY.rf_array_pj + DEFAULT_ENERGY.sidecar_pj
        assert rf_for(3) == pytest.approx(expected)

    def test_half_compression_uses_per_half_counts(self):
        energy = GSCALAR_MODEL.energy_of(
            RegisterAccess(
                kind=AccessKind.COMPRESSED_READ,
                register=0,
                enc=0,
                enc_lo=4,
                enc_hi=2,
                half_compressed=True,
                sidecar=True,
            )
        )
        expected = 2 * DEFAULT_ENERGY.rf_array_pj + DEFAULT_ENERGY.sidecar_pj
        assert energy.rf_pj == pytest.approx(expected)

    def test_partial_write_baseline_vs_rotated(self):
        access = RegisterAccess(
            kind=AccessKind.PARTIAL_WRITE, register=0, active_mask=0x1, sidecar=True
        )
        rotated = GSCALAR_MODEL.energy_of(access).rf_pj
        baseline = BASELINE_MODEL.energy_of(
            RegisterAccess(kind=AccessKind.PARTIAL_WRITE, register=0, active_mask=0x1)
        ).rf_pj
        # One active lane: baseline touches one word-array, byte rotation
        # lights the whole bank (§3.3 last paragraph).
        assert baseline == pytest.approx(DEFAULT_ENERGY.rf_array_pj)
        assert rotated > baseline

    def test_scalar_rf_access(self):
        model = RegisterFileEnergyModel(ArchitectureConfig.alu_scalar(), DEFAULT_ENERGY)
        energy = model.energy_of(
            RegisterAccess(kind=AccessKind.SCALAR_RF_READ, register=0)
        )
        assert energy.rf_pj == pytest.approx(DEFAULT_ENERGY.scalar_rf_pj)


class TestTotals:
    def test_total_energy_sums(self):
        accesses = (
            RegisterAccess(kind=AccessKind.FULL_READ, register=0),
            RegisterAccess(kind=AccessKind.FULL_WRITE, register=1),
        )
        total = BASELINE_MODEL.total_energy(accesses)
        single = BASELINE_MODEL.energy_of(accesses[0])
        assert total.rf_pj == pytest.approx(2 * single.rf_pj)
        assert total.total_pj == pytest.approx(2 * single.total_pj)


class TestTallyAggregation:
    """The bincount-style tally path matches summed per-access energy."""

    ACCESSES = [
        RegisterAccess(kind=AccessKind.FULL_READ, register=3),
        RegisterAccess(kind=AccessKind.FULL_READ, register=9),
        RegisterAccess(
            kind=AccessKind.COMPRESSED_READ, register=1, enc=2, sidecar=True
        ),
        RegisterAccess(
            kind=AccessKind.COMPRESSED_WRITE,
            register=4,
            enc=1,
            enc_lo=1,
            enc_hi=3,
            half_compressed=True,
            sidecar=True,
        ),
        RegisterAccess(
            kind=AccessKind.SCALAR_READ, register=2, enc=4, sidecar=True
        ),
        RegisterAccess(
            kind=AccessKind.PARTIAL_WRITE, register=5, active_mask=0x0F0F
        ),
        RegisterAccess(
            kind=AccessKind.PARTIAL_WRITE,
            register=5,
            active_mask=0x0F0F,
            sidecar=True,
        ),
    ]

    @pytest.mark.parametrize("model", [BASELINE_MODEL, GSCALAR_MODEL])
    def test_tally_energy_equals_summed_energy_of(self, model):
        tally = {}
        for access in self.ACCESSES:
            key = model.tally_key(access)
            tally[key] = tally.get(key, 0) + 1
        aggregated = model.tally_energy(tally)
        rf = sum(model.energy_of(a).rf_pj for a in self.ACCESSES)
        crossbar = sum(model.energy_of(a).crossbar_pj for a in self.ACCESSES)
        assert aggregated.rf_pj == pytest.approx(rf)
        assert aggregated.crossbar_pj == pytest.approx(crossbar)

    @pytest.mark.parametrize("model", [BASELINE_MODEL, GSCALAR_MODEL])
    def test_energy_of_key_matches_energy_of(self, model):
        for access in self.ACCESSES:
            key = model.tally_key(access)
            via_key = model.energy_of_key(key)
            direct = model.energy_of(access)
            assert via_key.rf_pj == pytest.approx(direct.rf_pj)
            assert via_key.crossbar_pj == pytest.approx(direct.crossbar_pj)

    def test_identical_shapes_collapse_to_one_key(self):
        a = RegisterAccess(kind=AccessKind.FULL_READ, register=3)
        b = RegisterAccess(kind=AccessKind.FULL_READ, register=200)
        assert BASELINE_MODEL.tally_key(a) == BASELINE_MODEL.tally_key(b)

    def test_partial_write_keys_split_by_mask_shape(self):
        narrow = RegisterAccess(
            kind=AccessKind.PARTIAL_WRITE, register=0, active_mask=0x1
        )
        wide = RegisterAccess(
            kind=AccessKind.PARTIAL_WRITE, register=0, active_mask=0xFFFF
        )
        assert GSCALAR_MODEL.tally_key(narrow) != GSCALAR_MODEL.tally_key(wide)

    def test_partial_arrays_is_memoized_and_correct(self):
        mask = 0x00FF
        first = BASELINE_MODEL.partial_arrays(mask)
        assert BASELINE_MODEL.partial_arrays(mask) == first
        direct = BASELINE_MODEL.energy_of(
            RegisterAccess(
                kind=AccessKind.PARTIAL_WRITE, register=0, active_mask=mask
            )
        )
        assert first * DEFAULT_ENERGY.rf_array_pj == pytest.approx(direct.rf_pj)
