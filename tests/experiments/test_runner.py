"""Tests for the caching experiment runner."""

import pytest

from repro.config import ArchitectureConfig
from repro.experiments.runner import ExperimentRunner, RunnerStats


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="tiny")


class TestRunner:
    def test_benchmark_names_in_table2_order(self, runner):
        names = runner.benchmark_names()
        assert names[0] == "BT"
        assert names[-1] == "ACF"
        assert len(names) == 17

    def test_run_caches_trace(self, runner):
        first = runner.run("BP")
        second = runner.run("bp")  # case-insensitive
        assert first is second

    def test_processed_cached_per_architecture(self, runner):
        arch = ArchitectureConfig.gscalar()
        first = runner.processed("BP", arch)
        second = runner.processed("BP", arch)
        assert first is second

    def test_timing_and_power(self, runner):
        arch = ArchitectureConfig.baseline()
        timing = runner.timing("HS", arch)
        power = runner.power("HS", arch)
        assert timing.cycles > 0
        assert power.cycles == timing.cycles
        assert power.ipc_per_watt > 0

    def test_warp64_traces(self, runner):
        trace32 = runner.trace_with_warp_size("HS", 32)
        trace64 = runner.trace_with_warp_size("HS", 64)
        assert trace32.warp_size == 32
        assert trace64.warp_size == 64

    def test_warp64_case_insensitive(self, runner):
        first = runner.trace_with_warp_size("HS", 64)
        second = runner.trace_with_warp_size("hs", 64)
        assert first is second

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="nope")


class TestRunnerStats:
    def test_merge_accepts_stats_and_dicts(self):
        stats = RunnerStats()
        stats.bump("trace_executions", 2)
        stats.add_time("classify", 0.5)
        other = RunnerStats()
        other.bump("trace_executions")
        other.bump("trace_cache_hits", 3)
        stats.merge(other)
        stats.merge({"counters": {"trace_executions": 1}, "stage_seconds": {"classify": 0.25}})
        assert stats.trace_executions == 4
        assert stats.counters["trace_cache_hits"] == 3
        assert stats.stage_seconds["classify"] == pytest.approx(0.75)

    def test_to_dict_round_trips_through_merge(self):
        stats = RunnerStats()
        stats.bump("trace_executions", 5)
        rebuilt = RunnerStats()
        rebuilt.merge(stats.to_dict())
        assert rebuilt.trace_executions == 5


class TestTraceCache:
    def test_disk_cache_round_trip(self, tmp_path):
        first = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        run_a = first.run("HS")
        assert (tmp_path / "HS_tiny.v5.json").exists()
        assert first.stats.trace_executions == 1
        second = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        run_b = second.run("HS")
        assert second.stats.trace_executions == 0
        assert second.stats.counters["trace_cache_hits"] == 1
        assert run_a.trace.total_instructions == run_b.trace.total_instructions
        masks_a = [e.active_mask for e in run_a.trace.all_events()]
        masks_b = [e.active_mask for e in run_b.trace.all_events()]
        assert masks_a == masks_b

    def test_warp64_trace_cached_on_disk(self, tmp_path):
        first = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        trace_a = first.trace_with_warp_size("hs", 64)
        assert (tmp_path / "HS_tiny_w64.v5.json").exists()
        second = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        trace_b = second.trace_with_warp_size("HS", 64)
        assert second.stats.trace_executions == 0
        assert trace_b.warp_size == 64
        masks_a = [e.active_mask for e in trace_a.all_events()]
        masks_b = [e.active_mask for e in trace_b.all_events()]
        assert masks_a == masks_b

    def test_warp_sizes_do_not_collide_in_cache(self, tmp_path):
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        runner.run("HS")
        runner.trace_with_warp_size("HS", 64)
        assert (tmp_path / "HS_tiny.v5.json").exists()
        assert (tmp_path / "HS_tiny_w64.v5.json").exists()
        fresh = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        assert fresh.trace_with_warp_size("HS", 64).warp_size == 64
        assert fresh.run("HS").trace.warp_size == 32

    def test_fingerprint_mismatch_triggers_reexecution(self, tmp_path):
        import json

        seeded = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        good = seeded.run("HS").trace
        manifest = tmp_path / "HS_tiny.v5.json"
        # Rewrite the manifest under a wrong fingerprint, simulating a
        # kernel/scale edit since the trace was recorded.  The peek is
        # cheap — staleness is decided before any bank is mapped.
        doc = json.loads(manifest.read_text())
        doc["fingerprint"] = "0" * 16
        manifest.write_text(json.dumps(doc))
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        run = runner.run("HS")
        assert runner.stats.trace_executions == 1
        assert runner.stats.counters["trace_cache_invalid"] == 1
        # The stale entry was overwritten with a valid one.
        verifier = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        verifier.run("HS")
        assert verifier.stats.trace_executions == 0
        assert run.trace.total_instructions == good.total_instructions

    def test_corrupt_cache_file_recovered(self, tmp_path):
        seeded = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        expected = seeded.run("HS").trace.total_instructions
        path = tmp_path / "HS_tiny.v5.json"
        path.write_bytes(b"not a manifest")
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        run = runner.run("HS")
        assert run.trace.total_instructions == expected
        assert runner.stats.trace_executions == 1
        assert runner.stats.counters["trace_cache_invalid"] == 1
        # And the overwrite repaired the cache for the next process.
        repaired = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        repaired.run("HS")
        assert repaired.stats.trace_executions == 0

    def test_corrupt_sidecar_recovered(self, tmp_path):
        arch = ArchitectureConfig.gscalar()
        seeded = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        expected = seeded.power("HS", arch).ipc_per_watt
        (tmp_path / "HS_tiny_classified.pkl").write_bytes(b"junk")
        (tmp_path / f"HS_tiny_results_{arch.name}.pkl").write_bytes(b"junk")
        runner = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        assert runner.power("HS", arch).ipc_per_watt == expected
        assert runner.stats.counters["sidecar_invalid"] >= 2

    def test_result_sidecars_replay_timing_and_power(self, tmp_path):
        arch = ArchitectureConfig.gscalar()
        seeded = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        timing = seeded.timing("HS", arch)
        power = seeded.power("HS", arch)
        assert (tmp_path / f"HS_tiny_results_{arch.name}.pkl").exists()
        warm = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        assert warm.power("HS", arch).ipc_per_watt == power.ipc_per_watt
        assert warm.timing("HS", arch).cycles == timing.cycles
        assert warm.stats.counters["result_cache_hits"] == 1
        assert "timing" not in warm.stats.stage_seconds

    def test_energy_param_change_invalidates_results(self, tmp_path):
        from repro.power.energy import EnergyParams

        arch = ArchitectureConfig.gscalar()
        seeded = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        seeded.power("HS", arch)
        tweaked = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, params=EnergyParams(alu_lane_pj=99.0)
        )
        tweaked.power("HS", arch)
        assert tweaked.stats.counters.get("result_cache_hits", 0) == 0
        assert tweaked.stats.counters["result_cache_misses"] >= 1

    def test_stale_sidecar_skipped_without_unpickling(self, tmp_path):
        """A result sidecar left by different energy params is rejected
        from its peeked fingerprint alone — counted separately from
        damage, because no payload was materialized to find out."""
        from repro.power.energy import EnergyParams

        arch = ArchitectureConfig.gscalar()
        seeded = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        seeded.power("HS", arch)
        tweaked = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, params=EnergyParams(alu_lane_pj=99.0)
        )
        tweaked.power("HS", arch)
        assert tweaked.stats.counters["sidecar_stale_skipped"] >= 1


class TestTransport:
    def test_unknown_transport_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="transport"):
            ExperimentRunner(scale="tiny", cache_dir=tmp_path, transport="carrier-pigeon")

    def test_legacy_transport_writes_npz(self, tmp_path):
        legacy = ExperimentRunner(scale="tiny", cache_dir=tmp_path, transport="legacy")
        legacy.run("HS")
        assert (tmp_path / "HS_tiny.npz").exists()
        assert not (tmp_path / "HS_tiny.v5.json").exists()
        warm = ExperimentRunner(scale="tiny", cache_dir=tmp_path, transport="legacy")
        warm.run("HS")
        assert warm.stats.trace_executions == 0
        assert warm.stats.counters["trace_cache_hits"] == 1
        assert warm.stats.counters["bytes_deserialized"] > 0
        assert warm.stats.counters.get("bytes_mapped", 0) == 0

    def test_legacy_npz_migrates_to_v5(self, tmp_path):
        legacy = ExperimentRunner(scale="tiny", cache_dir=tmp_path, transport="legacy")
        expected = legacy.run("HS").trace.total_instructions
        # First mmap-transport open reads the npz once and writes the
        # entry through to v5 — no re-execution.
        migrator = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        assert migrator.run("HS").trace.total_instructions == expected
        assert migrator.stats.trace_executions == 0
        assert migrator.stats.counters["cache_migrated_v5"] == 1
        assert (tmp_path / "HS_tiny.v5.json").exists()
        # From then on the hit is a zero-copy map, not a decompress.
        warm = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        assert warm.run("HS").trace.total_instructions == expected
        assert warm.stats.counters.get("cache_migrated_v5", 0) == 0
        assert warm.stats.counters["bytes_mapped"] > 0

    def test_mmap_hit_results_match_legacy(self, tmp_path):
        """Every modeled architecture's power report is bit-identical
        whether the trace came through the legacy decompress path or
        the v5 zero-copy map."""
        from repro.experiments.runner import matrix_architectures

        legacy_dir = tmp_path / "legacy"
        mmap_dir = tmp_path / "mmap"
        legacy = ExperimentRunner(scale="tiny", cache_dir=legacy_dir, transport="legacy")
        seeder = ExperimentRunner(scale="tiny", cache_dir=mmap_dir)
        for arch in matrix_architectures():
            seeder.power("HS", arch)
        warm = ExperimentRunner(scale="tiny", cache_dir=mmap_dir)
        for arch in matrix_architectures():
            via_pickle = legacy.power("HS", arch)
            via_mmap = warm.power("HS", arch)
            assert via_mmap.ipc_per_watt == via_pickle.ipc_per_watt
            assert via_mmap.cycles == via_pickle.cycles
            assert via_mmap.total_power_w == via_pickle.total_power_w
        assert warm.stats.counters["bytes_mapped"] > 0
