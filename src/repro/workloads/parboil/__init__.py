"""Parboil proxy workloads."""
