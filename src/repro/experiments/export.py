"""Machine-readable export of experiment results.

``python -m repro <exp> --json out.json`` writes the computed data as
JSON so external tooling (plotting, regression tracking, CI dashboards)
can consume the reproduction without parsing text tables.  Every
exporter emits plain dict/list/float structures plus a small metadata
envelope (experiment name, scale, paper reference values).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.similarity import CATEGORIES
from repro.experiments import extras as extras_mod
from repro.experiments import fig1, fig8, fig9, fig10, fig11, fig12, staticdyn


def fig1_to_dict(data: "fig1.Fig1Data") -> dict:
    return {
        "benchmarks": {
            row.abbr: {
                "divergent_fraction": row.stats.divergent_fraction,
                "divergent_scalar_fraction": row.stats.divergent_scalar_fraction,
            }
            for row in data.rows
        },
        "average_divergent": data.average_divergent,
        "average_divergent_scalar": data.average_divergent_scalar,
        "paper": {"average_divergent": 0.28, "scalar_share_of_divergent": 0.45},
    }


def fig8_to_dict(data: "fig8.Fig8Data") -> dict:
    return {
        "benchmarks": {
            row.abbr: row.distribution.fractions() for row in data.rows
        },
        "average": data.average_fractions(),
        "categories": list(CATEGORIES),
        "paper": {"scalar": 0.36, "3-byte": 0.17, "2-byte": 0.04, "1-byte": 0.07},
    }


def fig9_to_dict(data: "fig9.Fig9Data") -> dict:
    return {
        "benchmarks": {
            row.abbr: {
                "alu_scalar": row.alu_scalar,
                "sfu_mem_scalar": row.sfu_mem_scalar,
                "half_scalar": row.half_scalar,
                "divergent_scalar": row.divergent_scalar,
                "total": row.total_eligible,
            }
            for row in data.rows
        },
        "average_alu_scalar": data.average_alu_scalar,
        "average_total": data.average_total,
        "paper": {"alu_scalar": 0.22, "total": 0.40},
    }


def fig10_to_dict(data: "fig10.Fig10Data") -> dict:
    return {
        "benchmarks": {
            row.abbr: {
                "warp32": row.fraction_warp32,
                "warp64": row.fraction_warp64,
            }
            for row in data.rows
        },
        "average_warp32": data.average_warp32,
        "average_warp64": data.average_warp64,
        "paper": {"warp32": 0.02, "warp64": 0.05},
    }


def fig11_to_dict(data: "fig11.Fig11Data") -> dict:
    return {
        "benchmarks": {
            row.abbr: {
                "ipc_per_watt": dict(row.ipc_per_watt),
                "ipc": dict(row.ipc),
                "normalized_efficiency": {
                    name: row.normalized_efficiency(name)
                    for name in row.ipc_per_watt
                },
            }
            for row in data.rows
        },
        "average_gscalar_efficiency": data.average_gscalar_efficiency,
        "average_alu_scalar_efficiency": data.average_alu_scalar_efficiency,
        "average_gscalar_ipc": data.average_gscalar_ipc,
        "paper": {
            "gscalar_vs_baseline": 1.24,
            "gscalar_vs_alu_scalar": 1.15,
            "average_ipc": 0.983,
        },
    }


def fig12_to_dict(data: "fig12.Fig12Data") -> dict:
    return {
        "benchmarks": {row.abbr: dict(row.normalized) for row in data.rows},
        "averages": {
            technique: data.average(technique) for technique in fig12.SERIES
        },
        "paper": {"scalar_rf": 0.63, "ours": 0.46},
    }


def extras_to_dict(data: "extras_mod.ExtrasData") -> dict:
    return {
        "ours_ratio": data.ours_ratio,
        "bdi_ratio": data.bdi_ratio,
        "decompress_move_overhead": data.decompress_move_overhead,
        "decompress_move_overhead_compiler": data.decompress_move_overhead_compiler,
        "static_scalar_fraction": data.static_scalar_fraction,
        "dynamic_scalar_fraction": data.dynamic_scalar_fraction,
        "compiler_shortfall": data.compiler_shortfall,
        "address_savings_32bit": data.address_savings_32bit,
        "address_savings_64bit": data.address_savings_64bit,
        "codec_cost_ratio": data.codec_cost_ratio,
        "paper": {"ours_ratio": 2.17, "bdi_ratio": 2.13, "move_overhead": 0.02},
    }


def staticdyn_to_dict(data: "staticdyn.StaticDynData") -> dict:
    return {
        "benchmarks": {
            row.abbr: {
                "static_sites": {
                    "provably_scalar": row.static_provable,
                    "possibly_scalar": row.static_possible,
                    "divergent": row.static_divergent,
                },
                "total_events": row.total_events,
                "predicted_events": row.predicted_events,
                "dynamic_full_scalar_events": row.dynamic_full_scalar_events,
                "precision": row.precision,
                "recall": row.recall,
                "coverage": row.coverage,
                "soundness_violations": row.soundness_violations,
            }
            for row in data.rows
        },
        "average_precision": data.average_precision,
        "average_recall": data.average_recall,
        "average_coverage": data.average_coverage,
        "total_soundness_violations": data.total_soundness_violations,
        "paper": {"note": "section 6: compile-time scalarization finds far fewer"},
    }


_EXPORTERS = {
    "fig1": (fig1, fig1_to_dict),
    "fig8": (fig8, fig8_to_dict),
    "fig9": (fig9, fig9_to_dict),
    "fig10": (fig10, fig10_to_dict),
    "fig11": (fig11, fig11_to_dict),
    "fig12": (fig12, fig12_to_dict),
    "extras": (extras_mod, extras_to_dict),
    "staticdyn": (staticdyn, staticdyn_to_dict),
}


def exportable_experiments() -> tuple[str, ...]:
    """Experiments that support JSON export."""
    return tuple(_EXPORTERS)


def export_experiment(name: str, runner, scale: str) -> dict:
    """Compute one experiment and wrap it in a metadata envelope."""
    if name not in _EXPORTERS:
        raise KeyError(f"{name!r} has no JSON exporter")
    module, exporter = _EXPORTERS[name]
    payload = exporter(module.compute(runner))
    return {"experiment": name, "scale": scale, "data": payload}


def write_json(results: list[dict], path: str | Path) -> None:
    """Write a list of experiment envelopes to one JSON file."""
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True))
