"""``sgemm`` (MM) proxy.

Signature reproduced: another of the paper's non-divergent benchmarks.
The tiled inner product: every iteration the warp loads one element of
the shared A tile through a broadcast address (MEM-scalar — all threads
of the warp read the same A element), advances scalar tile indices
(ALU-scalar), and FFMAs against its private B column (vector).
"""

from __future__ import annotations

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1111


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the MM proxy at the given scale."""
    k_dim = 4 * scale.inner_iterations
    b = KernelBuilder("sgemm")
    tid = b.tid()
    b_value = b.ld_global(thread_element_addr(b, tid, INPUT_B))
    acc = b.mov(b.fimm(0.0))
    a_addr = b.mov(INPUT_A)  # scalar pointer into the A tile

    with b.for_range(0, k_dim) as _k:
        a_element = b.ld_global(a_addr)  # MEM scalar (broadcast tile read)
        a_addr = b.iadd(a_addr, 4, dst=a_addr)  # ALU scalar
        row_scale = b.fmul(a_element, b.fimm(1.0))  # ALU scalar
        acc = b.ffma(b_value, row_scale, acc, dst=acc)  # vector
        b_value = b.fmul(b_value, b.fimm(1.0009765625), dst=b_value)  # vector

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), acc)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(INPUT_A, datagen.narrow_floats(k_dim + 1, 1.0, 0.4, _SEED))
    memory.bind_array(
        INPUT_B, datagen.narrow_floats(total_threads, 0.9, 0.05, _SEED + 1)
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="tiled inner product with broadcast A-tile reads",
    )
