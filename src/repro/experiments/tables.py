"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percent(fraction: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * fraction:.1f}%"


def render_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    reference: float | None = None,
    title: str | None = None,
) -> str:
    """Render grouped horizontal bars in plain text.

    ``series`` maps a series name to one value per label.  ``reference``
    draws a tick at that value on every bar (e.g. the 1.0 line of a
    normalized figure).
    """
    if not series:
        return title or ""
    peak = max(max(values) for values in series.values())
    if reference is not None:
        peak = max(peak, reference)
    if peak <= 0:
        peak = 1.0
    name_width = max(len(name) for name in series)
    label_width = max(len(label) for label in labels) if labels else 0
    lines = []
    if title:
        lines.append(title)
    for index, label in enumerate(labels):
        for series_index, (name, values) in enumerate(series.items()):
            bar_length = int(round(width * values[index] / peak))
            bar = "#" * bar_length
            if reference is not None:
                tick = int(round(width * reference / peak))
                if tick >= len(bar):
                    bar = bar.ljust(tick) + "|"
                else:
                    bar = bar[:tick] + "|" + bar[tick + 1 :]
            row_label = label if series_index == 0 else ""
            lines.append(
                f"{row_label:>{label_width}}  {name:<{name_width}}  "
                f"{bar} {values[index]:.2f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
