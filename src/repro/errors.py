"""Exception hierarchy for the G-Scalar reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class KernelValidationError(ReproError):
    """A kernel's control-flow graph or instruction stream is malformed."""


class BuilderError(ReproError):
    """Misuse of the :class:`repro.isa.builder.KernelBuilder` DSL."""


class ExecutionError(ReproError):
    """The functional SIMT executor hit an illegal runtime condition."""


class MemoryError_(ReproError):
    """An access touched unmapped functional memory.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`, which means something entirely different.
    """


class ConfigError(ReproError):
    """An architecture or simulator configuration is inconsistent."""


class TraceError(ReproError):
    """A dynamic trace is malformed or used inconsistently."""


class TimingError(ReproError):
    """The cycle-level timing model reached an inconsistent state."""


class CompressionError(ReproError):
    """Invalid input to a register-value compressor."""


class WorkloadError(ReproError):
    """A benchmark workload was requested with invalid parameters."""
