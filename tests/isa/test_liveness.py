"""Tests for liveness and branch-region analysis."""

from repro.isa import KernelBuilder
from repro.isa.kernel import EXIT_NODE, Branch
from repro.isa.liveness import block_liveness, branch_regions


def diamond():
    b = KernelBuilder("diamond")
    tid = b.tid()
    c = b.mov(7)
    cond = b.setlt(tid, 16)
    with b.if_(cond) as branch:
        x = b.iadd(c, 1)
        with branch.else_():
            x2 = b.iadd(c, 2)
    b.st_global(b.imad(tid, 4, 0x100), c)
    return b.finish()


class TestLiveness:
    def test_constant_live_across_branch(self):
        kernel = diamond()
        liveness = block_liveness(kernel)
        # `c` (register written in block 0, read in arms and at the end)
        # must be live out of the entry block.
        entry_defs = liveness.defs[0]
        c_candidates = entry_defs & liveness.live_out[0]
        assert c_candidates  # at least c and cond flow out

    def test_dead_temp_not_live_at_merge(self):
        kernel = diamond()
        liveness = block_liveness(kernel)
        branch_term = kernel.blocks[0].terminator
        assert isinstance(branch_term, Branch)
        taken = kernel.blocks[branch_term.taken]
        temp = taken.instructions[-1].dst.index  # x, never read again
        regions = branch_regions(kernel)
        merge = regions[branch_term.taken].reconvergence
        assert temp not in liveness.live_in[merge]

    def test_loop_carried_register_live_at_header(self):
        b = KernelBuilder("loop")
        acc = b.mov(0)
        with b.for_range(0, 4):
            acc = b.iadd(acc, 1, dst=acc)
        b.st_global(b.mov(0x100), acc)
        kernel = b.finish()
        liveness = block_liveness(kernel)
        # acc is live around the back edge: live-in of the loop header.
        header = 1
        assert acc.index in liveness.live_in[header]

    def test_use_before_def_within_block(self):
        b = KernelBuilder("ubd")
        x = b.mov(1)
        y = b.iadd(x, 1)
        b.iadd(y, 1, dst=x)  # x redefined after use
        kernel = b.finish()
        liveness = block_liveness(kernel)
        assert x.index in liveness.defs[0]
        assert liveness.live_in[0] == set()  # everything defined first


class TestBranchRegions:
    def test_if_else_region(self):
        kernel = diamond()
        regions = branch_regions(kernel)
        branch_term = kernel.blocks[0].terminator
        region = regions[branch_term.taken]
        assert region.branch_block == 0
        assert region.taken_head == branch_term.taken
        assert region.not_taken_head == branch_term.not_taken
        assert region.sibling_of(branch_term.taken) == branch_term.not_taken
        # Both arms map to the same region; entry and merge do not.
        assert branch_term.not_taken in regions
        assert 0 not in regions
        assert region.reconvergence not in regions

    def test_nested_regions_innermost_wins(self):
        b = KernelBuilder("nested")
        tid = b.tid()
        c1 = b.setlt(tid, 16)
        c2 = b.setlt(tid, 8)
        with b.if_(c1):
            with b.if_(c2):
                b.iadd(tid, 1)
        kernel = b.finish()
        regions = branch_regions(kernel)
        # The innermost block belongs to the inner branch's region.
        inner_branches = [
            blk.block_id
            for blk in kernel.blocks
            if isinstance(blk.terminator, Branch) and blk.block_id != 0
        ]
        inner_branch = inner_branches[0]
        inner_taken = kernel.blocks[inner_branch].terminator.taken
        assert regions[inner_taken].branch_block == inner_branch

    def test_straight_line_has_no_regions(self):
        b = KernelBuilder("straight")
        b.mov(1)
        kernel = b.finish()
        assert branch_regions(kernel) == {}

    def test_loop_body_not_a_branch_region_member_of_itself(self):
        b = KernelBuilder("loop")
        i = b.mov(0)
        with b.while_(lambda: b.setlt(i, 3)):
            b.iadd(i, 1, dst=i)
        kernel = b.finish()
        regions = branch_regions(kernel)
        # The loop header's branch creates a region containing the body.
        assert any(r.branch_block == 1 for r in regions.values())
