"""Unit tests for the prior-work single-bank scalar register file."""

import pytest

from repro.errors import ConfigError
from repro.regfile.scalar_rf import ScalarRegisterFile


class TestResidency:
    def test_write_then_read_hits(self):
        rf = ScalarRegisterFile()
        rf.write_scalar(3)
        assert rf.read(3)
        assert rf.scalar_reads == 1

    def test_miss_falls_back_to_vector(self):
        rf = ScalarRegisterFile()
        assert not rf.read(5)
        assert rf.vector_fallback_reads == 1

    def test_invalidate(self):
        rf = ScalarRegisterFile()
        rf.write_scalar(2)
        rf.invalidate(2)
        assert not rf.is_resident(2)
        assert not rf.read(2)

    def test_invalidate_nonresident_is_noop(self):
        rf = ScalarRegisterFile()
        rf.invalidate(9)
        assert not rf.is_resident(9)

    def test_lru_eviction(self):
        rf = ScalarRegisterFile(capacity=2)
        rf.write_scalar(0)
        rf.write_scalar(1)
        rf.read(0)  # make 1 the LRU
        rf.write_scalar(2)
        assert rf.evictions == 1
        assert rf.is_resident(0)
        assert not rf.is_resident(1)
        assert rf.is_resident(2)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            ScalarRegisterFile(capacity=0)


class TestPortSerialization:
    def test_single_port_serializes(self):
        rf = ScalarRegisterFile()
        assert rf.port_cycles_for(0) == 0
        assert rf.port_cycles_for(1) == 1
        assert rf.port_cycles_for(3) == 3  # the §4.1 burst bottleneck

    def test_multi_port(self):
        rf = ScalarRegisterFile(read_ports=2)
        assert rf.port_cycles_for(3) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ScalarRegisterFile().port_cycles_for(-1)


class TestCapacityPressure:
    """Default-capacity (256-entry) behaviour under streaming pressure."""

    def test_default_capacity_lru_sweep(self):
        rf = ScalarRegisterFile()
        for register in range(300):
            rf.write_scalar(register)
        assert rf.evictions == 300 - rf.capacity
        # The oldest 44 registers were evicted; the newest 256 survive.
        assert not any(rf.is_resident(r) for r in range(300 - rf.capacity))
        assert all(rf.is_resident(r) for r in range(300 - rf.capacity, 300))

    def test_reads_refresh_recency_under_pressure(self):
        rf = ScalarRegisterFile(capacity=4)
        for register in range(4):
            rf.write_scalar(register)
        rf.read(0)  # refresh 0; register 1 becomes the LRU victim
        rf.write_scalar(4)
        rf.write_scalar(5)
        assert rf.is_resident(0)
        assert not rf.is_resident(1)
        assert not rf.is_resident(2)
        assert rf.evictions == 2

    def test_overwrite_resident_does_not_evict(self):
        rf = ScalarRegisterFile(capacity=2)
        rf.write_scalar(0)
        rf.write_scalar(1)
        rf.write_scalar(0)  # re-write: refresh, not an insertion
        assert rf.evictions == 0
        rf.write_scalar(2)  # now 1 is the LRU victim
        assert not rf.is_resident(1)
        assert rf.is_resident(0)


class TestReResidency:
    """§4.1: divergence spills a value; a later uniform write restores it."""

    def test_re_residency_after_divergent_overwrite(self):
        rf = ScalarRegisterFile()
        rf.write_scalar(7)
        assert rf.read(7)
        # A divergent overwrite of r7 makes the scalar copy stale.
        rf.invalidate(7)
        assert not rf.read(7)
        assert rf.vector_fallback_reads == 1
        # A later uniform write makes it scalar-resident again.
        rf.write_scalar(7)
        assert rf.read(7)
        assert rf.scalar_reads == 2

    def test_invalidated_slot_is_freed(self):
        rf = ScalarRegisterFile(capacity=2)
        rf.write_scalar(0)
        rf.write_scalar(1)
        rf.invalidate(0)
        rf.write_scalar(2)  # fills the freed slot; nothing to evict
        assert rf.evictions == 0
        assert rf.is_resident(1)
        assert rf.is_resident(2)
