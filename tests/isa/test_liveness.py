"""Tests for liveness and branch-region analysis."""

from repro.isa import KernelBuilder
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.kernel import EXIT_NODE, BasicBlock, Branch, Exit, Jump, Kernel
from repro.isa.liveness import block_liveness, branch_region_members, branch_regions
from repro.isa.opcodes import Opcode


def diamond():
    b = KernelBuilder("diamond")
    tid = b.tid()
    c = b.mov(7)
    cond = b.setlt(tid, 16)
    with b.if_(cond) as branch:
        x = b.iadd(c, 1)
        with branch.else_():
            x2 = b.iadd(c, 2)
    b.st_global(b.imad(tid, 4, 0x100), c)
    return b.finish()


class TestLiveness:
    def test_constant_live_across_branch(self):
        kernel = diamond()
        liveness = block_liveness(kernel)
        # `c` (register written in block 0, read in arms and at the end)
        # must be live out of the entry block.
        entry_defs = liveness.defs[0]
        c_candidates = entry_defs & liveness.live_out[0]
        assert c_candidates  # at least c and cond flow out

    def test_dead_temp_not_live_at_merge(self):
        kernel = diamond()
        liveness = block_liveness(kernel)
        branch_term = kernel.blocks[0].terminator
        assert isinstance(branch_term, Branch)
        taken = kernel.blocks[branch_term.taken]
        temp = taken.instructions[-1].dst.index  # x, never read again
        regions = branch_regions(kernel)
        merge = regions[branch_term.taken].reconvergence
        assert temp not in liveness.live_in[merge]

    def test_loop_carried_register_live_at_header(self):
        b = KernelBuilder("loop")
        acc = b.mov(0)
        with b.for_range(0, 4):
            acc = b.iadd(acc, 1, dst=acc)
        b.st_global(b.mov(0x100), acc)
        kernel = b.finish()
        liveness = block_liveness(kernel)
        # acc is live around the back edge: live-in of the loop header.
        header = 1
        assert acc.index in liveness.live_in[header]

    def test_use_before_def_within_block(self):
        b = KernelBuilder("ubd")
        x = b.mov(1)
        y = b.iadd(x, 1)
        b.iadd(y, 1, dst=x)  # x redefined after use
        kernel = b.finish()
        liveness = block_liveness(kernel)
        assert x.index in liveness.defs[0]
        assert liveness.live_in[0] == set()  # everything defined first


class TestBranchRegions:
    def test_if_else_region(self):
        kernel = diamond()
        regions = branch_regions(kernel)
        branch_term = kernel.blocks[0].terminator
        region = regions[branch_term.taken]
        assert region.branch_block == 0
        assert region.taken_head == branch_term.taken
        assert region.not_taken_head == branch_term.not_taken
        assert region.sibling_of(branch_term.taken) == branch_term.not_taken
        # Both arms map to the same region; entry and merge do not.
        assert branch_term.not_taken in regions
        assert 0 not in regions
        assert region.reconvergence not in regions

    def test_nested_regions_innermost_wins(self):
        b = KernelBuilder("nested")
        tid = b.tid()
        c1 = b.setlt(tid, 16)
        c2 = b.setlt(tid, 8)
        with b.if_(c1):
            with b.if_(c2):
                b.iadd(tid, 1)
        kernel = b.finish()
        regions = branch_regions(kernel)
        # The innermost block belongs to the inner branch's region.
        inner_branches = [
            blk.block_id
            for blk in kernel.blocks
            if isinstance(blk.terminator, Branch) and blk.block_id != 0
        ]
        inner_branch = inner_branches[0]
        inner_taken = kernel.blocks[inner_branch].terminator.taken
        assert regions[inner_taken].branch_block == inner_branch

    def test_straight_line_has_no_regions(self):
        b = KernelBuilder("straight")
        b.mov(1)
        kernel = b.finish()
        assert branch_regions(kernel) == {}

    def test_loop_body_not_a_branch_region_member_of_itself(self):
        b = KernelBuilder("loop")
        i = b.mov(0)
        with b.while_(lambda: b.setlt(i, 3)):
            b.iadd(i, 1, dst=i)
        kernel = b.finish()
        regions = branch_regions(kernel)
        # The loop header's branch creates a region containing the body.
        assert any(r.branch_block == 1 for r in regions.values())


class TestBranchRegionMembers:
    def test_nested_regions_overlap(self):
        b = KernelBuilder("nested")
        tid = b.tid()
        c1 = b.setlt(tid, 16)
        c2 = b.setlt(tid, 8)
        with b.if_(c1):
            with b.if_(c2):
                b.iadd(tid, 1)
        kernel = b.finish()
        by_branch = {
            region.branch_block: (region, members)
            for region, members in branch_region_members(kernel)
        }
        outer_region, outer_members = by_branch[0]
        inner_id = next(bid for bid in by_branch if bid != 0)
        inner_region, inner_members = by_branch[inner_id]
        # The outer region contains the inner branch block and every
        # inner member; the inner region is a strict subset.
        assert inner_id in outer_members
        assert inner_members < outer_members
        assert inner_region.reconvergence in outer_members
        assert outer_region.reconvergence not in outer_members

    def test_builder_empty_else_arm_is_still_a_member(self):
        # if-without-else: the builder materializes an instruction-less
        # not-taken block, which is still a region member.
        b = KernelBuilder("no_else")
        tid = b.tid()
        cond = b.setlt(tid, 16)
        with b.if_(cond):
            b.iadd(tid, 1)
        b.st_global(b.mov(0x100), tid)
        kernel = b.finish()
        [(region, members)] = branch_region_members(kernel)
        assert members == {region.taken_head, region.not_taken_head}
        assert kernel.blocks[region.not_taken_head].instructions == []
        assert region.reconvergence not in members

    def test_arm_head_at_reconvergence_contributes_no_members(self):
        # A hand-built CFG whose not-taken edge goes straight to the
        # join: that arm is empty and adds nothing to the region.
        cond_def = Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),))
        body = Instruction(opcode=Opcode.IADD, dst=Reg(1), srcs=(Reg(0), Imm(1)))
        kernel = Kernel(
            name="fallthrough_arm",
            blocks=[
                BasicBlock(0, [cond_def], Branch(cond=Reg(0), taken=1, not_taken=2)),
                BasicBlock(1, [body], Jump(target=2)),
                BasicBlock(2, [], Exit()),
            ],
        )
        [(region, members)] = branch_region_members(kernel)
        assert region.not_taken_head == region.reconvergence == 2
        assert members == {1}

    def test_exit_postdominator_spans_to_kernel_end(self):
        # Both arms exit without reconverging: ipdom(branch) is the
        # virtual EXIT_NODE and the region spans every arm block.
        cond_def = Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),))
        kernel = Kernel(
            name="never_reconverges",
            blocks=[
                BasicBlock(0, [cond_def], Branch(cond=Reg(0), taken=1, not_taken=2)),
                BasicBlock(1, [], Exit()),
                BasicBlock(2, [], Exit()),
            ],
        )
        [(region, members)] = branch_region_members(kernel)
        assert region.reconvergence == EXIT_NODE
        assert members == {1, 2}
        # Both arm blocks map to this region as their innermost one.
        innermost = branch_regions(kernel)
        assert innermost[1] == region
        assert innermost[2] == region
        assert 0 not in innermost

    def test_degenerate_branch_creates_no_region(self):
        cond_def = Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),))
        kernel = Kernel(
            name="degenerate",
            blocks=[
                BasicBlock(0, [cond_def], Branch(cond=Reg(0), taken=1, not_taken=1)),
                BasicBlock(1, [], Exit()),
            ],
        )
        assert branch_region_members(kernel) == []
        assert branch_regions(kernel) == {}
