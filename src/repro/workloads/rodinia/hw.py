"""``heartwall`` (HW) proxy.

Signature reproduced: one of the two most divergent benchmarks the
paper names (~50% of executed instructions divergent, §4.2).  The
tracking loop branches twice per iteration on data-dependent flags
(edge detection, correlation acceptance); both divergent paths mix
per-thread pixel math with chains over shared detector constants, so a
sizeable minority of the divergent instructions are divergent-scalar.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 303


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the HW proxy at the given scale."""
    b = KernelBuilder("heartwall")
    tid = b.tid()
    threshold = load_broadcast(b, PARAMS_BASE)
    gain = load_broadcast(b, PARAMS_BASE + 4)
    offset = load_broadcast(b, PARAMS_BASE + 8)
    pixel = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    template = b.ld_global(thread_element_addr(b, tid, INPUT_B))
    score = b.mov(0)

    with b.for_range(0, 2 * scale.inner_iterations) as step:
        edge_flag = b.ld_global(
            b.imad(b.iadd(tid, step), 4, FLAGS_BASE)
        )
        is_edge = b.setne(edge_flag, 0)
        diff = b.isub(pixel, template)
        mag = b.imax(diff, b.isub(template, pixel))
        with b.if_(is_edge) as outer:
            # Edge path (divergent): detector constants only — these
            # become divergent-scalar chains.
            boost = b.imul(threshold, 3)
            window = b.iadd(boost, offset)
            norm = b.shr(window, 2)
            floor = b.imax(norm, offset)
            span = b.iadd(floor, gain)
            score = b.iadd(score, span, dst=score)
            inner_flag = b.setgt(mag, threshold)
            with b.if_(inner_flag):
                # Accepted correlation (nested divergence): per-thread.
                score = b.iadd(score, mag, dst=score)
            with outer.else_():
                # Smooth path: mixed per-thread and scalar work.
                smooth = b.imul(gain, 2)
                pixel = b.iadd(pixel, smooth, dst=pixel)
                score = b.iadd(score, diff, dst=score)
        template = b.iadd(template, 1, dst=template)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), score)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    iterations = 2 * scale.inner_iterations
    memory = MemoryImage()
    memory.bind_array(INPUT_A, datagen.small_ints(total_threads, 256, _SEED))
    memory.bind_array(INPUT_B, datagen.small_ints(total_threads, 256, _SEED + 1))
    memory.bind_array(PARAMS_BASE, np.array([96, 7, 12], dtype=np.uint32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(
            total_threads + iterations, 0.9, _SEED + 2
        ),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="tracking loop with nested data-dependent divergence",
    )
