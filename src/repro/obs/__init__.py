"""Observability: telemetry registry, sinks and exporters.

The :class:`~repro.obs.telemetry.Telemetry` registry collects counters,
histograms and nestable spans from the instrumented pipeline
(:mod:`repro.simt.executor`, :mod:`repro.scalar.tracker`,
:mod:`repro.power.accounting`, :mod:`repro.experiments.runner`, ...);
the exporters turn a finished registry into a Chrome trace-event file
(:mod:`repro.obs.chrome_trace`, loadable in Perfetto), a Prometheus
text exposition (:mod:`repro.obs.prometheus`) or a human-readable
summary (:mod:`repro.obs.summary`).  The process-global registry
defaults to a disabled null implementation with near-zero overhead;
``repro profile`` and the ``--trace-out``/``--metrics-out`` CLI flags
install an enabled one.
"""

from repro.obs.chrome_trace import chrome_trace, write_chrome_trace
from repro.obs.prometheus import prometheus_text, write_prometheus
from repro.obs.sinks import JsonlSink, NullSink, Sink
from repro.obs.summary import summary_table
from repro.obs.timeline import (
    DEFAULT_CAPACITY,
    SCHEDULER_TID_BASE,
    FlightRecorder,
    stalls_to_telemetry,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    SpanEvent,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "SpanEvent",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "Sink",
    "NullSink",
    "JsonlSink",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "summary_table",
    "DEFAULT_CAPACITY",
    "SCHEDULER_TID_BASE",
    "FlightRecorder",
    "stalls_to_telemetry",
]
