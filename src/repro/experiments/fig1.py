"""Figure 1 — percentage of divergent and divergent-scalar instructions.

Paper reference: 28% of total instructions are divergent on average and
45% of those divergent instructions are divergent-scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.divergence import DivergenceStats, divergence_stats
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table


@dataclass
class Fig1Row:
    abbr: str
    stats: DivergenceStats


@dataclass
class Fig1Data:
    rows: list[Fig1Row]

    @property
    def average_divergent(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.stats.divergent_fraction for r in self.rows) / len(self.rows)

    @property
    def average_divergent_scalar(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.stats.divergent_scalar_fraction for r in self.rows) / len(self.rows)

    @property
    def average_scalar_share_of_divergent(self) -> float:
        """The paper's "45% of divergent instructions" figure."""
        divergent = self.average_divergent
        if divergent == 0:
            return 0.0
        return self.average_divergent_scalar / divergent


def compute(runner: ExperimentRunner) -> Fig1Data:
    """Regenerate Figure 1's series over all 17 benchmarks."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        rows.append(Fig1Row(abbr=abbr, stats=divergence_stats(run.classified)))
    return Fig1Data(rows=rows)


def render(data: Fig1Data) -> str:
    """Figure 1 as a text table."""
    table_rows = [
        (
            row.abbr,
            f"{100 * row.stats.divergent_fraction:.1f}",
            f"{100 * row.stats.divergent_scalar_fraction:.1f}",
        )
        for row in data.rows
    ]
    table_rows.append(
        (
            "AVG",
            f"{100 * data.average_divergent:.1f}",
            f"{100 * data.average_divergent_scalar:.1f}",
        )
    )
    body = render_table(
        ["bench", "divergent %", "divergent scalar %"],
        table_rows,
        title="Figure 1: divergent / divergent-scalar instruction share",
    )
    footer = (
        f"\ndivergent-scalar share of divergent instructions: "
        f"{100 * data.average_scalar_share_of_divergent:.0f}% "
        "(paper: 45%; paper divergent avg: 28%)"
    )
    return body + footer
