"""Register-file access records.

The scalar tracker emits one :class:`RegisterAccess` per operand read
and per destination write of every dynamic instruction; the power model
turns them into energy using the layout math.  ``kind`` distinguishes
the physically different access shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessKind(enum.Enum):
    """Physical shape of one register-file access."""

    FULL_READ = "full_read"  # all data arrays (uncompressed register)
    FULL_WRITE = "full_write"
    COMPRESSED_READ = "compressed_read"  # subset of arrays + sidecar
    COMPRESSED_WRITE = "compressed_write"
    SCALAR_READ = "scalar_read"  # BVR/EBR sidecar only
    SCALAR_WRITE = "scalar_write"
    PARTIAL_WRITE = "partial_write"  # divergent write, mask-dependent arrays
    SCALAR_RF_READ = "scalar_rf_read"  # prior-work dedicated scalar RF
    SCALAR_RF_WRITE = "scalar_rf_write"


@dataclass(frozen=True)
class RegisterAccess:
    """One access: its shape plus everything energy depends on.

    ``enc`` is the register's prefix length at access time (0 when not
    applicable), ``active_mask`` the instruction's mask (used for
    baseline partial writes), ``sidecar`` whether the BVR/EBR array was
    also touched.
    """

    kind: AccessKind
    register: int
    enc: int = 0
    enc_lo: int = 0
    enc_hi: int = 0
    half_compressed: bool = False
    active_mask: int = 0
    sidecar: bool = False

    @property
    def is_write(self) -> bool:
        return self.kind in (
            AccessKind.FULL_WRITE,
            AccessKind.COMPRESSED_WRITE,
            AccessKind.SCALAR_WRITE,
            AccessKind.PARTIAL_WRITE,
            AccessKind.SCALAR_RF_WRITE,
        )
