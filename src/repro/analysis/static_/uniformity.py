"""Compile-time divergence analysis over the UNIFORM/AFFINE/DIVERGENT lattice.

This is the static half of the paper's §6 comparison: a forward taint
dataflow seeded by the per-lane specials (``%tid``/``%lane``), with the
affine middle rung tracking values of the form ``base + stride*lane``
(thread indices and everything linearly derived from them — the address
arithmetic that dominates GPU kernels).  Control dependence is folded
in through branch regions: every block governed by a branch whose
condition is not provably warp-uniform is *control-divergent*, and any
write performed there is a masked merge, so its destination drops to
DIVERGENT.

Each static instruction is then classified:

* ``PROVABLY_SCALAR`` — control-uniform and every operand warp-uniform:
  a compile-time scalarizer [Lee et al., CGO 2013] could commit this to
  a scalar pipe.  Sound by construction: such a site can never execute
  under a mask narrower than its warp's launch mask.
* ``POSSIBLY_SCALAR`` — not provable (affine operands with unknown
  stride, values merged under divergent control, reads of untracked
  state), but a *dynamic* detector like G-Scalar may still find the
  operands scalar at runtime.
* ``DIVERGENT`` — provably or presumptively per-lane varying (a direct
  ``%tid``/``%lane`` operand, or data tainted by one through
  non-affine ops or loads).

The gap between PROVABLY_SCALAR and what the dynamic tracker reports is
quantified per benchmark by :mod:`repro.experiments.staticdyn`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.instructions import Imm, Instruction, Reg, SpecialReg
from repro.isa.kernel import Branch, Kernel
from repro.isa.liveness import branch_region_members
from repro.isa.opcodes import OpCategory, Opcode, category_of, is_load

from repro.analysis.static_.diagnostics import Diagnostic
from repro.analysis.static_.framework import AnalysisContext, LintPass


class Uniformity(enum.Enum):
    """Per-register value lattice, ordered by information loss."""

    UNDEF = "undef"  # bottom: no definition reached yet
    UNIFORM = "uniform"  # provably one value across the warp
    AFFINE = "affine"  # provably base + stride*lane (stride unknown)
    DIVERGENT = "divergent"  # top: may differ arbitrarily per lane

    @property
    def rank(self) -> int:
        return _RANK[self]

    def join(self, other: "Uniformity") -> "Uniformity":
        return self if self.rank >= other.rank else other


_RANK = {
    Uniformity.UNDEF: 0,
    Uniformity.UNIFORM: 1,
    Uniformity.AFFINE: 2,
    Uniformity.DIVERGENT: 3,
}


class StaticScalarClass(enum.Enum):
    """Compile-time verdict for one static instruction."""

    PROVABLY_SCALAR = "provably_scalar"
    POSSIBLY_SCALAR = "possibly_scalar"
    DIVERGENT = "divergent"


#: Specials holding one value per warp.
_UNIFORM_SPECIALS = frozenset(
    {SpecialReg.CTAID, SpecialReg.WARP_IN_CTA, SpecialReg.NTID}
)
#: Specials affine in the lane index (stride exactly 1).
_AFFINE_SPECIALS = frozenset({SpecialReg.TID, SpecialReg.LANE})

#: Opcodes that preserve affinity: sum of affines is affine.
_AFFINE_ADD = frozenset({Opcode.IADD, Opcode.ISUB, Opcode.MOV, Opcode.DECOMPRESS_MOV})


@dataclass(frozen=True)
class UniformityResult:
    """Per-site verdicts plus the control-divergence block set."""

    kernel_name: str
    classes: dict[tuple[int, int], StaticScalarClass]
    control_divergent_blocks: frozenset[int]
    register_entry: dict[int, tuple[Uniformity, ...]]

    def class_of(self, block_id: int, inst_index: int) -> StaticScalarClass:
        return self.classes[(block_id, inst_index)]

    def counts(self) -> dict[StaticScalarClass, int]:
        counts = {c: 0 for c in StaticScalarClass}
        for verdict in self.classes.values():
            counts[verdict] += 1
        return counts


def _operand_kind(
    operand: Reg | Imm | SpecialReg, state: list[Uniformity]
) -> Uniformity:
    if isinstance(operand, Imm):
        return Uniformity.UNIFORM
    if isinstance(operand, SpecialReg):
        if operand in _UNIFORM_SPECIALS:
            return Uniformity.UNIFORM
        return Uniformity.AFFINE
    return state[operand.index]


def _transfer(inst: Instruction, state: list[Uniformity]) -> Uniformity:
    """Destination uniformity of one instruction (ignoring masking)."""
    kinds = [_operand_kind(s, state) for s in inst.srcs]
    if any(k is Uniformity.DIVERGENT for k in kinds):
        return Uniformity.DIVERGENT
    # UNDEF operands carry no guarantee; treat them as divergent inputs
    # for the produced value (the uninitialized-read pass reports them).
    if any(k is Uniformity.UNDEF for k in kinds):
        return Uniformity.DIVERGENT
    op = inst.opcode
    if op in _AFFINE_ADD:
        return max(kinds, key=lambda k: k.rank) if kinds else Uniformity.UNIFORM
    if op is Opcode.IMAD:
        product = _mul_kind(kinds[0], kinds[1])
        return product.join(kinds[2])
    if op is Opcode.IMUL:
        return _mul_kind(kinds[0], kinds[1])
    if op is Opcode.SHL:
        # value << uniform-amount scales an affine stride by a power of
        # two; an affine shift amount destroys the form.
        if kinds[1] is Uniformity.UNIFORM:
            return kinds[0]
        return _all_uniform_or_divergent(kinds)
    if op is Opcode.SELP:
        if kinds[2] is Uniformity.UNIFORM:
            # A warp-uniform predicate picks the same arm in every lane.
            return kinds[0].join(kinds[1])
        return Uniformity.DIVERGENT
    if is_load(op):
        # A warp-uniform address loads one location: a broadcast value.
        # Any varying address yields unknown per-lane data.
        if kinds[0] is Uniformity.UNIFORM:
            return Uniformity.UNIFORM
        return Uniformity.DIVERGENT
    # Everything else (comparisons, bitwise, float, SFU, division,
    # conversions) computes the same function of the same inputs per
    # lane when all inputs are uniform, and is otherwise assumed to
    # destroy any affine structure.
    return _all_uniform_or_divergent(kinds)


def _mul_kind(a: Uniformity, b: Uniformity) -> Uniformity:
    if a is Uniformity.UNIFORM and b is Uniformity.UNIFORM:
        return Uniformity.UNIFORM
    if {a, b} == {Uniformity.UNIFORM, Uniformity.AFFINE}:
        return Uniformity.AFFINE  # uniform factor scales the stride
    return Uniformity.DIVERGENT


def _all_uniform_or_divergent(kinds: list[Uniformity]) -> Uniformity:
    if all(k is Uniformity.UNIFORM for k in kinds):
        return Uniformity.UNIFORM
    return Uniformity.DIVERGENT


def _value_fixpoint(
    kernel: Kernel,
    preds: dict[int, list[int]],
    divergent_blocks: set[int],
) -> tuple[dict[int, list[Uniformity]], dict[int, list[Uniformity]]]:
    """Iterate the forward dataflow to a fixpoint.

    Returns (entry-state, out-state) per block.  Writes inside
    control-divergent blocks are masked merges and drop to DIVERGENT.
    """
    num_registers = kernel.num_registers
    bottom = [Uniformity.UNDEF] * num_registers
    out_state: dict[int, list[Uniformity]] = {
        b.block_id: list(bottom) for b in kernel.blocks
    }
    entry_state: dict[int, list[Uniformity]] = {
        b.block_id: list(bottom) for b in kernel.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in kernel.blocks:
            block_id = block.block_id
            merged = list(bottom)
            for pred in preds[block_id]:
                pred_out = out_state[pred]
                merged = [a.join(b) for a, b in zip(merged, pred_out)]
            entry_state[block_id] = merged
            state = list(merged)
            masked = block_id in divergent_blocks
            for inst in block.instructions:
                if inst.dst is None:
                    continue
                kind = Uniformity.DIVERGENT if masked else _transfer(inst, state)
                state[inst.dst.index] = kind
            if state != out_state[block_id]:
                out_state[block_id] = state
                changed = True
    return entry_state, out_state


def analyze_uniformity(kernel: Kernel) -> UniformityResult:
    """Run the full divergence analysis over one kernel."""
    preds = kernel.predecessors()
    regions = branch_region_members(kernel)

    # Control divergence and value uniformity are mutually dependent
    # (a branch condition's uniformity decides whether its region's
    # writes are masked), so alternate the two until the divergent-block
    # set stops growing.  Growth is monotone: more divergent blocks can
    # only raise value states, which can only add divergent regions.
    divergent_blocks: set[int] = set()
    while True:
        entry_state, out_state = _value_fixpoint(kernel, preds, divergent_blocks)
        grown = set(divergent_blocks)
        for region, members in regions:
            branch = kernel.blocks[region.branch_block].terminator
            assert isinstance(branch, Branch)
            cond_kind = out_state[region.branch_block][branch.cond.index]
            if cond_kind is not Uniformity.UNIFORM:
                grown |= members
        if grown == divergent_blocks:
            break
        divergent_blocks = grown

    classes: dict[tuple[int, int], StaticScalarClass] = {}
    for block in kernel.blocks:
        state = list(entry_state[block.block_id])
        masked = block.block_id in divergent_blocks
        for index, inst in enumerate(block.instructions):
            kinds = [_operand_kind(s, state) for s in inst.srcs]
            direct_varying = any(
                isinstance(s, SpecialReg) and s in _AFFINE_SPECIALS for s in inst.srcs
            )
            if category_of(inst.opcode) is OpCategory.CTRL:
                verdict = StaticScalarClass.DIVERGENT  # bar.sync: never scalar
            elif direct_varying or any(k is Uniformity.DIVERGENT for k in kinds):
                verdict = StaticScalarClass.DIVERGENT
            elif masked:
                # Even all-uniform operands cannot be committed at
                # compile time under a possibly-partial mask; dynamic
                # G-Scalar catches these as divergent-scalar (§4.2).
                verdict = StaticScalarClass.POSSIBLY_SCALAR
            elif all(k is Uniformity.UNIFORM for k in kinds):
                verdict = StaticScalarClass.PROVABLY_SCALAR
            else:
                verdict = StaticScalarClass.POSSIBLY_SCALAR
            classes[(block.block_id, index)] = verdict
            if inst.dst is not None:
                state[inst.dst.index] = (
                    Uniformity.DIVERGENT if masked else _transfer(inst, state)
                )

    return UniformityResult(
        kernel_name=kernel.name,
        classes=classes,
        control_divergent_blocks=frozenset(divergent_blocks),
        register_entry={
            block_id: tuple(state) for block_id, state in entry_state.items()
        },
    )


class StaticScalarizationPass(LintPass):
    """Summarizes the divergence analysis as a GS-I201 info diagnostic."""

    name = "static-scalarization"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        result = analyze_uniformity(ctx.kernel)
        counts = result.counts()
        total = sum(counts.values())
        provable = counts[StaticScalarClass.PROVABLY_SCALAR]
        possible = counts[StaticScalarClass.POSSIBLY_SCALAR]
        divergent = counts[StaticScalarClass.DIVERGENT]
        return [
            Diagnostic(
                rule="GS-I201",
                kernel=ctx.kernel.name,
                message=(
                    f"{total} static instructions: {provable} provably scalar, "
                    f"{possible} possibly scalar, {divergent} divergent; "
                    f"{len(result.control_divergent_blocks)} control-divergent "
                    "blocks"
                ),
            )
        ]
