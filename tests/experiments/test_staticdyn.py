"""Tests for the static-vs-dynamic scalarization experiment.

The headline property is *soundness*: the uniformity analysis must
never label a site provably-scalar if any dynamic instance of it runs
under a mask narrower than its warp's entry mask.
"""

import pytest

from repro.analysis.static_ import StaticScalarClass, analyze_uniformity
from repro.experiments import staticdyn
from repro.experiments.runner import ExperimentRunner
from repro.isa import KernelBuilder
from repro.isa.opcodes import Opcode
from repro.scalar.tracker import classify_trace
from repro.simt import LaunchConfig, MemoryImage, run_kernel


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="tiny")


@pytest.fixture(scope="module")
def data(runner):
    return staticdyn.compute(runner)


class TestAnnotateSites:
    def test_straight_line_sites_are_sequential(self, runner):
        run = runner.run("MM")
        kernel = run.built.kernel
        warp = run.trace.warps[0]
        for event_index, site in staticdyn.annotate_sites(kernel, warp):
            event = warp.events[event_index]
            if event.opcode is Opcode.BRA:
                assert site is None
            else:
                block_id, inst_index = site
                assert block_id == event.block_id
                inst = kernel.blocks[block_id].instructions[inst_index]
                assert inst.opcode is event.opcode

    def test_loop_reexecution_resets_the_counter(self):
        b = KernelBuilder("loop")
        tid = b.tid()
        acc = b.mov(0)
        with b.for_range(0, 4):
            acc = b.iadd(acc, 1, dst=acc)
        b.st_global(b.imad(tid, 4, 0x100), acc)
        kernel = b.finish()
        trace = run_kernel(kernel, LaunchConfig(1, 32), MemoryImage())
        warp = trace.warps[0]
        sites = dict(staticdyn.annotate_sites(kernel, warp))
        # The body block's two IADDs (accumulator + loop counter) are
        # each hit once per iteration, always at the same static site.
        body_sites = [
            site
            for event_index, site in sites.items()
            if site is not None
            and warp.events[event_index].opcode is Opcode.IADD
            and site[0] != 0
        ]
        assert len(body_sites) == 8  # 2 static IADDs x 4 iterations
        unique = set(body_sites)
        assert len(unique) == 2
        for site in unique:
            assert body_sites.count(site) == 4

    def test_desync_raises(self):
        b = KernelBuilder("tiny")
        b.st_global(b.mov(0x100), b.mov(7))
        kernel = b.finish()
        trace = run_kernel(kernel, LaunchConfig(1, 32), MemoryImage())
        other = KernelBuilder("other")
        other.iadd(other.mov(1), 2)
        with pytest.raises(ValueError, match="desynchronized"):
            list(staticdyn.annotate_sites(other.finish(), trace.warps[0]))


class TestSoundness:
    def test_no_benchmark_has_soundness_violations(self, data):
        assert len(data.rows) == 17
        for row in data.rows:
            assert row.soundness_violations == 0, row.abbr
        assert data.total_soundness_violations == 0

    def test_provably_scalar_sites_never_run_divergent(self, runner):
        # Event-level restatement over one divergent benchmark: every
        # dynamic instance of a PROVABLY_SCALAR site keeps its warp's
        # entry mask.
        run = runner.run("BT")
        kernel = run.built.kernel
        result = analyze_uniformity(kernel)
        checked = 0
        for warp in run.trace.warps:
            if not warp.events:
                continue
            entry_mask = warp.events[0].active_mask
            for event_index, site in staticdyn.annotate_sites(kernel, warp):
                if site is None:
                    continue
                if result.class_of(*site) is StaticScalarClass.PROVABLY_SCALAR:
                    assert warp.events[event_index].active_mask == entry_mask
                    checked += 1
        assert checked > 0


class TestMetrics:
    def test_metric_ranges(self, data):
        for row in data.rows:
            assert 0.0 <= row.precision <= 1.0
            assert 0.0 <= row.recall <= 1.0
            assert 0.0 <= row.coverage <= 1.0
            assert row.true_positive_events <= row.predicted_events
            assert row.predicted_events <= row.total_events

    def test_static_recall_below_dynamic_detection(self, data):
        # The paper's section 6 point: static scalarization is a lower
        # bound on what dynamic detection finds — recall can hit 1.0 on
        # uniform kernels but must fall short somewhere.
        assert any(row.recall < 1.0 for row in data.rows)
        assert 0.0 < data.average_coverage < 1.0

    def test_score_benchmark_on_uniform_kernel(self):
        # A kernel with only warp-uniform work: every non-BRA event is
        # predicted and detected scalar -> perfect precision and recall.
        b = KernelBuilder("uniform")
        base = b.ctaid()
        value = b.iadd(b.imul(base, 3), 1)
        b.st_global(b.mov(0x100), value)
        kernel = b.finish()
        trace = run_kernel(kernel, LaunchConfig(1, 32), MemoryImage())
        classified = classify_trace(trace, kernel.num_registers)
        row = staticdyn.score_benchmark(
            "U", kernel, trace.warps, classified
        )
        assert row.static_provable == kernel.static_instruction_count()
        assert row.soundness_violations == 0
        assert row.precision == 1.0
        assert row.recall == 1.0


class TestRender:
    def test_render_has_all_rows_and_average(self, data):
        text = staticdyn.render(data)
        assert "AVG" in text
        for row in data.rows:
            assert row.abbr in text
        assert "precision" in text and "recall" in text


@pytest.fixture(scope="module")
def widths_data(runner):
    return staticdyn.compute_widths(runner)


class TestWidthSoundness:
    """The soundness gate: zero over-claims on every benchmark."""

    def test_no_benchmark_over_claims(self, widths_data):
        assert len(widths_data.rows) == 17
        for row in widths_data.rows:
            assert row.over_claims == 0, row.abbr
        assert widths_data.total_over_claims == 0

    def test_precision_is_perfect_when_sound(self, widths_data):
        for row in widths_data.rows:
            assert row.precision == 1.0, row.abbr

    def test_metric_ranges(self, widths_data):
        for row in widths_data.rows:
            assert 0.0 <= row.coverage <= 1.0
            assert 0.0 <= row.recall <= 1.0
            assert row.claimed_events <= row.write_events
            assert row.claimed_bytes <= row.observed_bytes

    def test_claims_are_nontrivial(self, widths_data):
        # The analysis must actually claim something somewhere, or the
        # gate would pass vacuously.
        assert any(row.claimed_bytes > 0 for row in widths_data.rows)
        assert any(row.narrow_registers > 0 for row in widths_data.rows)

    def test_score_widths_on_narrow_kernel(self):
        # Every lane stores a value bounded by 255: the static claim of
        # three zero prefix bytes must be dynamically confirmed.
        b = KernelBuilder("narrow")
        tid = b.tid()
        small = b.and_(tid, 0xFF)
        b.st_global(b.imad(tid, 4, 0x100), small)
        kernel = b.finish()
        trace = run_kernel(kernel, LaunchConfig(1, 32), MemoryImage())
        classified = classify_trace(trace, kernel.num_registers)
        row = staticdyn.score_widths_benchmark(
            "N", kernel, trace.warps, classified, warp_size=trace.warp_size
        )
        assert row.over_claims == 0
        assert row.claimed_bytes > 0
        assert row.precision == 1.0


class TestWidthRender:
    def test_render_reports_sound_verdict(self, widths_data):
        text = staticdyn.render_widths(widths_data)
        assert "SOUND" in text and "UNSOUND" not in text
        assert "AVG" in text
        for row in widths_data.rows:
            assert row.abbr in text

    def test_render_flags_unsound_data(self, widths_data):
        broken = staticdyn.WidthDynData(
            rows=[
                staticdyn.WidthDynRow(
                    abbr="X",
                    narrow_registers=1,
                    registers=2,
                    write_events=10,
                    claimed_events=5,
                    over_claims=3,
                    claimed_bytes=20,
                    confirmed_bytes=10,
                    observed_bytes=30,
                )
            ]
        )
        text = staticdyn.render_widths(broken)
        assert "UNSOUND" in text and "3" in text
