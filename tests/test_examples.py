"""Smoke tests: every example script runs cleanly end to end.

These protect the documentation surface — an example that crashes is
worse than no example.  Each runs in a subprocess with a generous
timeout; ``power_sweep`` gets the tiny scale to stay fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "architecture comparison" in out
        assert "gscalar" in out

    def test_divergence_study(self):
        out = run_example("divergence_study.py")
        assert "divergent-scalar" in out.lower()

    def test_compression_explorer(self):
        out = run_example("compression_explorer.py")
        assert "Figure 2's example" in out
        assert "BDI" in out

    def test_custom_kernel(self):
        out = run_example("custom_kernel.py")
        assert "block sums verified" in out

    def test_power_sweep_tiny(self):
        out = run_example("power_sweep.py", "tiny")
        assert "G-Scalar mean IPC/W gain" in out
        assert "BP SFU power" in out


def test_examples_directory_is_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert names >= {
        "quickstart.py",
        "divergence_study.py",
        "compression_explorer.py",
        "custom_kernel.py",
        "power_sweep.py",
    }
