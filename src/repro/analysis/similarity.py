"""Register-file access-distribution analysis (Figure 8).

Figure 8 buckets every operand-value access: "scalar" when all 32
values are identical, "n-byte" when the first n most-significant bytes
match, "divergent" when the access comes from a divergent instruction,
and a remainder with no exploitable similarity.  The paper reports
averages of 36% / 17% / 4% / 7% for scalar / 3-byte / 2-byte / 1-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scalar.tracker import ClassifiedEvent

#: Bucket names in Figure 8's order.
CATEGORIES = ("scalar", "3-byte", "2-byte", "1-byte", "divergent", "other")


@dataclass
class AccessDistribution:
    """Figure 8 histogram over register read accesses."""

    counts: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in CATEGORIES}
    )

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> dict[str, float]:
        total = max(1, self.total)
        return {name: count / total for name, count in self.counts.items()}

    def merge(self, other: "AccessDistribution") -> None:
        for name, count in other.counts.items():
            self.counts[name] += count


_ENC_TO_CATEGORY = {4: "scalar", 3: "3-byte", 2: "2-byte", 1: "1-byte", 0: "other"}


def access_distribution(classified: list[list[ClassifiedEvent]]) -> AccessDistribution:
    """Bucket every source-register read per Figure 8's rules."""
    distribution = AccessDistribution()
    for warp_events in classified:
        for item in warp_events:
            for source in item.sources:
                if item.divergent:
                    distribution.counts["divergent"] += 1
                elif source.encoding.divergent:
                    # D=1 registers read by convergent instructions are
                    # stored (and fetched) uncompressed.
                    distribution.counts["other"] += 1
                else:
                    category = _ENC_TO_CATEGORY[source.encoding.enc]
                    distribution.counts[category] += 1
    return distribution
