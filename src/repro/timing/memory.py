"""Memory hierarchy latency model: L1 per SM, shared L2, DRAM.

A deliberately first-order model: set-associative LRU caches accessed
at 128-byte segment granularity after coalescing, fixed hit/miss
latencies, and access counters the power model consumes.  Absolute
latencies approximate Fermi measurements; the figures only depend on
their relative magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


class SetAssociativeCache:
    """LRU set-associative cache over 128-byte segments."""

    def __init__(self, size_bytes: int, line_bytes: int = 128, ways: int = 4):
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigError("cache parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines < ways:
            raise ConfigError(
                f"cache of {size_bytes} B with {line_bytes} B lines cannot "
                f"support {ways} ways"
            )
        self.num_sets = max(1, num_lines // ways)
        self.ways = ways
        self.line_bytes = line_bytes
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, segment: int) -> bool:
        """Access one segment (already line-granular); True on hit."""
        index = segment % self.num_sets
        ways = self._sets[index]
        if segment in ways:
            ways.remove(segment)
            ways.append(segment)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(segment)
        if len(ways) > self.ways:
            ways.pop(0)
        return False

    def probe(self, segment: int) -> bool:
        """Presence check without allocation or hit/miss accounting.

        Write-through/no-allocate stores use this: a present line is
        refreshed (the store just updated it, making it most recently
        used), but a miss neither allocates nor perturbs LRU state, and
        neither outcome counts toward the demand hit/miss statistics
        that :meth:`hit_rate` reports.
        """
        ways = self._sets[segment % self.num_sets]
        if segment in ways:
            ways.remove(segment)
            ways.append(segment)
            return True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class MemoryAccessCounts:
    """Access counters handed to the power model."""

    l1_accesses: int = 0
    l2_accesses: int = 0
    dram_accesses: int = 0
    shared_accesses: int = 0


@dataclass
class MemoryModel:
    """Latency + counters for one SM's view of the memory system."""

    l1_size_bytes: int = 16 * 1024
    l2_share_bytes: int = 768 * 1024 // 15
    l1_hit_latency: int = 28
    l2_hit_latency: int = 190
    dram_latency: int = 420
    shared_latency: int = 24
    counts: MemoryAccessCounts = field(default_factory=MemoryAccessCounts)

    def __post_init__(self) -> None:
        self._l1 = SetAssociativeCache(self.l1_size_bytes, ways=4)
        self._l2 = SetAssociativeCache(self.l2_share_bytes, ways=8)

    def access_shared(self) -> int:
        """Shared-memory access: fixed low latency."""
        self.counts.shared_accesses += 1
        return self.shared_latency

    def access_global(self, segments: tuple[int, ...], is_store: bool) -> int:
        """Access coalesced global segments; returns completion latency.

        The warp's load completes when its slowest segment returns.
        Stores are write-through/no-allocate: they retire at L1 latency
        and still produce downstream traffic for power, but they only
        *probe* the L1 — a store hit refreshes the line it just wrote,
        a store miss never allocates, and neither outcome is counted in
        the L1 hit/miss statistics (which track demand loads only).
        """
        if not segments:
            return self.l1_hit_latency
        worst = 0
        for segment in segments:
            self.counts.l1_accesses += 1
            if is_store:
                self.counts.l2_accesses += 1
                latency = self.l1_hit_latency
                self._l1.probe(segment)
            elif self._l1.access(segment):
                latency = self.l1_hit_latency
            else:
                self.counts.l2_accesses += 1
                if self._l2.access(segment):
                    latency = self.l2_hit_latency
                else:
                    self.counts.dram_accesses += 1
                    latency = self.dram_latency
            worst = max(worst, latency)
        return worst

    @property
    def l1(self) -> SetAssociativeCache:
        return self._l1

    @property
    def l2(self) -> SetAssociativeCache:
        return self._l2
