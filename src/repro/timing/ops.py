"""Timing-level operations derived from processed trace events.

The cycle-level SM model does not care about operand *values* — only
about categories, register numbers (for banks and the scoreboard),
dispatch occupancy and memory coalescing.  :func:`build_timing_ops`
lowers one warp's :class:`~repro.scalar.architectures.ProcessedEvent`
stream into :class:`TimingOp` records, inserting the extra
decompress-move / scalar-RF-spill instructions the architecture view
requested and applying the scalar-execution dispatch savings
(a scalar SFU instruction dispatches in 1 cycle instead of 8 — §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa.opcodes import LONG_LATENCY_ALU, OpCategory, Opcode, is_store
from repro.scalar.architectures import ProcessedEvent
from repro.simt.grid import int_to_mask

#: Pseudo bank id for the prior-work single-bank scalar register file.
SCALAR_RF_BANK = -1


@dataclass(frozen=True)
class TimingOp:
    """One instruction as the timing model sees it.

    ``src_regs`` feeds the scoreboard; ``src_banks`` (same order, plus
    possibly :data:`SCALAR_RF_BANK`) feeds operand-collector bank
    arbitration.
    """

    category: OpCategory
    dst: int | None
    src_regs: tuple[int, ...]
    src_banks: tuple[int, ...]
    dispatch_cycles: int
    long_latency: bool
    is_store: bool
    mem_segments: tuple[int, ...] = field(default_factory=tuple)
    is_shared_mem: bool = False
    #: True for decompress-moves / scalar-RF spills the architecture
    #: inserted; they consume cycles and energy but are not counted as
    #: useful work when computing IPC.
    inserted: bool = False
    #: True for ``bar.sync``: the warp stalls at issue until every
    #: unfinished warp of its CTA arrives.
    is_barrier: bool = False


def _bank_of(register: int, config: GpuConfig) -> int:
    return register % config.register_file_banks


def coalesce_addresses(
    addresses: np.ndarray, active_mask: int, warp_size: int, segment_bytes: int = 128
) -> tuple[int, ...]:
    """Unique memory segments touched by the active lanes of one access."""
    mask = int_to_mask(active_mask, warp_size)
    active = addresses[mask]
    if active.size == 0:
        return ()
    segments = np.unique(active // segment_bytes)
    return tuple(int(s) for s in segments)


def _dispatch_cycles(
    item: ProcessedEvent, arch: ArchitectureConfig, config: GpuConfig
) -> int:
    """Cycles an instruction occupies its pipeline's dispatch port.

    With ``arch.scalar_fast_dispatch`` a scalar-executed instruction
    needs a single dispatch cycle (§6's "as low as only one cycle");
    the paper's evaluated configurations keep the normal occupancy and
    take only the energy benefit of clock-gated lanes.
    """
    category = item.classified.category
    if category is OpCategory.CTRL:
        return 1
    if arch.scalar_fast_dispatch:
        if item.scalar_executed:
            return 1
        if item.lo_half_scalar and item.hi_half_scalar:
            return 1  # two scalar halves co-issue on one SIMT pass
    if category is OpCategory.SFU:
        return config.sfu_dispatch_cycles
    return config.alu_dispatch_cycles


def build_timing_ops(
    warp_events: list[ProcessedEvent],
    arch: ArchitectureConfig,
    config: GpuConfig,
    warp_size: int,
) -> list[TimingOp]:
    """Lower one warp's processed events to timing ops, in order."""
    ops: list[TimingOp] = []
    for item in warp_events:
        event = item.classified.event
        category = event.category

        # Extra inserted instructions (decompress moves / scalar-RF
        # spills) execute as full-width ALU-pipe moves *before* the
        # triggering instruction.
        for _ in range(item.extra_instructions):
            move_regs = (event.dst,) if event.dst is not None else ()
            ops.append(
                TimingOp(
                    category=OpCategory.ALU,
                    dst=event.dst,
                    src_regs=move_regs,
                    src_banks=tuple(_bank_of(r, config) for r in move_regs),
                    dispatch_cycles=config.alu_dispatch_cycles,
                    long_latency=False,
                    is_store=False,
                    inserted=True,
                )
            )

        if event.opcode is Opcode.BAR:
            ops.append(
                TimingOp(
                    category=OpCategory.CTRL,
                    dst=None,
                    src_regs=(),
                    src_banks=(),
                    dispatch_cycles=1,
                    long_latency=False,
                    is_store=False,
                    is_barrier=True,
                )
            )
            continue

        src_regs = []
        src_banks = []
        for access in item.rf_accesses:
            if access.is_write:
                continue
            src_regs.append(access.register)
            if access.kind.value == "scalar_rf_read":
                src_banks.append(SCALAR_RF_BANK)
            else:
                src_banks.append(_bank_of(access.register, config))

        segments: tuple[int, ...] = ()
        shared = False
        if category is OpCategory.MEM and event.addresses is not None:
            shared = event.opcode.value.endswith(".shared")
            if item.scalar_executed:
                # All lanes hit one address; a single segment suffices.
                first = int(event.addresses[0]) // 128
                segments = (first,)
            else:
                segments = coalesce_addresses(
                    event.addresses, event.active_mask, warp_size
                )

        dispatch = _dispatch_cycles(item, arch, config)
        if category is OpCategory.MEM and not shared:
            dispatch = max(dispatch, len(segments))

        ops.append(
            TimingOp(
                category=category,
                dst=event.dst,
                src_regs=tuple(src_regs),
                src_banks=tuple(src_banks),
                dispatch_cycles=dispatch,
                long_latency=event.opcode in LONG_LATENCY_ALU,
                is_store=is_store(event.opcode),
                mem_segments=segments,
                is_shared_mem=shared,
            )
        )
    return ops


# ----------------------------------------------------------------------
# Columnar lowering.
# ----------------------------------------------------------------------
def _opcode_luts() -> tuple[list, np.ndarray, np.ndarray, np.ndarray]:
    """(category objects, long-latency, store, shared-mem) per opcode id."""
    from repro.isa.opcodes import category_of
    from repro.simt.trace import ID_TO_OPCODE

    size = len(ID_TO_OPCODE)
    categories = [None] * size
    long_lat = np.zeros(size, dtype=bool)
    stores = np.zeros(size, dtype=bool)
    shared = np.zeros(size, dtype=bool)
    for opcode_id, opcode in ID_TO_OPCODE.items():
        categories[opcode_id] = category_of(opcode)
        long_lat[opcode_id] = opcode in LONG_LATENCY_ALU
        stores[opcode_id] = is_store(opcode)
        shared[opcode_id] = opcode.value.endswith(".shared")
    return categories, long_lat, stores, shared


def build_timing_ops_columns(ccols, pcols, arch, config):
    """Lower a columnar processed trace to per-warp timing-op lists.

    The columnar counterpart of :func:`build_timing_ops` over a
    (:class:`~repro.scalar.columns.ClassifiedColumns`,
    :class:`~repro.scalar.columns.ProcessedColumns`) pair: dispatch
    cycles, source-operand extraction and all opcode-derived properties
    are computed as whole-trace array operations; only the final
    :class:`TimingOp` construction remains a loop.  Produces op streams
    equal to the event path's (the differential suite pins this).
    """
    from repro.scalar.columns import (
        BAR_OPCODE_ID,
        CTRL_CODE,
        MEM_CODE,
        SCALAR_RF_READ_ID,
        SFU_CODE,
        WRITE_KIND_IDS,
    )

    categories, long_lut, store_lut, shared_lut = _opcode_luts()
    opcode_ids = pcols.opcode_ids
    category_codes = pcols.category_codes
    count = pcols.num_events

    # Dispatch cycles (vector form of _dispatch_cycles: ctrl beats
    # fast-dispatch beats pipeline width).
    is_ctrl = category_codes == CTRL_CODE
    dispatch = np.where(
        is_ctrl,
        1,
        np.where(
            category_codes == SFU_CODE,
            config.sfu_dispatch_cycles,
            config.alu_dispatch_cycles,
        ),
    ).astype(np.int64)
    if arch.scalar_fast_dispatch:
        fast = pcols.scalar_executed | (pcols.lo_half_scalar & pcols.hi_half_scalar)
        dispatch[~is_ctrl & fast] = 1

    # Read-operand extraction from the flat access table.
    num_kinds = int(max(WRITE_KIND_IDS | {SCALAR_RF_READ_ID})) + 2
    write_kind = np.zeros(num_kinds, dtype=bool)
    for kind_id in WRITE_KIND_IDS:
        write_kind[kind_id] = True
    is_read_row = ~write_kind[pcols.acc_kind_ids]
    read_running = np.zeros(pcols.num_accesses + 1, dtype=np.int64)
    np.cumsum(is_read_row, out=read_running[1:])
    read_offsets = read_running[pcols.acc_offsets]
    read_regs = pcols.acc_registers[is_read_row].tolist()
    read_banks = np.where(
        pcols.acc_kind_ids[is_read_row] == SCALAR_RF_READ_ID,
        SCALAR_RF_BANK,
        pcols.acc_registers[is_read_row] % config.register_file_banks,
    ).tolist()

    dst_list = ccols.dst.tolist()
    extra_list = pcols.extra_instructions.tolist()
    dispatch_list = dispatch.tolist()
    scalar_list = pcols.scalar_executed.tolist()
    is_mem = (category_codes == MEM_CODE).tolist()
    is_bar = (opcode_ids == BAR_OPCODE_ID).tolist()
    addr_index = ccols.addr_index.tolist()
    masks = ccols.masks
    addresses = ccols.addresses
    warp_size = ccols.warp_size
    read_offset_list = read_offsets.tolist()
    alu_dispatch = config.alu_dispatch_cycles
    banks = config.register_file_banks

    bounds = ccols.warp_bounds().tolist()
    warps: list[list[TimingOp]] = []
    for warp in range(len(bounds) - 1):
        ops: list[TimingOp] = []
        for index in range(bounds[warp], bounds[warp + 1]):
            opcode_id = opcode_ids[index]
            destination = dst_list[index]
            dst = None if destination < 0 else destination

            for _ in range(extra_list[index]):
                move_regs = (destination,) if dst is not None else ()
                ops.append(
                    TimingOp(
                        category=OpCategory.ALU,
                        dst=dst,
                        src_regs=move_regs,
                        src_banks=tuple(r % banks for r in move_regs),
                        dispatch_cycles=alu_dispatch,
                        long_latency=False,
                        is_store=False,
                        inserted=True,
                    )
                )

            if is_bar[index]:
                ops.append(
                    TimingOp(
                        category=OpCategory.CTRL,
                        dst=None,
                        src_regs=(),
                        src_banks=(),
                        dispatch_cycles=1,
                        long_latency=False,
                        is_store=False,
                        is_barrier=True,
                    )
                )
                continue

            lo = read_offset_list[index]
            hi = read_offset_list[index + 1]

            segments: tuple[int, ...] = ()
            shared = False
            if is_mem[index] and addr_index[index] >= 0:
                row = addresses[addr_index[index]]
                shared = bool(shared_lut[opcode_id])
                if scalar_list[index]:
                    segments = (int(row[0]) // 128,)
                else:
                    segments = coalesce_addresses(
                        row, int(masks[index]), warp_size
                    )

            cycles = dispatch_list[index]
            if is_mem[index] and not shared:
                cycles = max(cycles, len(segments))

            ops.append(
                TimingOp(
                    category=categories[opcode_id],
                    dst=dst,
                    src_regs=tuple(read_regs[lo:hi]),
                    src_banks=tuple(read_banks[lo:hi]),
                    dispatch_cycles=cycles,
                    long_latency=bool(long_lut[opcode_id]),
                    is_store=bool(store_lut[opcode_id]),
                    mem_segments=segments,
                    is_shared_mem=shared,
                )
            )
        warps.append(ops)
    return warps
