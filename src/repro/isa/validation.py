"""Extra structural validation passes over kernels.

:class:`repro.isa.kernel.Kernel` already checks CFG integrity on
construction.  The checks here catch programming mistakes in workload
kernels that would otherwise surface as confusing runtime behaviour.
The read-before-write check delegates to the path-sensitive
reaching-definitions pass of the static analyzer
(:mod:`repro.analysis.static_.uninit`), so a register written only in
one branch arm but read unconditionally after the join is rejected —
the whole-kernel set comparison this replaces could not see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelValidationError
from repro.isa.kernel import Branch, Kernel


@dataclass
class KernelReport:
    """Summary statistics produced by :func:`validate_kernel`.

    A validated kernel has no maybe-uninitialized reads (that is an
    error, not a statistic), so the sets here describe only legitimate
    register traffic; the full per-site diagnostics — including the
    uninitialized reads that :func:`validate_kernel` raises on — come
    from ``repro.analysis.static_.lint_kernel``.
    """

    name: str
    num_blocks: int
    num_instructions: int
    num_registers: int
    written_registers: set[int] = field(default_factory=set)
    read_registers: set[int] = field(default_factory=set)


def validate_kernel(kernel: Kernel, max_registers: int = 64) -> KernelReport:
    """Run all extra validation passes; raise on definite errors.

    ``max_registers`` mirrors the per-thread register budget a compiler
    would enforce (64 on Fermi-class hardware).
    """
    # Imported here: repro.analysis depends on repro.isa, so a module-
    # level import would be circular through the package __init__s.
    from repro.analysis.static_.uninit import uninitialized_reads

    findings = uninitialized_reads(kernel)
    if findings:
        first = findings[0]
        raise KernelValidationError(
            f"kernel {kernel.name!r}: {len(findings)} maybe-uninitialized "
            f"read(s); first ({first.rule} at {first.location()}): "
            f"{first.message}"
        )
    if kernel.num_registers > max_registers:
        raise KernelValidationError(
            f"kernel {kernel.name!r} uses {kernel.num_registers} registers, "
            f"exceeding the per-thread budget of {max_registers}"
        )

    written: set[int] = set()
    read: set[int] = set()
    for block in kernel.blocks:
        for inst in block.instructions:
            if inst.dst is not None:
                written.add(inst.dst.index)
            for src in inst.source_registers:
                read.add(src.index)
        if isinstance(block.terminator, Branch):
            read.add(block.terminator.cond.index)
    return KernelReport(
        name=kernel.name,
        num_blocks=len(kernel.blocks),
        num_instructions=kernel.static_instruction_count(),
        num_registers=kernel.num_registers,
        written_registers=written,
        read_registers=read,
    )
