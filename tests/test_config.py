"""Tests for GPU and architecture configuration."""

import pytest

from repro.config import (
    EVALUATED_ARCHITECTURES,
    ArchitectureConfig,
    GpuConfig,
    ScalarMode,
    architecture_by_name,
)
from repro.errors import ConfigError


class TestGpuConfig:
    def test_defaults_match_table1(self):
        config = GpuConfig()
        assert config.num_sms == 15
        assert config.max_warps_per_sm == 48
        assert config.vector_registers_per_sm == 1024
        assert config.vector_registers_per_bank == 64
        assert config.alu_dispatch_cycles == 2
        assert config.sfu_dispatch_cycles == 8

    def test_invalid_warp_size(self):
        with pytest.raises(ConfigError):
            GpuConfig(warp_size=3)

    def test_threads_must_be_warp_multiple(self):
        with pytest.raises(ConfigError):
            GpuConfig(threads_per_sm=1500)

    def test_wider_warp_dispatch(self):
        config = GpuConfig(warp_size=64, threads_per_sm=1536)
        assert config.alu_dispatch_cycles == 4
        assert config.sfu_dispatch_cycles == 16

    def test_default_latencies(self):
        config = GpuConfig()
        assert config.alu_latency == 18
        assert config.long_alu_latency == 120
        assert config.sfu_latency == 22
        assert config.ctrl_latency == 10

    @pytest.mark.parametrize(
        "field", ["alu_latency", "long_alu_latency", "sfu_latency", "ctrl_latency"]
    )
    def test_latencies_must_be_positive(self, field):
        with pytest.raises(ConfigError):
            GpuConfig(**{field: 0})


class TestArchitectureConfig:
    def test_four_evaluated_architectures(self):
        names = [arch.name for arch in EVALUATED_ARCHITECTURES]
        assert names == [
            "baseline",
            "alu_scalar",
            "gscalar_no_divergent",
            "gscalar",
        ]

    def test_lookup_by_name(self):
        assert architecture_by_name("gscalar").divergent_scalar
        with pytest.raises(ConfigError):
            architecture_by_name("nope")

    def test_baseline_has_nothing_enabled(self):
        baseline = ArchitectureConfig.baseline()
        assert baseline.scalar_mode is ScalarMode.NONE
        assert not baseline.register_compression
        assert baseline.extra_pipeline_cycles == 0

    def test_gscalar_capabilities(self):
        gscalar = ArchitectureConfig.gscalar()
        assert gscalar.scalar_mode is ScalarMode.ALL_PIPELINES
        assert gscalar.register_compression
        assert gscalar.half_warp_scalar
        assert gscalar.divergent_scalar
        assert gscalar.extra_pipeline_cycles == 3
        assert not gscalar.scalar_fast_dispatch  # paper-faithful default

    def test_half_warp_requires_half_compression(self):
        with pytest.raises(ConfigError):
            ArchitectureConfig.gscalar().replace(half_register_compression=False)

    def test_divergent_scalar_requires_compression(self):
        with pytest.raises(ConfigError):
            ArchitectureConfig.gscalar().replace(register_compression=False)

    def test_divergent_scalar_requires_scalar_mode(self):
        with pytest.raises(ConfigError):
            ArchitectureConfig.gscalar().replace(scalar_mode=ScalarMode.NONE)

    def test_replace_for_ablations(self):
        fast = ArchitectureConfig.gscalar().replace(scalar_fast_dispatch=True)
        assert fast.scalar_fast_dispatch
        assert fast.divergent_scalar  # everything else preserved

    def test_static_compress_capabilities(self):
        static = ArchitectureConfig.static_compress()
        assert static.static_compression
        assert static.scalar_mode is ScalarMode.NONE
        assert not static.register_compression
        assert static.extra_pipeline_cycles == 3

    def test_static_compress_not_in_paper_matrix(self):
        assert all(not a.static_compression for a in EVALUATED_ARCHITECTURES)
        assert architecture_by_name("static_compress").static_compression

    def test_static_compression_excludes_dynamic_compression(self):
        with pytest.raises(ConfigError):
            ArchitectureConfig.static_compress().replace(
                register_compression=True
            )

    def test_static_compression_excludes_scalar_rf(self):
        with pytest.raises(ConfigError):
            ArchitectureConfig.static_compress().replace(
                dedicated_scalar_rf=True
            )
