"""Tests for the per-scheduler stall-cause taxonomy.

Both SM engines attribute every idle scheduler-cycle to one of the six
causes in :data:`repro.timing.sm.STALL_CAUSES`.  These tests pin the
accounting invariant (issues + attributed stalls tile ``cycles ×
schedulers`` exactly, per scheduler and in aggregate), the cause
semantics on constructed streams, and the deprecated two-bucket
back-compat surface.
"""

import dataclasses

import pytest

from repro.config import GpuConfig
from repro.isa.opcodes import OpCategory
from repro.timing.ops import TimingOp
from repro.timing.sm import STALL_CAUSES, SmSimulator, StallBreakdown
from repro.timing.sm_event import EventSmSimulator

CONFIG = GpuConfig()


def alu_op(dst=None, srcs=(), dispatch=2):
    return TimingOp(
        category=OpCategory.ALU,
        dst=dst,
        src_regs=tuple(srcs),
        src_banks=tuple(r % 16 for r in srcs),
        dispatch_cycles=dispatch,
        long_latency=False,
        is_store=False,
    )


def barrier_op():
    return TimingOp(
        category=OpCategory.CTRL,
        dst=None,
        src_regs=(),
        src_banks=(),
        dispatch_cycles=1,
        long_latency=False,
        is_store=False,
        is_barrier=True,
    )


def run_both(warps, config=CONFIG, warps_per_cta=None):
    ref = SmSimulator(warps, config, warps_per_cta=warps_per_cta).run()
    got = EventSmSimulator(warps, config, warps_per_cta=warps_per_cta).run()
    assert ref == got
    return ref


class TestAccountingInvariant:
    @pytest.mark.parametrize(
        "warps",
        [
            [[alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(5)]],
            [[alu_op(dst=i) for i in range(10)] for _ in range(8)],
            [[], [alu_op(dst=0)], []],
        ],
        ids=["dependent-chain", "collector-pressure", "sparse"],
    )
    def test_slots_tile_exactly(self, warps):
        result = run_both(warps)
        schedulers = CONFIG.schedulers_per_sm
        assert len(result.stalls_per_scheduler) == schedulers
        # Per scheduler: one issue or one attributed stall per cycle.
        for index, breakdown in enumerate(result.stalls_per_scheduler):
            issued = result.issued_per_scheduler[index]
            assert issued + breakdown.total == result.cycles
        # The aggregate is the field-wise sum of the per-scheduler rows.
        for cause in STALL_CAUSES:
            assert getattr(result.stalls, cause) == sum(
                getattr(b, cause) for b in result.stalls_per_scheduler
            )

    def test_empty_simulation_has_no_attribution(self):
        result = run_both([])
        assert result.stalls == StallBreakdown()
        assert result.stalls_per_scheduler == []


class TestCauseSemantics:
    def test_raw_chain_is_scoreboard(self):
        chain = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(5)]
        result = run_both([chain])
        assert result.stalls.scoreboard > 0

    def test_lone_warp_leaves_other_scheduler_exhausted(self):
        # One warp occupies slot 0 (scheduler 0); scheduler 1 has no
        # stream at all, so its every cycle is stream_exhausted.
        result = run_both([[alu_op(dst=0)]])
        empty = result.stalls_per_scheduler[1]
        assert empty.stream_exhausted == result.cycles
        assert empty.total == empty.stream_exhausted

    def test_barrier_wait_is_attributed_to_barrier(self):
        # Warp 0 reaches the barrier immediately; warp 1 first walks a
        # dependence chain, so warp 0 parks at the barrier for many
        # cycles and scheduler 0 reports them as barrier stalls.  (The
        # barrier must not be the warp's final op — a parked warp with
        # an exhausted stream classifies as stream_exhausted.)
        slow = [alu_op(dst=0)] + [alu_op(dst=0, srcs=(0,)) for _ in range(4)]
        warps = [
            [barrier_op(), alu_op(dst=2)],
            slow + [barrier_op(), alu_op(dst=3)],
        ]
        result = run_both(warps, warps_per_cta=2)
        assert result.stalls.barrier > 0

    def test_post_barrier_cycle_counts_as_barrier_not_scoreboard(self):
        # The cycle right after release (blocked_until == cycle + 1)
        # still classifies as barrier, not scoreboard.
        warps = [[barrier_op(), alu_op(dst=0)], [barrier_op(), alu_op(dst=1)]]
        result = run_both(warps, warps_per_cta=2)
        assert result.stalls.scoreboard == 0

    def test_collector_pressure_splits_full_vs_conflict(self):
        # A starved collector pool (1 entry) with same-bank operands:
        # issue blocks on the full pool while the survivor serializes
        # its bank conflicts, so the full cycles attribute to the
        # conflict bucket rather than plain collectors_full.
        config = GpuConfig(operand_collectors_per_sm=1)
        warps = [
            [alu_op(dst=1, srcs=(0, 16)) for _ in range(4)] for _ in range(8)
        ]
        result = run_both(warps, config=config)
        assert result.stalls.collectors_full + result.stalls.bank_conflict > 0
        assert result.stalls.bank_conflict > 0


class TestBackCompat:
    def test_no_ready_warp_is_derived(self):
        breakdown = StallBreakdown(
            scoreboard=3, branch_shadow=2, barrier=1, stream_exhausted=4,
            collectors_full=7, bank_conflict=5,
        )
        assert breakdown.no_ready_warp == 3 + 2 + 1 + 4
        assert breakdown.total == 3 + 2 + 1 + 4 + 7 + 5

    def test_as_dict_order_matches_taxonomy(self):
        breakdown = StallBreakdown()
        assert tuple(breakdown.as_dict()) == STALL_CAUSES

    def test_no_ready_warp_is_not_a_field(self):
        names = {field.name for field in dataclasses.fields(StallBreakdown)}
        assert "no_ready_warp" not in names
        assert names == set(STALL_CAUSES)
