"""Ablation benches for the design choices DESIGN.md calls out.

Six studies beyond the paper's headline figures:

* **Scalar fast dispatch** (§6's "as low as only one cycle"): the paper
  evaluates G-Scalar without shortening dispatch; enabling it shows the
  additional *performance* headroom scalar execution leaves on the
  table, biggest for SFU-heavy BP.
* **Half-register compression off**: quantifies what the second BVR/EBR
  pair buys in RF energy (the 3% -> 7% area trade of §4.3).
* **Scheduler policy**: LRR vs GTO sensitivity of the timing results.
* **Compiler assist** (§3.3/§6): liveness-based decompress-move elision
  and the static-scalarization shortfall.
* **Warp 64** (§4.3): scalar execution keeps paying off on wider warps.
* **Scalar-bank bottleneck** (§4.1): the prior architecture's single
  scalar-RF bank serializes scalar bursts; G-Scalar's per-bank BVRs
  do not.
"""

import dataclasses

from repro.config import ArchitectureConfig, GpuConfig, SchedulerPolicy
from repro.experiments.runner import ExperimentRunner
from repro.power.accounting import PowerAccountant
from repro.scalar.architectures import process_classified
from repro.timing.gpu import simulate_architecture

from conftest import run_once

_SFU_HEAVY = ("BP", "MQ", "SR1")


def _efficiency(runner, abbr, arch, config=None):
    run = runner.run(abbr)
    processed = process_classified(run.classified, arch, run.trace.warp_size)
    timing = simulate_architecture(processed, arch, config)
    report = PowerAccountant(arch, runner.params, config or runner.config).account(
        processed, timing
    )
    return report


def bench_ablation_fast_dispatch(benchmark, shared_runner):
    """Scalar fast dispatch: IPC upside of 1-cycle scalar issue."""

    def compute():
        results = {}
        paper_arch = ArchitectureConfig.gscalar()
        fast_arch = paper_arch.replace(scalar_fast_dispatch=True)
        for abbr in _SFU_HEAVY:
            paper = _efficiency(shared_runner, abbr, paper_arch)
            fast = _efficiency(shared_runner, abbr, fast_arch)
            results[abbr] = (paper.ipc, fast.ipc)
        return results

    results = run_once(benchmark, compute)
    print()
    for abbr, (paper_ipc, fast_ipc) in results.items():
        print(
            f"  {abbr}: ipc {paper_ipc:.2f} -> {fast_ipc:.2f} "
            f"({fast_ipc / paper_ipc:.2f}x) with 1-cycle scalar dispatch"
        )
    # BP's scalar SFU chains free the 8-cycle SFU dispatch port: big win.
    bp_paper, bp_fast = results["BP"]
    assert bp_fast > 1.2 * bp_paper
    # No benchmark gets slower.
    assert all(fast >= 0.98 * paper for paper, fast in results.values())


def bench_ablation_half_register(benchmark, shared_runner):
    """Half-register compression: RF energy with and without the second
    BVR/EBR pair."""

    def compute():
        with_half = ArchitectureConfig.gscalar()
        without_half = with_half.replace(
            half_register_compression=False, half_warp_scalar=False
        )
        totals = {"with": 0.0, "without": 0.0}
        for abbr in shared_runner.benchmark_names():
            totals["with"] += _efficiency(
                shared_runner, abbr, with_half
            ).breakdown.rf_pj
            totals["without"] += _efficiency(
                shared_runner, abbr, without_half
            ).breakdown.rf_pj
        return totals

    totals = run_once(benchmark, compute)
    ratio = totals["with"] / totals["without"]
    print(f"\n  RF energy with half-register pairs: {ratio:.3f}x of without")
    # The second pair can only reduce data-array activations.
    assert ratio <= 1.0
    assert ratio > 0.75  # it is a refinement, not the main effect


def bench_ablation_scheduler_policy(benchmark, shared_runner):
    """LRR vs GTO: cycle-count sensitivity of the baseline timing."""

    def compute():
        arch = ArchitectureConfig.baseline()
        cycles = {}
        for policy in (SchedulerPolicy.LRR, SchedulerPolicy.GTO):
            config = dataclasses.replace(GpuConfig(), scheduler_policy=policy)
            total = 0
            for abbr in ("HS", "MM", "SAD"):
                total += _efficiency(shared_runner, abbr, arch, config).cycles
            cycles[policy.value] = total
        return cycles

    cycles = run_once(benchmark, compute)
    print(f"\n  total cycles: {cycles}")
    # Both policies complete the same work within a modest band.
    ratio = cycles["gto"] / cycles["lrr"]
    assert 0.7 < ratio < 1.4


def bench_ablation_compiler_assist(benchmark, shared_runner):
    """§3.3 + §6 compiler techniques: move elision and the static-
    scalarization comparison point."""
    from repro.scalar.compiler import MoveElisionAnalysis, StaticScalarization
    from repro.scalar.tracker import trace_statistics

    def compute():
        gscalar = ArchitectureConfig.gscalar()
        moves_hw = 0
        moves_compiler = 0
        total = 0
        static_fraction = 0.0
        dynamic_fraction = 0.0
        names = shared_runner.benchmark_names()
        for abbr in names:
            run = shared_runner.run(abbr)
            stats = trace_statistics(run.classified)
            total += stats.total_instructions
            moves_hw += stats.decompress_moves
            elision = MoveElisionAnalysis(run.built.kernel)
            processed = process_classified(
                run.classified, gscalar, run.trace.warp_size, move_elision=elision
            )
            moves_compiler += sum(
                p.extra_instructions for warp in processed for p in warp
            )
            dynamic_fraction += stats.eligible_fraction
            static_fraction += StaticScalarization(
                run.built.kernel
            ).dynamic_static_scalar_fraction(run.trace)
        count = len(names)
        return {
            "hw_overhead": moves_hw / total,
            "compiler_overhead": moves_compiler / total,
            "static": static_fraction / count,
            "dynamic": dynamic_fraction / count,
        }

    results = run_once(benchmark, compute)
    print(
        f"\n  decompress-move overhead: hardware {100 * results['hw_overhead']:.1f}% "
        f"-> compiler-assisted {100 * results['compiler_overhead']:.1f}% "
        "(paper: ~2% -> <2%)"
    )
    shortfall = 1 - results["static"] / results["dynamic"]
    print(
        f"  compile-time scalarization captures {100 * shortfall:.0f}% fewer "
        "instructions than G-Scalar (paper: 24%)"
    )
    # Elision only removes moves; never adds.
    assert results["compiler_overhead"] <= results["hw_overhead"]
    assert results["compiler_overhead"] < 0.02  # the paper's "<2%"
    # The compiler misses a sizeable share of dynamic opportunity.
    assert 0.10 < shortfall < 0.60


def bench_ablation_warp64(benchmark, shared_runner):
    """§4.3's forward-looking claim: with wider SIMT warps (fewer
    full-warp scalars), chunk-granular scalar execution lets future
    GPUs "continuously benefit from scalar execution"."""
    import dataclasses

    from repro.scalar.tracker import classify_trace, trace_statistics
    from repro.power.accounting import PowerAccountant

    def compute():
        arch = ArchitectureConfig.gscalar()
        base = ArchitectureConfig.baseline()
        config64 = dataclasses.replace(
            GpuConfig(), warp_size=64, threads_per_sm=1536
        )
        results = {}
        for abbr in ("BP", "HS", "MM"):
            # Warp 32 (the paper's machine).
            run32 = shared_runner.run(abbr)
            eff32 = {}
            for a in (base, arch):
                processed = process_classified(run32.classified, a, 32)
                timing = simulate_architecture(processed, a, shared_runner.config)
                report = PowerAccountant(a, shared_runner.params).account(
                    processed, timing
                )
                eff32[a.name] = report.ipc_per_watt
            # Warp 64 (the future machine).
            trace64 = shared_runner.trace_with_warp_size(abbr, 64)
            built = shared_runner.run(abbr).built
            classified64 = classify_trace(trace64, built.kernel.num_registers)
            eff64 = {}
            for a in (base, arch):
                processed = process_classified(classified64, a, 64)
                timing = simulate_architecture(
                    processed, a, config64, warp_size=64
                )
                report = PowerAccountant(
                    a, shared_runner.params, config64
                ).account(processed, timing)
                eff64[a.name] = report.ipc_per_watt
            stats64 = trace_statistics(classified64)
            results[abbr] = {
                "gain32": eff32["gscalar"] / eff32["baseline"],
                "gain64": eff64["gscalar"] / eff64["baseline"],
                "eligible64": stats64.eligible_fraction,
            }
        return results

    results = run_once(benchmark, compute)
    print()
    for abbr, values in results.items():
        print(
            f"  {abbr}: G-Scalar gain {values['gain32']:.2f}x @warp32 -> "
            f"{values['gain64']:.2f}x @warp64 "
            f"(eligible @64: {100 * values['eligible64']:.0f}%)"
        )
    # Scalar execution keeps paying off at warp 64 on every benchmark.
    assert all(v["gain64"] > 1.0 for v in results.values())


def bench_ablation_scalar_bank_bottleneck(benchmark, shared_runner):
    """§4.1's scalability argument: the prior architecture funnels every
    scalar operand through ONE scalar-RF bank, so bursts of scalar
    instructions from pace-matched warps serialize there; G-Scalar's
    per-bank BVR arrays have no such funnel."""

    def compute():
        alu_scalar = ArchitectureConfig.alu_scalar()
        gscalar = ArchitectureConfig.gscalar()
        results = {}
        for abbr in ("MM", "MQ", "BP"):  # scalar-heavy benchmarks
            run = shared_runner.run(abbr)
            out = {}
            for arch in (alu_scalar, gscalar):
                processed = process_classified(
                    run.classified, arch, run.trace.warp_size
                )
                timing = simulate_architecture(processed, arch, shared_runner.config)
                out[arch.name] = timing
            results[abbr] = out
        return results

    results = run_once(benchmark, compute)
    print()
    total_conflicts = 0
    for abbr, out in results.items():
        conflicts = out["alu_scalar"].scalar_bank_conflicts
        total_conflicts += conflicts
        print(
            f"  {abbr}: scalar-bank conflict events {conflicts} (ALU-scalar) "
            f"vs {out['gscalar'].scalar_bank_conflicts} (G-Scalar)"
        )
    # The single scalar bank really does serialize on scalar-heavy code.
    assert total_conflicts > 0
    # G-Scalar has no dedicated scalar bank at all.
    assert all(
        out["gscalar"].scalar_bank_conflicts == 0 for out in results.values()
    )
