"""Power reports: per-component energy, average power, IPC/W."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class EnergyBreakdown:
    """Dynamic energy per component over one run, in picojoules."""

    exec_alu_pj: float = 0.0
    exec_sfu_pj: float = 0.0
    exec_mem_pj: float = 0.0
    rf_pj: float = 0.0
    crossbar_pj: float = 0.0
    compression_pj: float = 0.0
    fds_pj: float = 0.0
    memory_pj: float = 0.0

    @property
    def exec_pj(self) -> float:
        return self.exec_alu_pj + self.exec_sfu_pj + self.exec_mem_pj

    @property
    def total_pj(self) -> float:
        return (
            self.exec_pj
            + self.rf_pj
            + self.crossbar_pj
            + self.compression_pj
            + self.fds_pj
            + self.memory_pj
        )

    def fractions(self) -> dict[str, float]:
        """Each component's share of dynamic energy."""
        total = self.total_pj
        if total == 0:
            return {}
        return {
            "exec": self.exec_pj / total,
            "rf": self.rf_pj / total,
            "crossbar": self.crossbar_pj / total,
            "compression": self.compression_pj / total,
            "fds": self.fds_pj / total,
            "memory": self.memory_pj / total,
        }


@dataclass
class PowerReport:
    """Full power/performance outcome of one (benchmark, architecture) run.

    All quantities are per-SM; the chip scales symmetrically by the SM
    count, so every normalized figure is identical at chip scope.
    """

    arch_name: str
    cycles: int
    instructions: int
    frequency_ghz: float
    static_w: float
    breakdown: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.instructions < 0:
            raise ConfigError("cycles and instructions must be >= 0")
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency must be positive")

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def runtime_s(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def dynamic_power_w(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.breakdown.total_pj * 1e-12 / self.runtime_s

    @property
    def total_power_w(self) -> float:
        return self.dynamic_power_w + self.static_w

    @property
    def ipc_per_watt(self) -> float:
        power = self.total_power_w
        return self.ipc / power if power else 0.0

    @property
    def sfu_power_w(self) -> float:
        """Average SFU power (used in the §5.3 BP discussion)."""
        if self.cycles == 0:
            return 0.0
        return self.breakdown.exec_sfu_pj * 1e-12 / self.runtime_s

    @property
    def rf_dynamic_power_w(self) -> float:
        """Average register-file dynamic power (Figure 12's metric)."""
        if self.cycles == 0:
            return 0.0
        return self.breakdown.rf_pj * 1e-12 / self.runtime_s
