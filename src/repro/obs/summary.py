"""Human-readable summary of a telemetry registry.

Renders the counters, histogram digests and span roll-ups as aligned
text tables — what ``repro profile`` prints to the terminal after
writing the machine-readable Chrome-trace and Prometheus files.
"""

from __future__ import annotations

from repro.obs.telemetry import LabelKey, Telemetry

#: Interval-bucketed flight-recorder series (see
#: :mod:`repro.obs.timeline`): rendered as one time-ordered Timeline
#: table instead of the value-sorted Counters table, which would
#: scramble a time series.
_TIMELINE_SERIES = ("timeline_issued", "timeline_occupancy_warp_cycles")


def _format_labels(labels: LabelKey) -> str:
    if not labels:
        return "-"
    return ",".join(f"{key}={value}" for key, value in labels)


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def _table(title: str, headers: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    rule = "-" * len(line(headers))
    body = [title, rule, line(headers), rule]
    body.extend(line(row) for row in rows)
    body.append(rule)
    return "\n".join(body)


def summary_table(telemetry: Telemetry, max_rows_per_metric: int = 24) -> str:
    """Render the whole registry as readable text."""
    sections: list[str] = []

    timeline: dict[tuple[str, str], dict[str, float]] = {}
    by_counter: dict[str, list[tuple[LabelKey, float]]] = {}
    for (name, labels), value in telemetry.counters.items():
        if name in _TIMELINE_SERIES:
            pairs = dict(labels)
            key = (pairs.get("sm", "0"), pairs.get("interval", "?"))
            timeline.setdefault(key, {})[name] = value
            continue
        by_counter.setdefault(name, []).append((labels, value))

    if timeline:
        rows = [
            (
                sm,
                interval,
                _format_value(series.get("timeline_issued", 0)),
                _format_value(series.get("timeline_occupancy_warp_cycles", 0)),
            )
            for (sm, interval), series in sorted(timeline.items())
        ]
        sections.append(
            _table(
                "Timeline (per interval)",
                ("sm", "interval", "issued", "occupancy warp-cycles"),
                rows,
            )
        )

    if by_counter:
        rows: list[tuple[str, str, str]] = []
        for name in sorted(by_counter):
            series = sorted(by_counter[name], key=lambda item: -item[1])
            shown = series[:max_rows_per_metric]
            rows.extend(
                (name, _format_labels(labels), _format_value(value))
                for labels, value in shown
            )
            hidden = len(series) - len(shown)
            if hidden > 0:
                remainder = sum(value for _, value in series[len(shown):])
                rows.append((name, f"... {hidden} more series", _format_value(remainder)))
        sections.append(_table("Counters", ("metric", "labels", "value"), rows))

    if telemetry.histograms:
        rows = []
        for (name, labels), bucket in sorted(telemetry.histograms.items()):
            count = sum(bucket.values())
            total = sum(value * n for value, n in bucket.items())
            mean = total / count if count else 0.0
            rows.append(
                (
                    name,
                    _format_labels(labels),
                    f"{count:,}",
                    f"{mean:,.2f}",
                    _format_value(min(bucket)),
                    _format_value(max(bucket)),
                )
            )
        sections.append(
            _table(
                "Histograms",
                ("metric", "labels", "count", "mean", "min", "max"),
                rows,
            )
        )

    if telemetry.spans:
        rollup: dict[tuple[str, str], tuple[int, int]] = {}
        for span in telemetry.spans:
            key = (span.cat or "default", span.name)
            count, dur = rollup.get(key, (0, 0))
            rollup[key] = (count + 1, dur + span.dur_us)
        rows = [
            (cat, name, f"{count:,}", f"{dur / 1e6:,.3f}")
            for (cat, name), (count, dur) in sorted(
                rollup.items(), key=lambda item: -item[1][1]
            )
        ]
        sections.append(
            _table("Spans", ("category", "name", "count", "total s"), rows)
        )

    if not sections:
        return "telemetry registry is empty"
    return "\n\n".join(sections)
