"""Trace analyses backing Figures 1, 8 and 10."""

from repro.analysis.divergence import DivergenceStats, divergence_stats
from repro.analysis.halfwarp import ChunkScalarStats, chunk_scalar_stats
from repro.analysis.similarity import (
    CATEGORIES,
    AccessDistribution,
    access_distribution,
)

__all__ = [
    "CATEGORIES",
    "AccessDistribution",
    "ChunkScalarStats",
    "DivergenceStats",
    "access_distribution",
    "chunk_scalar_stats",
    "divergence_stats",
]
