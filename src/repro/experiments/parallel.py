"""Process-pool fan-out over the benchmark × architecture matrix.

The 17-benchmark × 4-architecture matrix is embarrassingly parallel at
benchmark granularity: each benchmark's trace, classified stream and
per-architecture timing/power results are independent of every other
benchmark's.  :func:`run_matrix` spawns one :class:`MatrixTask` per
benchmark and executes them on a :class:`~concurrent.futures.\
ProcessPoolExecutor`; workers communicate with the parent exclusively
through the fingerprinted on-disk cache
(:class:`~repro.experiments.runner.ExperimentRunner` with a shared
``cache_dir``), so the parent — and any later process — replays the
whole matrix from cache without re-executing anything.

Determinism: the simulator is pure numpy/python with no randomness, and
trace serialization round-trips losslessly, so figure data computed
from a parallel-warmed cache is bit-identical to a serial in-process
run (DESIGN §5's determinism requirement).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.config import ArchitectureConfig, GpuConfig
from repro.experiments.runner import (
    DEFAULT_TRANSPORT,
    ExperimentRunner,
    RunnerStats,
    paper_architectures,
)
from repro.experiments.shm import AdoptedSegment, ShmHandle
from repro.obs.telemetry import telemetry_session
from repro.power.energy import EnergyParams


@dataclass(frozen=True)
class MatrixTask:
    """Everything one worker needs to fill the cache for one benchmark.

    All fields are plain (frozen) dataclasses or builtins, so a task
    pickles cleanly under both the ``fork`` and ``spawn`` start methods.
    ``telemetry`` asks the worker to run with an enabled telemetry
    registry and ship its snapshot back in the return payload.  ``shm``
    (optional) points at a shared-memory export of the benchmark's
    already-materialized columnar trace: the worker adopts those pages
    read-only instead of re-reading (or re-executing) the trace.
    ``bank_hints`` carries (stem, fingerprint) pairs of v5 bank entries
    the parent has already verified — ccols/pcols banks, per-chunk
    banks and chunk-grid indexes — so the worker's presence probes
    trust the parent instead of re-reading each manifest.
    ``chunk_events`` propagates the parent's streaming chunk size, so
    workers compute chunked (and share the same per-chunk bank grid).
    """

    abbr: str
    scale: str
    cache_dir: str
    warp_sizes: tuple[int, ...]
    arches: tuple[ArchitectureConfig, ...]
    config: GpuConfig | None
    params: EnergyParams | None
    telemetry: bool = False
    classifier: str = "batch"
    arch_engine: str = "batch"
    sm_engine: str = "event"
    transport: str = DEFAULT_TRANSPORT
    chunk_events: int | None = None
    shm: ShmHandle | None = None
    bank_hints: tuple[tuple[str, str], ...] = ()


def _run_task(task: MatrixTask) -> dict:
    runner = ExperimentRunner(
        scale=task.scale,
        config=task.config,
        params=task.params,
        cache_dir=task.cache_dir,
        classifier=task.classifier,
        arch_engine=task.arch_engine,
        sm_engine=task.sm_engine,
        transport=task.transport,
        chunk_events=task.chunk_events,
    )
    if task.bank_hints:
        runner.adopt_bank_hints(dict(task.bank_hints))
    segment = None
    if task.shm is not None:
        segment = AdoptedSegment(task.shm)
        runner.adopt_shared(
            task.abbr,
            segment.columnar(),
            task.shm.fingerprint,
            task.shm.total_bytes,
        )
    try:
        runner.run(task.abbr)
        for warp_size in task.warp_sizes:
            runner.trace_with_warp_size(task.abbr, warp_size)
        for arch in task.arches:
            runner.power(task.abbr, arch)
        payload = runner.stats.to_payload()
    finally:
        if segment is not None:
            # Drop the runner's references to the shared views before
            # closing the map (CPython refuses to close a buffer with
            # live exports; detach() collects and tolerates leaks).
            runner = None
            segment.detach()
    return payload


def execute_task(task: MatrixTask) -> dict:
    """Worker entry point: warm every stage for one benchmark.

    Returns the worker runner's stats payload (counters, stage seconds
    and the telemetry registry snapshot); results themselves travel
    through the on-disk cache, not the process boundary, so the return
    payload stays small regardless of scale.  With ``task.telemetry``
    set, the whole task runs under an enabled process-global registry
    — scoped with :class:`~repro.obs.telemetry.telemetry_session` so a
    reused pool worker starts the next task with a clean slate — and
    the runner binds its stats to it, so the payload also carries the
    instrumented pipeline's counters, histograms and per-warp spans.
    """
    if task.telemetry:
        with telemetry_session():
            return _run_task(task)
    return _run_task(task)


def run_matrix(
    names: Sequence[str],
    scale: str,
    cache_dir: str | Path,
    jobs: int = 2,
    warp_sizes: Sequence[int] = (32,),
    arches: Sequence[ArchitectureConfig] | None = None,
    config: GpuConfig | None = None,
    params: EnergyParams | None = None,
    progress: Callable[[str, int, int], None] | None = None,
    telemetry: bool = False,
    classifier: str = "batch",
    arch_engine: str = "batch",
    sm_engine: str = "event",
    transport: str = DEFAULT_TRANSPORT,
    chunk_events: int | None = None,
    shm_handles: "dict[str, ShmHandle] | None" = None,
    bank_hints: "dict[str, tuple[tuple[str, str], ...]] | None" = None,
) -> RunnerStats:
    """Execute the benchmark × architecture matrix across processes.

    ``progress`` (optional) is called in the parent as ``progress(abbr,
    completed, total)`` each time a benchmark finishes, in completion
    order.  With ``telemetry`` set, every worker records into an
    enabled registry whose snapshot merges into the returned stats.
    ``shm_handles`` maps benchmark abbreviations to shared-memory
    exports of columnar traces the parent already materialized
    (:class:`~repro.experiments.shm.ShmExporter`); matching workers
    adopt the shared pages instead of re-reading the trace.
    ``bank_hints`` maps abbreviations to the (stem, fingerprint) pairs
    of v5 bank entries the parent has already verified; ``chunk_events``
    makes workers stream their compute in chunks.  Returns the stats
    aggregated over every worker.
    """
    arch_list = tuple(arches) if arches is not None else paper_architectures()
    handles = shm_handles or {}
    hints = bank_hints or {}
    tasks = [
        MatrixTask(
            abbr=abbr,
            scale=scale,
            cache_dir=str(cache_dir),
            warp_sizes=tuple(warp_sizes),
            arches=arch_list,
            config=config,
            params=params,
            telemetry=telemetry,
            classifier=classifier,
            arch_engine=arch_engine,
            sm_engine=sm_engine,
            transport=transport,
            chunk_events=chunk_events,
            shm=handles.get(abbr),
            bank_hints=hints.get(abbr, ()),
        )
        for abbr in names
    ]
    stats = RunnerStats()
    jobs = max(1, min(int(jobs), len(tasks)))
    if jobs == 1:
        for index, task in enumerate(tasks):
            stats.merge(execute_task(task))
            if progress is not None:
                progress(task.abbr, index + 1, len(tasks))
        return stats
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending = {pool.submit(execute_task, task): task for task in tasks}
        completed = 0
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task = pending.pop(future)
                stats.merge(future.result())
                completed += 1
                if progress is not None:
                    progress(task.abbr, completed, len(tasks))
    return stats
