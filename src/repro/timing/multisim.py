"""Multi-SM GPU timing: distribute CTAs across SMs and aggregate.

The figures simulate one SM (the proxies are homogeneous, so per-SM
statistics scale symmetrically — see DESIGN.md).  :func:`simulate_gpu`
models the full chip anyway for launches bigger than one SM's
residency: CTAs are assigned round-robin to ``num_sms`` SM instances,
each with its own L1 and its share of the L2, and the kernel finishes
when the slowest SM drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ArchitectureConfig, GpuConfig
from repro.errors import TimingError
from repro.scalar.architectures import ProcessedEvent
from repro.timing.gpu import lower_to_timing_ops
from repro.timing.memory import MemoryAccessCounts
from repro.timing.sm import TimingResult
from repro.timing.sm_event import DEFAULT_SM_ENGINE, create_sm_simulator


@dataclass
class GpuTimingResult:
    """Aggregated outcome of a multi-SM simulation."""

    per_sm: list[TimingResult] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Kernel runtime: the slowest SM's cycle count."""
        return max((r.cycles for r in self.per_sm), default=0)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.per_sm)

    @property
    def useful_instructions(self) -> int:
        return sum(r.useful_instructions for r in self.per_sm)

    @property
    def ipc(self) -> float:
        """Chip-level IPC over useful instructions."""
        cycles = self.cycles
        return self.useful_instructions / cycles if cycles else 0.0

    @property
    def memory_counts(self) -> MemoryAccessCounts:
        total = MemoryAccessCounts()
        for result in self.per_sm:
            counts = result.memory_counts
            total.l1_accesses += counts.l1_accesses
            total.l2_accesses += counts.l2_accesses
            total.dram_accesses += counts.dram_accesses
            total.shared_accesses += counts.shared_accesses
        return total

    def load_imbalance(self) -> float:
        """Slowest-to-mean cycle ratio (1.0 = perfectly balanced)."""
        busy = [r.cycles for r in self.per_sm if r.cycles]
        if not busy:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))


def simulate_gpu(
    processed: list[list[ProcessedEvent]],
    arch: ArchitectureConfig,
    config: GpuConfig | None = None,
    warp_size: int = 32,
    warps_per_cta: int = 1,
    num_sms: int | None = None,
    sm_engine: str = DEFAULT_SM_ENGINE,
) -> GpuTimingResult:
    """Simulate a launch across the whole chip.

    Warps are grouped into CTAs of ``warps_per_cta`` and CTAs assigned
    round-robin to SMs, matching the GigaThread engine's first-order
    behaviour for homogeneous CTAs.  ``sm_engine`` selects the per-SM
    timing engine (``"event"`` default or the ``"cycle"`` reference).
    """
    config = config or GpuConfig()
    sms = num_sms if num_sms is not None else config.num_sms
    if sms < 1:
        raise TimingError(f"num_sms must be >= 1, got {sms}")
    if warps_per_cta < 1:
        raise TimingError(f"warps_per_cta must be >= 1, got {warps_per_cta}")
    warp_ops = lower_to_timing_ops(processed, arch, config, warp_size)
    num_ctas = (len(warp_ops) + warps_per_cta - 1) // warps_per_cta

    per_sm_ops: list[list[list]] = [[] for _ in range(sms)]
    for cta in range(num_ctas):
        sm_index = cta % sms
        start = cta * warps_per_cta
        per_sm_ops[sm_index].extend(warp_ops[start : start + warps_per_cta])

    results = []
    for ops in per_sm_ops:
        simulator = create_sm_simulator(
            sm_engine,
            ops,
            config,
            extra_latency=arch.extra_pipeline_cycles,
            warps_per_cta=warps_per_cta,
        )
        results.append(simulator.run())
    return GpuTimingResult(per_sm=results)
