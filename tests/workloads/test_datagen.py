"""Tests for the value-pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.gscalar import common_prefix_bytes
from repro.errors import WorkloadError
from repro.workloads import datagen


class TestGenerators:
    def test_scalar_words(self):
        values = datagen.scalar_words(32, 0xABCD)
        assert common_prefix_bytes(values) == 4

    @pytest.mark.parametrize("prefix", [1, 2, 3])
    def test_shared_prefix_words(self, prefix):
        values = datagen.shared_prefix_words(64, prefix, seed=1)
        assert common_prefix_bytes(values[:32]) >= prefix

    def test_shared_prefix_is_deterministic(self):
        a = datagen.shared_prefix_words(32, 2, seed=7)
        b = datagen.shared_prefix_words(32, 2, seed=7)
        assert np.array_equal(a, b)

    def test_affine_words(self):
        values = datagen.affine_words(8, base=0x1000, stride=4)
        assert values[0] == 0x1000
        assert values[7] == 0x1000 + 28

    def test_affine_wraps(self):
        values = datagen.affine_words(2, base=0xFFFFFFFC, stride=8)
        assert values[1] == 4

    def test_narrow_floats_share_exponent(self):
        values = datagen.narrow_floats(32, 100.0, 0.5, seed=3)
        assert common_prefix_bytes(values) >= 1

    def test_small_ints_have_zero_top_bytes(self):
        values = datagen.small_ints(32, 256, seed=4)
        assert common_prefix_bytes(values) >= 3

    def test_random_words_rarely_similar(self):
        values = datagen.random_words(32, seed=5)
        assert common_prefix_bytes(values) == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            datagen.shared_prefix_words(8, 5, seed=0)
        with pytest.raises(WorkloadError):
            datagen.small_ints(8, 0, seed=0)
        with pytest.raises(WorkloadError):
            datagen.narrow_floats(8, 0.0, -1.0, seed=0)


class TestMixedWords:
    def test_fraction_validation(self):
        with pytest.raises(WorkloadError):
            datagen.mixed_words(64, {4: 0.5}, seed=0)

    def test_chunks_follow_distribution(self):
        values = datagen.mixed_words(32 * 200, {4: 0.5, 0: 0.5}, seed=9)
        scalar_chunks = sum(
            1
            for i in range(200)
            if common_prefix_bytes(values[32 * i : 32 * (i + 1)]) == 4
        )
        assert 60 <= scalar_chunks <= 140


class TestBoundaryMask:
    def test_exact_mixed_count(self):
        flags = datagen.boundary_mask_pattern(320, 0.5, seed=11)
        mixed = 0
        for warp in range(10):
            block = flags[warp * 32 : (warp + 1) * 32]
            if 0 < block.sum() < 32:
                mixed += 1
        assert mixed == 5

    def test_extremes(self):
        none_mixed = datagen.boundary_mask_pattern(320, 0.0, seed=1)
        for warp in range(10):
            block = none_mixed[warp * 32 : (warp + 1) * 32]
            assert block.sum() in (0, 32)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            datagen.boundary_mask_pattern(32, 1.5, seed=0)


@settings(max_examples=50, deadline=None)
@given(
    prefix=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_shared_prefix_property(prefix, seed):
    values = datagen.shared_prefix_words(32, prefix, seed)
    assert common_prefix_bytes(values) >= prefix
