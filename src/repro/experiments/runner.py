"""End-to-end experiment pipeline with caching.

One :class:`ExperimentRunner` owns a scale and a GPU/energy
configuration and lazily computes, per benchmark:

* the functional trace (executed once, shared by every architecture),
* the classified event stream (tracker output, architecture-independent),
* per-architecture processed events, timing results and power reports.

Every figure regenerator takes a runner, so a full ``python -m repro all``
executes each benchmark exactly once.

With ``cache_dir`` set, every expensive stage also persists on disk so
it can be shared *across* processes:

* traces as compressed ``.npz`` archives (:mod:`repro.simt.serialize`),
* classified streams and per-architecture timing/power results as
  pickle sidecars.

Each cached artifact embeds a content fingerprint
(:mod:`repro.experiments.cachekey`) covering the kernel, scale, warp
size, architecture, GPU configuration and energy parameters; a
mismatch — or any corrupt file — falls back to re-execution and
overwrites the stale entry.  :meth:`ExperimentRunner.prefetch` fans the
benchmark × architecture matrix out over a process pool
(:mod:`repro.experiments.parallel`) that communicates exclusively
through this cache, and :attr:`ExperimentRunner.stats` counts cache
hits, misses, re-executions and per-stage wall time for observability.
"""

from __future__ import annotations

import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.analysis.static_.widths import WIDTH_ANALYSIS_VERSION, analyze_widths
from repro.config import ArchitectureConfig, GpuConfig
from repro.errors import TraceError
from repro.experiments import cachekey
from repro.obs.instrument import record_columnar_warps
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.power.accounting import PowerAccountant
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.report import PowerReport
from repro.scalar.arch_batch import (
    ARCH_ENGINE_CHOICES,
    DEFAULT_ARCH_ENGINE,
    process_columns,
)
from repro.scalar.architectures import ProcessedEvent, process_classified
from repro.scalar.batch import (
    CLASSIFIER_CHOICES,
    DEFAULT_CLASSIFIER,
    classify_columnar_batch,
    classify_trace_with,
)
from repro.scalar.columns import ClassifiedColumns, ProcessedColumns
from repro.scalar.tracker import ClassifiedEvent
from repro.simt.executor import run_kernel
from repro.simt.serialize import load_columnar, save_trace
from repro.simt.trace import ColumnarTrace, KernelTrace, opcode_labels
from repro.timing.gpu import simulate_architecture, simulate_architecture_columns
from repro.timing.sm import TimingResult
from repro.timing.sm_event import DEFAULT_SM_ENGINE, SM_ENGINE_CHOICES
from repro.workloads.registry import SCALES, BuiltWorkload, all_workloads, workload_by_name

#: Version of the pickled stage sidecars (classified streams and
#: timing/power results).  Bump to invalidate all of them at once,
#: e.g. when a classifier or timing-model change alters their meaning.
#: Version 2: the batch classification engine became the default and
#: the classified-stream fingerprint gained the engine name.
#: Version 4: the columnar architecture/power engine became the default
#: and the results fingerprint gained the arch-engine name (so the
#: batch and event engines never replay each other's sidecars).
#: Version 5: the event-driven SM timing engine became the default, the
#: results fingerprint gained the SM-engine name, and the memory model's
#: store path stopped allocating L1 lines (no-allocate stores change
#: load hit rates, hence latencies, hence every cached timing result).
#: Version 6: the two-bucket stall breakdown became the six-cause
#: per-scheduler taxonomy (:class:`~repro.timing.sm.StallBreakdown` was
#: reshaped and :class:`~repro.timing.sm.TimingResult` gained
#: ``stalls_per_scheduler``), changing the pickled timing-result shape.
STAGE_VERSION = 6


def paper_architectures() -> tuple[ArchitectureConfig, ...]:
    """The four evaluated architectures, in Figure 11 order."""
    return (
        ArchitectureConfig.baseline(),
        ArchitectureConfig.alu_scalar(),
        ArchitectureConfig.gscalar_no_divergent(),
        ArchitectureConfig.gscalar(),
    )


def matrix_architectures() -> tuple[ArchitectureConfig, ...]:
    """Every modeled architecture: the paper's four plus the
    statically-compressed RF design point (kept out of
    :func:`paper_architectures` so the figure series stay faithful)."""
    return paper_architectures() + (ArchitectureConfig.static_compress(),)


class RunnerStats:
    """Cache and stage observability counters for one runner.

    ``counters`` tracks cache outcomes (``trace_cache_hits``,
    ``trace_cache_misses``, ``trace_cache_invalid``,
    ``trace_executions``, ``classified_cache_hits``, ...);
    ``stage_seconds`` accumulates wall time per pipeline stage.  Stats
    merge across processes, so a parallel prefetch reports the totals
    over all workers.

    The storage is a :class:`~repro.obs.telemetry.Telemetry` registry
    (``runner_events`` / ``runner_stage_seconds`` counter families plus
    one ``cat="stage"`` span per :meth:`timer` scope, carrying the
    recording process's pid).  When the process-global telemetry is
    enabled — ``repro profile`` or ``--trace-out``/``--metrics-out`` —
    the runner binds its stats to that shared registry, so stage spans
    land on the same timeline as the pipeline's own spans and the
    Chrome trace shows the true per-worker concurrency; otherwise each
    stats object owns a private registry, exactly as independent as the
    old plain-dict implementation.
    """

    _EVENTS = "runner_events"
    _STAGES = "runner_stage_seconds"

    def __init__(self, telemetry: Telemetry | None = None):
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    @property
    def counters(self) -> dict[str, int]:
        """Cache-outcome counters as a plain name -> count dict."""
        return {
            dict(labels)["event"]: value
            for labels, value in sorted(
                self.telemetry.counters_named(self._EVENTS).items()
            )
        }

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Accumulated wall seconds per pipeline stage."""
        return {
            dict(labels)["stage"]: value
            for labels, value in sorted(
                self.telemetry.counters_named(self._STAGES).items()
            )
        }

    def bump(self, name: str, amount: int = 1) -> None:
        self.telemetry.count(self._EVENTS, amount, event=name)

    def add_time(self, stage: str, seconds: float) -> None:
        self.telemetry.count(self._STAGES, seconds, stage=stage)

    @contextmanager
    def timer(self, stage: str, **span_args) -> Iterator[None]:
        """Time a stage: accumulates seconds and records one span."""
        started = time.perf_counter()
        try:
            with self.telemetry.span(stage, cat="stage", **span_args):
                yield
        finally:
            self.add_time(stage, time.perf_counter() - started)

    def merge(self, other: "RunnerStats | dict") -> None:
        """Fold another stats object (or a worker payload) into this one.

        Accepts another :class:`RunnerStats`, a full :meth:`to_payload`
        dict (merged registry-to-registry, spans included), or the
        legacy ``{"counters", "stage_seconds"}`` shape of
        :meth:`to_dict`.
        """
        if isinstance(other, RunnerStats):
            self.telemetry.merge(other.telemetry)
            return
        snapshot = other.get("telemetry")
        if snapshot is not None:
            # Full payload: counters/stage_seconds are already inside
            # the registry snapshot; folding both would double-count.
            self.telemetry.merge(snapshot)
            return
        for name, amount in other.get("counters", {}).items():
            self.bump(name, amount)
        for stage, value in other.get("stage_seconds", {}).items():
            self.add_time(stage, value)

    @property
    def trace_executions(self) -> int:
        """Functional executions actually performed (cache misses paid)."""
        return self.counters.get("trace_executions", 0)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (``--stats-json`` output shape)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "stage_seconds": {
                stage: round(value, 6)
                for stage, value in sorted(self.stage_seconds.items())
            },
        }

    def to_payload(self) -> dict:
        """Worker-return payload: :meth:`to_dict` plus the registry.

        The ``telemetry`` snapshot carries every counter, histogram and
        span the worker recorded (stage spans keep the worker's pid),
        so a parent merging payloads reassembles the full multi-process
        timeline; the legacy keys stay for direct consumers.
        """
        payload = self.to_dict()
        payload["telemetry"] = self.telemetry.snapshot()
        return payload


@dataclass
class BenchmarkRun:
    """Cached functional-level artifacts of one benchmark."""

    abbr: str
    built: BuiltWorkload
    trace: KernelTrace
    classified: list[list[ClassifiedEvent]] = field(repr=False, default_factory=list)
    #: Content fingerprint of the (kernel, scale, warp-size) combination
    #: that produced ``trace``; stage sidecars derive their keys from it.
    trace_fingerprint: str = ""
    #: The columnar form of ``trace`` when it came from the .npz cache;
    #: lets the columnar pipeline reuse its arrays instead of
    #: re-extracting them from event objects.
    columnar: ColumnarTrace | None = field(repr=False, default=None)


class ExperimentRunner:
    """Caches traces and per-architecture results across experiments."""

    def __init__(
        self,
        scale: str = "default",
        config: GpuConfig | None = None,
        params: EnergyParams | None = None,
        verbose: bool = False,
        cache_dir: str | Path | None = None,
        classifier: str = DEFAULT_CLASSIFIER,
        arch_engine: str = DEFAULT_ARCH_ENGINE,
        sm_engine: str = DEFAULT_SM_ENGINE,
    ):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
        if classifier not in CLASSIFIER_CHOICES:
            raise ValueError(
                f"unknown classifier {classifier!r}; known: "
                f"{', '.join(CLASSIFIER_CHOICES)}"
            )
        if arch_engine not in ARCH_ENGINE_CHOICES:
            raise ValueError(
                f"unknown arch engine {arch_engine!r}; known: "
                f"{', '.join(ARCH_ENGINE_CHOICES)}"
            )
        if sm_engine not in SM_ENGINE_CHOICES:
            raise ValueError(
                f"unknown SM engine {sm_engine!r}; known: "
                f"{', '.join(SM_ENGINE_CHOICES)}"
            )
        self.classifier = classifier
        self.arch_engine = arch_engine
        self.sm_engine = sm_engine
        self.scale = SCALES[scale]
        self.config = config or GpuConfig()
        self.params = params or DEFAULT_ENERGY
        self.verbose = verbose
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        # With profiling on, stage spans and cache counters go straight
        # into the shared registry (one timeline with the pipeline's
        # own spans); otherwise the stats own a private registry.
        telemetry = get_telemetry()
        self.stats = RunnerStats(telemetry=telemetry if telemetry.enabled else None)
        self._runs: dict[str, BenchmarkRun] = {}
        self._warp_traces: dict[tuple[str, int], KernelTrace] = {}
        self._static_widths: dict[str, tuple[int, ...]] = {}
        self._processed: dict[tuple[str, str], list[list[ProcessedEvent]]] = {}
        self._classified_columns: dict[str, ClassifiedColumns] = {}
        self._processed_columns: dict[tuple[str, str], ProcessedColumns] = {}
        self._timing: dict[tuple[str, str], TimingResult] = {}
        self._power: dict[tuple[str, str], PowerReport] = {}

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[runner] {message}", flush=True)

    @staticmethod
    def _normalize(abbr: str) -> str:
        """One canonical spelling for benchmark keys, lookups and files."""
        return abbr.strip().upper()

    # ------------------------------------------------------------------
    # On-disk cache plumbing.
    # ------------------------------------------------------------------
    def _trace_path(self, key: str, warp_size: int) -> Path:
        assert self.cache_dir is not None
        suffix = "" if warp_size == 32 else f"_w{warp_size}"
        return self.cache_dir / f"{key}_{self.scale.name}{suffix}.npz"

    def _sidecar_path(self, key: str, stage: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}_{self.scale.name}_{stage}.pkl"

    @staticmethod
    def _replace_into(tmp: Path, final: Path) -> None:
        os.replace(tmp, final)

    def _load_sidecar(self, path: Path, fingerprint: str) -> dict | None:
        """Read a pickle sidecar; ``None`` on absence, damage or staleness."""
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("fingerprint") == fingerprint:
                return payload
            self._log(f"discarding stale sidecar {path.name}")
        except Exception as exc:
            self._log(f"discarding corrupt sidecar {path.name}: {exc}")
        self.stats.bump("sidecar_invalid")
        return None

    def _store_sidecar(self, path: Path, payload: dict) -> None:
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._replace_into(tmp, path)

    # ------------------------------------------------------------------
    # Trace stage.
    # ------------------------------------------------------------------
    def _obtain_trace(
        self, key: str, built: BuiltWorkload, warp_size: int
    ) -> tuple[KernelTrace | ColumnarTrace, str]:
        """Load a fingerprint-matching cached trace or execute and cache.

        A cache hit returns the :class:`ColumnarTrace` exactly as it
        lies on disk — no per-event reconstruction.  Callers that need
        the event form either hand it to the batch classifier (which
        materializes events once, during classification) or call
        ``.to_trace()`` themselves.  A cache miss executes and returns
        the event-form :class:`KernelTrace` directly.
        """
        fingerprint = cachekey.trace_fingerprint(built.kernel, self.scale, warp_size)
        path = None
        if self.cache_dir is not None:
            path = self._trace_path(key, warp_size)
            if path.exists():
                try:
                    with self.stats.timer("trace_load", benchmark=key, warp_size=warp_size):
                        columnar = load_columnar(path, expected_fingerprint=fingerprint)
                except TraceError as exc:
                    self._log(f"discarding cached trace {path.name}: {exc}")
                    self.stats.bump("trace_cache_invalid")
                else:
                    self.stats.bump("trace_cache_hits")
                    self._log(f"loaded cached trace for {key} (warp {warp_size})")
                    telemetry = get_telemetry()
                    if telemetry.enabled:
                        # Cache hits skip the executor, so feed the
                        # instruction-mix counters from the columnar
                        # arrays instead — same numbers either way.
                        record_columnar_warps(telemetry, columnar, opcode_labels())
                    return columnar, fingerprint
            self.stats.bump("trace_cache_misses")
        self._log(f"executing {key} at scale {self.scale.name!r} warp {warp_size}")
        self.stats.bump("trace_executions")
        with self.stats.timer("trace_execute", benchmark=key, warp_size=warp_size):
            trace = run_kernel(
                built.kernel, built.launch, built.memory, warp_size=warp_size
            )
        if path is not None:
            # Write-then-rename so a concurrent reader never sees a
            # half-written archive (np.savez only appends ".npz" to
            # names lacking it, so the temp name must keep the suffix).
            tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
            with self.stats.timer("trace_save", benchmark=key, warp_size=warp_size):
                save_trace(trace, tmp, fingerprint=fingerprint)
                self._replace_into(tmp, path)
        return trace, fingerprint

    def _obtain_classified(
        self,
        key: str,
        built: BuiltWorkload,
        trace_fingerprint: str,
        trace: KernelTrace | ColumnarTrace,
    ) -> tuple[KernelTrace, list[list[ClassifiedEvent]]]:
        """Classified stream (cached or computed) plus the event-form trace.

        When the trace arrived columnar (a cache hit) and the batch
        engine is selected, classification runs straight off the
        columnar arrays and materializes the event form as a by-product
        — one object per event total, shared between the returned trace
        and the classified stream.
        """
        fingerprint = cachekey.classified_fingerprint(
            trace_fingerprint, STAGE_VERSION, self.classifier
        )
        path = None
        if self.cache_dir is not None:
            path = self._sidecar_path(key, "classified")
            payload = self._load_sidecar(path, fingerprint)
            if payload is not None:
                self.stats.bump("classified_cache_hits")
                if isinstance(trace, ColumnarTrace):
                    trace = trace.to_trace()
                return trace, payload["classified"]
            self.stats.bump("classified_cache_misses")
        with self.stats.timer("classify", benchmark=key):
            if isinstance(trace, ColumnarTrace):
                if self.classifier == "batch":
                    trace, classified = classify_columnar_batch(
                        trace, built.kernel.num_registers
                    )
                else:
                    trace = trace.to_trace()
                    classified = classify_trace_with(
                        trace, built.kernel.num_registers, self.classifier
                    )
            else:
                classified = classify_trace_with(
                    trace, built.kernel.num_registers, self.classifier
                )
        if path is not None:
            self._store_sidecar(
                path, {"fingerprint": fingerprint, "classified": classified}
            )
        return trace, classified

    # ------------------------------------------------------------------
    def benchmark_names(self) -> list[str]:
        """All benchmark abbreviations in Table 2 order."""
        return [spec.abbr for spec in all_workloads()]

    def run(self, abbr: str) -> BenchmarkRun:
        """Execute (or fetch) one benchmark's functional trace.

        With ``cache_dir`` set, traces persist across processes as
        ``.npz`` files and classified streams as pickle sidecars, both
        validated against a content fingerprint before reuse.
        """
        key = self._normalize(abbr)
        if key not in self._runs:
            spec = workload_by_name(key)
            built = spec.builder(self.scale)
            trace, fingerprint = self._obtain_trace(key, built, 32)
            columnar = trace if isinstance(trace, ColumnarTrace) else None
            trace, classified = self._obtain_classified(key, built, fingerprint, trace)
            self._runs[key] = BenchmarkRun(
                abbr=key,
                built=built,
                trace=trace,
                classified=classified,
                trace_fingerprint=fingerprint,
                columnar=columnar,
            )
        return self._runs[key]

    def trace_with_warp_size(self, abbr: str, warp_size: int) -> KernelTrace:
        """Re-execute a benchmark with a different warp size (Figure 10).

        Shares the same fingerprint-checked on-disk cache as :meth:`run`,
        with the warp size in the cache key, so warp-64 traces are
        executed once per cache directory rather than once per process.
        """
        key = self._normalize(abbr)
        if warp_size == 32:
            return self.run(key).trace
        token = (key, warp_size)
        if token not in self._warp_traces:
            spec = workload_by_name(key)
            built = spec.builder(self.scale)
            trace, _ = self._obtain_trace(key, built, warp_size)
            if isinstance(trace, ColumnarTrace):
                trace = trace.to_trace()
            self._warp_traces[token] = trace
        return self._warp_traces[token]

    # ------------------------------------------------------------------
    def static_widths(self, abbr: str) -> tuple[int, ...]:
        """Per-register guaranteed ``enc`` table from the width analysis.

        Architecture-independent (a pure function of the kernel), cached
        per benchmark and fed to the ``static_compress`` interpretation
        by both engines.  Cheap relative to tracing, so it is recomputed
        per process rather than persisted; the results sidecars it feeds
        are keyed on :data:`~repro.analysis.static_.widths.WIDTH_ANALYSIS_VERSION`.
        """
        key = self._normalize(abbr)
        if key not in self._static_widths:
            run = self.run(key)
            with self.stats.timer("width_analysis", benchmark=key):
                self._static_widths[key] = analyze_widths(
                    run.built.kernel, warp_size=run.trace.warp_size
                ).register_enc
        return self._static_widths[key]

    def _widths_for(self, abbr: str, arch: ArchitectureConfig):
        return self.static_widths(abbr) if arch.static_compression else None

    def processed(
        self, abbr: str, arch: ArchitectureConfig
    ) -> list[list[ProcessedEvent]]:
        """Per-architecture processed events for one benchmark."""
        key = (self._normalize(abbr), arch.name)
        if key not in self._processed:
            run = self.run(key[0])
            widths = self._widths_for(key[0], arch)
            with self.stats.timer("process", benchmark=key[0], arch=arch.name):
                self._processed[key] = process_classified(
                    run.classified, arch, run.trace.warp_size, static_widths=widths
                )
        return self._processed[key]

    def classified_columns(self, abbr: str) -> ClassifiedColumns:
        """Columnar classified stream (architecture-independent, shared
        by every architecture's batch interpretation)."""
        key = self._normalize(abbr)
        if key not in self._classified_columns:
            run = self.run(key)
            with self.stats.timer("columns", benchmark=key):
                self._classified_columns[key] = ClassifiedColumns.from_classified(
                    run.classified, run.trace.warp_size, columnar=run.columnar
                )
        return self._classified_columns[key]

    def processed_columns(self, abbr: str, arch: ArchitectureConfig) -> ProcessedColumns:
        """Per-architecture columnar processed trace for one benchmark."""
        key = (self._normalize(abbr), arch.name)
        if key not in self._processed_columns:
            ccols = self.classified_columns(key[0])
            widths = self._widths_for(key[0], arch)
            with self.stats.timer("process", benchmark=key[0], arch=arch.name):
                self._processed_columns[key] = process_columns(
                    ccols, arch, static_widths=widths
                )
        return self._processed_columns[key]

    def _results_fingerprint(self, run: BenchmarkRun, arch: ArchitectureConfig) -> str:
        return cachekey.stage_fingerprint(
            run.trace_fingerprint,
            arch,
            self.config,
            self.params,
            STAGE_VERSION,
            engine=self.arch_engine,
            sm_engine=self.sm_engine,
            analysis_version=(
                WIDTH_ANALYSIS_VERSION if arch.static_compression else None
            ),
        )

    def _load_results(self, key: str, arch: ArchitectureConfig) -> bool:
        """Try the timing/power sidecar; ``True`` when both were restored."""
        if self.cache_dir is None:
            return False
        run = self.run(key)
        path = self._sidecar_path(key, f"results_{arch.name}")
        payload = self._load_sidecar(path, self._results_fingerprint(run, arch))
        if payload is None:
            self.stats.bump("result_cache_misses")
            return False
        self._timing[(key, arch.name)] = payload["timing"]
        self._power[(key, arch.name)] = payload["power"]
        self.stats.bump("result_cache_hits")
        return True

    def _store_results(self, key: str, arch: ArchitectureConfig) -> None:
        if self.cache_dir is None:
            return
        run = self.run(key)
        self._store_sidecar(
            self._sidecar_path(key, f"results_{arch.name}"),
            {
                "fingerprint": self._results_fingerprint(run, arch),
                "timing": self._timing[(key, arch.name)],
                "power": self._power[(key, arch.name)],
            },
        )

    def warps_per_cta(self, abbr: str) -> int | None:
        """Warps per CTA of one benchmark's launch (barrier scope)."""
        run = self.run(self._normalize(abbr))
        return run.built.launch.warps_per_cta(run.trace.warp_size)

    def _compute_timing(self, key: str, arch: ArchitectureConfig) -> None:
        self._log(f"timing {key} on {arch.name}")
        run = self.run(key)
        warps_per_cta = run.built.launch.warps_per_cta(run.trace.warp_size)
        with self.stats.timer(
            "timing", benchmark=key, arch=arch.name, sm_engine=self.sm_engine
        ):
            if self.arch_engine == "batch":
                self._timing[(key, arch.name)] = simulate_architecture_columns(
                    self.classified_columns(key),
                    self.processed_columns(key, arch),
                    arch,
                    self.config,
                    warps_per_cta=warps_per_cta,
                    sm_engine=self.sm_engine,
                )
            else:
                self._timing[(key, arch.name)] = simulate_architecture(
                    self.processed(key, arch),
                    arch,
                    self.config,
                    warps_per_cta=warps_per_cta,
                    sm_engine=self.sm_engine,
                )

    def timing(self, abbr: str, arch: ArchitectureConfig) -> TimingResult:
        """Cycle-level result for one (benchmark, architecture) pair."""
        key = self._normalize(abbr)
        if (key, arch.name) not in self._timing and not self._load_results(key, arch):
            self._compute_timing(key, arch)
        return self._timing[(key, arch.name)]

    def timeline(
        self,
        abbr: str,
        arch: ArchitectureConfig,
        recorder,
        sm_engine: str | None = None,
    ) -> TimingResult:
        """Re-run timing with a flight recorder threaded through.

        Always simulates (never replays a sidecar — recorded events
        cannot come from a cache) and never stores the result, so the
        recorded run cannot pollute the recorder-free result cache.
        ``sm_engine`` overrides the runner's engine for one run (the
        ``repro timeline --compare-engines`` path drives both engines
        over the same streams).
        """
        key = self._normalize(abbr)
        engine = sm_engine or self.sm_engine
        run = self.run(key)
        warps_per_cta = run.built.launch.warps_per_cta(run.trace.warp_size)
        self._log(f"timeline {key} on {arch.name} ({engine} engine)")
        with self.stats.timer(
            "timeline", benchmark=key, arch=arch.name, sm_engine=engine
        ):
            if self.arch_engine == "batch":
                return simulate_architecture_columns(
                    self.classified_columns(key),
                    self.processed_columns(key, arch),
                    arch,
                    self.config,
                    warps_per_cta=warps_per_cta,
                    sm_engine=engine,
                    recorder=recorder,
                )
            return simulate_architecture(
                self.processed(key, arch),
                arch,
                self.config,
                warps_per_cta=warps_per_cta,
                sm_engine=engine,
                recorder=recorder,
            )

    def power(self, abbr: str, arch: ArchitectureConfig) -> PowerReport:
        """Power report for one (benchmark, architecture) pair."""
        key = self._normalize(abbr)
        if (key, arch.name) not in self._power and not self._load_results(key, arch):
            timing = self.timing(key, arch)
            accountant = PowerAccountant(arch, self.params, self.config)
            with self.stats.timer("power", benchmark=key, arch=arch.name):
                if self.arch_engine == "batch":
                    self._power[(key, arch.name)] = accountant.account_columns(
                        self.processed_columns(key, arch), timing
                    )
                else:
                    self._power[(key, arch.name)] = accountant.account(
                        self.processed(key, arch), timing
                    )
            self._store_results(key, arch)
        return self._power[(key, arch.name)]

    # ------------------------------------------------------------------
    # Matrix prefetch (the parallel experiment engine's front door).
    # ------------------------------------------------------------------
    def prefetch(
        self,
        names: Sequence[str] | None = None,
        jobs: int = 1,
        warp_sizes: Sequence[int] = (32,),
        arches: Sequence[ArchitectureConfig] | None = None,
        progress: Callable[[str, int, int], None] | None = None,
    ) -> RunnerStats:
        """Warm every cacheable stage of the benchmark × arch matrix.

        With ``jobs > 1`` the matrix fans out over a process pool
        (:func:`repro.experiments.parallel.run_matrix`); workers share
        results exclusively through the on-disk cache, so ``cache_dir``
        is required.  Worker statistics merge into :attr:`stats` and the
        merged stats are returned.  Serial (``jobs == 1``) prefetch
        works with or without a cache directory.
        """
        wanted = [self._normalize(name) for name in (names or self.benchmark_names())]
        arch_list = tuple(arches) if arches is not None else paper_architectures()
        jobs = max(1, int(jobs))
        if progress is None and self.verbose:
            progress = lambda abbr, done, total: self._log(
                f"prefetch {done}/{total}: {abbr}"
            )
        with self.stats.timer("prefetch"):
            if jobs == 1 or len(wanted) <= 1:
                for index, abbr in enumerate(wanted):
                    self.run(abbr)
                    for warp_size in warp_sizes:
                        self.trace_with_warp_size(abbr, warp_size)
                    for arch in arch_list:
                        self.power(abbr, arch)
                    if progress is not None:
                        progress(abbr, index + 1, len(wanted))
            else:
                if self.cache_dir is None:
                    raise ValueError(
                        "parallel prefetch requires cache_dir: worker "
                        "processes communicate through the on-disk cache"
                    )
                from repro.experiments.parallel import run_matrix

                worker_stats = run_matrix(
                    names=wanted,
                    scale=self.scale.name,
                    cache_dir=self.cache_dir,
                    jobs=jobs,
                    warp_sizes=tuple(warp_sizes),
                    arches=arch_list,
                    config=self.config,
                    params=self.params,
                    progress=progress,
                    telemetry=get_telemetry().enabled,
                    classifier=self.classifier,
                    arch_engine=self.arch_engine,
                    sm_engine=self.sm_engine,
                )
                self.stats.merge(worker_stats)
        return self.stats
