"""Simulator configuration (the paper's Table 1) and architecture knobs.

The baseline machine mirrors the paper's GTX-480-like setup: 15 SMs,
128 KB of registers per SM (1024 vector registers of 32 x 4 bytes), a
16-bank register file, two warp schedulers, 16-wide SIMT execution and a
4-lane SFU.  :class:`GpuConfig` carries those structural parameters;
:class:`ArchitectureConfig` selects which G-Scalar mechanisms are active
so the same machinery can model the baseline, the prior ALU-scalar
architecture and both G-Scalar variants.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class SchedulerPolicy(enum.Enum):
    """Warp scheduler policy used by each of the SM's schedulers."""

    GTO = "gto"
    LRR = "lrr"


@dataclass(frozen=True)
class GpuConfig:
    """Structural machine parameters (defaults reproduce Table 1)."""

    num_sms: int = 15
    sm_frequency_ghz: float = 1.4
    noc_frequency_ghz: float = 0.7
    warp_size: int = 32
    threads_per_sm: int = 1536
    ctas_per_sm: int = 8
    registers_per_sm_bytes: int = 128 * 1024
    register_file_banks: int = 16
    operand_collectors_per_sm: int = 16
    schedulers_per_sm: int = 2
    simt_width: int = 16
    alu_pipelines: int = 2
    mem_pipelines: int = 1
    sfu_pipelines: int = 1
    sfu_width: int = 4
    l1_cache_bytes: int = 16 * 1024
    l2_cache_bytes: int = 768 * 1024
    memory_channels: int = 6
    #: Loose round-robin is GPGPU-Sim 3.x's classic default and gives
    #: the most stable cycle counts in this model; greedy-then-oldest
    #: (GTO) is available for scheduler studies.
    scheduler_policy: SchedulerPolicy = SchedulerPolicy.LRR
    #: Base write-back latencies in cycles after dispatch completes
    #: (sweepable via experiments/sensitivity.py; the historical
    #: module-level constants in timing/sm.py are deprecated aliases of
    #: these defaults).
    alu_latency: int = 18
    long_alu_latency: int = 120
    sfu_latency: int = 22
    ctrl_latency: int = 10
    #: Bucket width (cycles) of the flight recorder's occupancy and
    #: issued-IPC time series (``repro timeline``; see
    #: :mod:`repro.obs.timeline`).  Purely observational — it never
    #: affects simulated timing.
    timeline_interval_cycles: int = 1024

    def __post_init__(self) -> None:
        if self.warp_size % 2 != 0 or self.warp_size < 2:
            raise ConfigError(f"warp_size must be an even integer >= 2, got {self.warp_size}")
        if self.simt_width < 1 or self.sfu_width < 1:
            raise ConfigError("pipeline widths must be positive")
        if self.register_file_banks < 1:
            raise ConfigError("register_file_banks must be positive")
        if self.threads_per_sm % self.warp_size != 0:
            raise ConfigError(
                f"threads_per_sm ({self.threads_per_sm}) must be a multiple of "
                f"warp_size ({self.warp_size})"
            )
        for name in ("alu_latency", "long_alu_latency", "sfu_latency", "ctrl_latency"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.timeline_interval_cycles < 1:
            raise ConfigError(
                f"timeline_interval_cycles must be >= 1, "
                f"got {self.timeline_interval_cycles}"
            )

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps on one SM."""
        return self.threads_per_sm // self.warp_size

    @property
    def vector_registers_per_sm(self) -> int:
        """Number of warp-wide vector registers in the register file."""
        return self.registers_per_sm_bytes // (self.warp_size * 4)

    @property
    def vector_registers_per_bank(self) -> int:
        """Vector registers held by each register-file bank."""
        return self.vector_registers_per_sm // self.register_file_banks

    @property
    def alu_dispatch_cycles(self) -> int:
        """Cycles to dispatch one full warp down a 16-lane ALU pipeline."""
        return max(1, self.warp_size // self.simt_width)

    @property
    def sfu_dispatch_cycles(self) -> int:
        """Cycles to dispatch one full warp down the narrow SFU pipeline."""
        return max(1, self.warp_size // self.sfu_width)


class ScalarMode(enum.Enum):
    """Which classes of instruction an architecture may scalarize."""

    NONE = "none"
    ALU_ONLY = "alu_only"
    ALL_PIPELINES = "all_pipelines"


@dataclass(frozen=True)
class ArchitectureConfig:
    """Feature switches selecting one of the evaluated architectures.

    The four configurations used throughout the paper's evaluation are
    available as the constructors :meth:`baseline`, :meth:`alu_scalar`,
    :meth:`gscalar_no_divergent` and :meth:`gscalar`.
    """

    name: str
    scalar_mode: ScalarMode
    register_compression: bool
    half_register_compression: bool
    half_warp_scalar: bool
    divergent_scalar: bool
    dedicated_scalar_rf: bool
    extra_pipeline_cycles: int
    #: When True, a scalar-executed instruction occupies its pipeline's
    #: dispatch port for a single cycle (one active lane) instead of the
    #: full multi-cycle warp pass.  The paper treats this as a possible
    #: extension (§6) but evaluates G-Scalar *without* it — Figure 11's
    #: IPC series shows only the 3-cycle latency penalty — so it
    #: defaults to False and exists for the ablation benchmarks.
    scalar_fast_dispatch: bool = False
    #: Compile-time register compression (Angerd/Sintorn/Stenström,
    #: arXiv:2006.05693): registers the static width analysis proves
    #: narrow are stored/fetched compressed, with *no* runtime detection
    #: hardware (no comparator energy, no BVR/EBR sidecar).  Mutually
    #: exclusive with the dynamic compression mechanisms.
    static_compression: bool = False

    def __post_init__(self) -> None:
        if self.half_warp_scalar and not self.half_register_compression:
            raise ConfigError(
                f"{self.name}: half-warp scalar execution requires "
                "half-register compression (the second BVR/EBR pair)"
            )
        if self.divergent_scalar and self.scalar_mode is ScalarMode.NONE:
            raise ConfigError(f"{self.name}: divergent scalar requires scalar execution")
        if self.divergent_scalar and not self.register_compression:
            raise ConfigError(
                f"{self.name}: divergent scalar detection reuses the "
                "compression encoder and therefore requires compression"
            )
        if self.extra_pipeline_cycles < 0:
            raise ConfigError(f"{self.name}: extra_pipeline_cycles must be >= 0")
        if self.static_compression and self.register_compression:
            raise ConfigError(
                f"{self.name}: static compression replaces the dynamic "
                "detector; enabling both would double-count the RF savings"
            )
        if self.static_compression and self.dedicated_scalar_rf:
            raise ConfigError(
                f"{self.name}: static compression models the shared vector "
                "RF; a dedicated scalar RF has no compressed storage"
            )

    @staticmethod
    def baseline() -> "ArchitectureConfig":
        """The unmodified GTX-480-like GPU."""
        return ArchitectureConfig(
            name="baseline",
            scalar_mode=ScalarMode.NONE,
            register_compression=False,
            half_register_compression=False,
            half_warp_scalar=False,
            divergent_scalar=False,
            dedicated_scalar_rf=False,
            extra_pipeline_cycles=0,
        )

    @staticmethod
    def alu_scalar() -> "ArchitectureConfig":
        """Prior scalar architecture [Gilani et al., HPCA 2013].

        Scalar execution of non-divergent arithmetic/logic instructions
        only, backed by a single-bank dedicated scalar register file.
        """
        return ArchitectureConfig(
            name="alu_scalar",
            scalar_mode=ScalarMode.ALU_ONLY,
            register_compression=False,
            half_register_compression=False,
            half_warp_scalar=False,
            divergent_scalar=False,
            dedicated_scalar_rf=True,
            extra_pipeline_cycles=0,
        )

    @staticmethod
    def gscalar_no_divergent() -> "ArchitectureConfig":
        """G-Scalar restricted to non-divergent instructions.

        Scalar execution on all three pipeline types (ALU, memory, SFU)
        plus half-warp scalar, but without the divergent-scalar
        extension.  This is the paper's "G-Scalar w/o divergent" series.
        """
        return ArchitectureConfig(
            name="gscalar_no_divergent",
            scalar_mode=ScalarMode.ALL_PIPELINES,
            register_compression=True,
            half_register_compression=True,
            half_warp_scalar=True,
            divergent_scalar=False,
            dedicated_scalar_rf=False,
            extra_pipeline_cycles=3,
        )

    @staticmethod
    def gscalar() -> "ArchitectureConfig":
        """Full G-Scalar: all pipelines, half-warp and divergent scalar."""
        return ArchitectureConfig(
            name="gscalar",
            scalar_mode=ScalarMode.ALL_PIPELINES,
            register_compression=True,
            half_register_compression=True,
            half_warp_scalar=True,
            divergent_scalar=True,
            dedicated_scalar_rf=False,
            extra_pipeline_cycles=3,
        )

    @staticmethod
    def static_compress() -> "ArchitectureConfig":
        """Statically-compressed register file (not in the paper).

        The compile-time counterpart to G-Scalar's dynamic detector
        (ROADMAP architecture-variants item (a), after
        Angerd/Sintorn/Stenström, arXiv:2006.05693): only registers the
        ``repro.analysis.static_.widths`` pass *proves* narrow are
        stored compressed.  Reads of proven-narrow registers fetch the
        compressed bytes and expand through the decompressor; writes
        never pay detection energy because the width is a compile-time
        fact.  No scalar execution, no sidecar metadata — the encoding
        is in the program text.  The 3-cycle pipeline stretch models the
        decompress stage, matching the dynamic variants.
        """
        return ArchitectureConfig(
            name="static_compress",
            scalar_mode=ScalarMode.NONE,
            register_compression=False,
            half_register_compression=False,
            half_warp_scalar=False,
            divergent_scalar=False,
            dedicated_scalar_rf=False,
            extra_pipeline_cycles=3,
            static_compression=True,
        )

    def replace(self, **changes: object) -> "ArchitectureConfig":
        """Return a copy with the given fields changed (for ablations)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


#: The four architectures evaluated in the paper's Figure 11, in the
#: order they appear there.
EVALUATED_ARCHITECTURES = (
    ArchitectureConfig.baseline(),
    ArchitectureConfig.alu_scalar(),
    ArchitectureConfig.gscalar_no_divergent(),
    ArchitectureConfig.gscalar(),
)

#: All modeled architectures: the paper's four plus the repo-grown
#: static-compression design point (kept out of the figure-faithful
#: :data:`EVALUATED_ARCHITECTURES` tuple so the paper's charts keep
#: their four series).
ALL_ARCHITECTURES = EVALUATED_ARCHITECTURES + (
    ArchitectureConfig.static_compress(),
)


def architecture_by_name(name: str) -> ArchitectureConfig:
    """Look up one of the modeled architectures by its name."""
    for arch in ALL_ARCHITECTURES:
        if arch.name == name:
            return arch
    known = ", ".join(a.name for a in ALL_ARCHITECTURES)
    raise ConfigError(f"unknown architecture {name!r}; known: {known}")
