"""The reproduction scorecard: every headline claim, graded in one run.

``python -m repro scorecard`` computes the paper's headline quantities
and grades each against its published value:

* ``MATCH``    — within the tight tolerance,
* ``CLOSE``    — within the loose tolerance (direction and magnitude
  clearly preserved),
* ``DEVIATES`` — outside both (listed with the known explanation in
  EXPERIMENTS.md).

This is the one-command answer to "did the reproduction work?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import extras, fig1, fig8, fig9, fig11, fig12, table3
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class Claim:
    """One graded headline quantity."""

    name: str
    paper: float
    measured: float
    tight: float  # relative tolerance for MATCH
    loose: float  # relative tolerance for CLOSE

    @property
    def relative_error(self) -> float:
        if self.paper == 0:
            return abs(self.measured)
        return abs(self.measured - self.paper) / abs(self.paper)

    @property
    def grade(self) -> str:
        if self.relative_error <= self.tight:
            return "MATCH"
        if self.relative_error <= self.loose:
            return "CLOSE"
        return "DEVIATES"


@dataclass
class Scorecard:
    claims: list[Claim]

    def count(self, grade: str) -> int:
        return sum(1 for claim in self.claims if claim.grade == grade)

    @property
    def all_directionally_correct(self) -> bool:
        return all(claim.grade != "DEVIATES" for claim in self.claims)


def compute(runner: ExperimentRunner) -> Scorecard:
    """Run every experiment the headline claims draw on."""
    data_fig1 = fig1.compute(runner)
    data_fig8 = fig8.compute(runner)
    data_fig9 = fig9.compute(runner)
    data_fig11 = fig11.compute(runner)
    data_fig12 = fig12.compute(runner)
    data_extras = extras.compute(runner)
    data_table3 = table3.compute()
    fig8_avg = data_fig8.average_fractions()

    claims = [
        Claim("G-Scalar IPC/W vs baseline", 1.24,
              data_fig11.average_gscalar_efficiency, 0.05, 0.15),
        Claim("ALU-scalar IPC/W vs baseline", 1.085,
              data_fig11.average_alu_scalar_efficiency, 0.05, 0.15),
        Claim("G-Scalar IPC (+3 cycles)", 0.983,
              data_fig11.average_gscalar_ipc, 0.01, 0.05),
        Claim("scalar-eligible, G-Scalar", 0.40,
              data_fig9.average_total, 0.10, 0.30),
        Claim("scalar-eligible, ALU-scalar", 0.22,
              data_fig9.average_alu_scalar, 0.15, 0.40),
        Claim("RF power, ours (norm.)", 0.46,
              data_fig12.average("ours"), 0.08, 0.25),
        Claim("RF power, scalar-RF (norm.)", 0.63,
              data_fig12.average("scalar_rf"), 0.08, 0.25),
        Claim("RF access share: scalar", 0.36, fig8_avg["scalar"], 0.10, 0.30),
        Claim("RF access share: 3-byte", 0.17, fig8_avg["3-byte"], 0.15, 0.50),
        Claim("divergent-scalar share of divergent", 0.45,
              data_fig1.average_scalar_share_of_divergent, 0.20, 0.50),
        Claim("decompress-move overhead", 0.02,
              data_extras.decompress_move_overhead, 0.25, 1.0),
        Claim("decompressor power (mW)", 15.86,
              data_table3.decompressor.power_mw, 0.08, 0.20),
        Claim("compressor power (mW)", 16.22,
              data_table3.compressor.power_mw, 0.08, 0.20),
        Claim("compressor area (um2)", 11624.0,
              data_table3.compressor.area_um2, 0.10, 0.25),
        Claim("per-SM codec power (W)", 0.32, data_table3.per_sm_power_w, 0.10, 0.25),
    ]
    return Scorecard(claims=claims)


def render(scorecard: Scorecard) -> str:
    rows = [
        (
            claim.name,
            f"{claim.paper:g}",
            f"{claim.measured:.3f}",
            f"{100 * claim.relative_error:.0f}%",
            claim.grade,
        )
        for claim in scorecard.claims
    ]
    body = render_table(
        ["claim", "paper", "measured", "error", "grade"],
        rows,
        title="Reproduction scorecard",
    )
    summary = (
        f"\n{scorecard.count('MATCH')} MATCH, {scorecard.count('CLOSE')} CLOSE, "
        f"{scorecard.count('DEVIATES')} DEVIATES "
        f"(of {len(scorecard.claims)} headline claims)"
    )
    return body + summary
