"""Property-based invariants of the power accounting.

Random classified-event streams must produce energies that respect the
physics the figures rest on: non-negative everywhere, G-Scalar's RF
energy never above baseline's for the same stream, and scalar execution
never *increasing* execution energy.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArchitectureConfig
from repro.power.energy import DEFAULT_ENERGY
from repro.power.rf_energy import RegisterFileEnergyModel
from repro.scalar.architectures import ArchitectureView
from repro.scalar.tracker import RegisterStateTracker
from repro.isa.opcodes import Opcode
from repro.simt.trace import TraceEvent

WARP = 32
FULL = (1 << WARP) - 1
ARCHES = {
    "baseline": ArchitectureConfig.baseline(),
    "gscalar": ArchitectureConfig.gscalar(),
}


@st.composite
def event_streams(draw):
    length = draw(st.integers(min_value=1, max_value=20))
    events = []
    for _ in range(length):
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        pattern = draw(st.sampled_from(["scalar", "prefix", "random"]))
        if pattern == "scalar":
            values = np.full(WARP, int(rng.integers(0, 2**32)), dtype=np.uint32)
        elif pattern == "prefix":
            values = (
                np.uint64(int(rng.integers(0, 2**16)) << 16)
                + rng.integers(0, 2**16, size=WARP, dtype=np.uint64)
            ).astype(np.uint32)
        else:
            values = rng.integers(0, 2**32, size=WARP, dtype=np.uint64).astype(
                np.uint32
            )
        mask = draw(st.sampled_from([FULL, FULL, 0x55555555, 0x0000FFFF]))
        events.append(
            TraceEvent(
                opcode=draw(st.sampled_from([Opcode.IADD, Opcode.FMUL, Opcode.SIN])),
                dst=draw(st.integers(min_value=0, max_value=4)),
                src_regs=(
                    draw(st.integers(min_value=0, max_value=4)),
                    draw(st.integers(min_value=0, max_value=4)),
                )[: 2 if draw(st.booleans()) else 1],
                active_mask=mask,
                block_id=0,
                dst_values=values,
            )
        )
    return events


def process_stream(stream, arch):
    tracker = RegisterStateTracker(5, WARP)
    view = ArchitectureView(arch, WARP)
    model = RegisterFileEnergyModel(arch, DEFAULT_ENERGY)
    rf_pj = 0.0
    exec_lanes = 0
    for event in stream:
        processed = view.process(tracker.classify(event))
        energy = model.total_energy(processed.rf_accesses)
        assert energy.rf_pj >= 0 and energy.crossbar_pj >= 0
        rf_pj += energy.rf_pj
        exec_lanes += processed.exec_lanes
    return rf_pj, exec_lanes


@settings(max_examples=80, deadline=None)
@given(stream=event_streams())
def test_gscalar_rf_energy_never_exceeds_baseline_when_convergent(stream):
    """On convergent streams compression can only reduce RF energy
    (sidecar accesses cost 5.2% but always displace >= 1 full array).

    Divergent streams are deliberately excluded: §3.3's last paragraph
    concedes that a divergent partial write under byte rotation lights
    the whole bank while the baseline word layout lights only the
    masked arrays — hypothesis found exactly that case when this test
    allowed divergent masks, confirming the model captures the paper's
    acknowledged cost.
    """
    convergent = [
        TraceEvent(
            opcode=event.opcode,
            dst=event.dst,
            src_regs=event.src_regs,
            active_mask=FULL,
            block_id=0,
            dst_values=event.dst_values,
        )
        for event in stream
    ]
    baseline_rf, _ = process_stream(convergent, ARCHES["baseline"])
    gscalar_rf, _ = process_stream(convergent, ARCHES["gscalar"])
    # Fully incompressible registers still pay the BVR/EBR sidecar on
    # every access (5.2% of a full access, §5.1) — the worst case the
    # paper's 54% average saving nets out.  Compression can never cost
    # more than that overhead on convergent streams.
    ceiling = baseline_rf * (1.0 + DEFAULT_ENERGY.sidecar_fraction) + 1e-9
    assert gscalar_rf <= ceiling


@settings(max_examples=40, deadline=None)
@given(stream=event_streams())
def test_divergent_partial_writes_may_cost_more_but_boundedly(stream):
    """The §3.3 divergent-write penalty is bounded: a partial write can
    cost at most the full bank (8 arrays + sidecar) per event."""
    gscalar_rf, _ = process_stream(stream, ARCHES["gscalar"])
    params = DEFAULT_ENERGY
    # Per event: <= 2 reads + 1 write + 1 decompress-move pair, each at
    # most a full access + sidecar, plus crossbar already excluded.
    ceiling = len(stream) * 5 * (params.rf_full_access_pj + params.sidecar_pj)
    assert gscalar_rf <= ceiling


@settings(max_examples=80, deadline=None)
@given(stream=event_streams())
def test_gscalar_never_uses_more_exec_lanes(stream):
    _, baseline_lanes = process_stream(stream, ARCHES["baseline"])
    _, gscalar_lanes = process_stream(stream, ARCHES["gscalar"])
    assert gscalar_lanes <= baseline_lanes
