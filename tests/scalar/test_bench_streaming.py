"""The streaming memory benchmark harness (``bench --streaming``)."""

import json

import pytest

from repro.scalar.bench import (
    DEFAULT_STREAMING_BENCHMARKS,
    _probe_main,
    _run_streaming_arm,
    main,
    measure_streaming,
)


class TestStreamingArms:
    def test_streamed_arm_shape(self):
        result = _run_streaming_arm("HS", "tiny", "streamed", 64)
        assert result["events"] > 0
        assert result["replicas"] >= 1
        assert result["peak_rss_bytes"] > 0
        assert result["peak_bytes_in_flight"] > 0

    def test_whole_arm_holds_more_in_flight(self):
        # Chunks far smaller than the trace: the streamed arm's live set
        # (one chunk through every stage) must stay below the whole
        # arm's (full trace + full classified + one processed set).
        streamed = _run_streaming_arm("HS", "tiny", "streamed", 4)
        whole = _run_streaming_arm("HS", "tiny", "whole", 4)
        assert whole["events"] == streamed["events"]
        assert whole["peak_bytes_in_flight"] > streamed["peak_bytes_in_flight"]


class TestProbeEntry:
    def test_probe_prints_one_json_line(self, capsys):
        rc = _probe_main(["HS", "tiny", "streamed", "64", "0"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert payload["completed"] is True
        assert payload["seconds"] > 0
        assert payload["peak_bytes_in_flight"] > 0


class TestMeasureStreaming:
    def test_tiny_scale_end_to_end(self):
        # No ceiling: both subprocess arms complete and the ratio is the
        # honest live-bytes ratio, which must favour streaming.
        result = measure_streaming("HS", "tiny", 4, 0)
        assert result["streamed"]["completed"]
        assert result["whole_trace"]["completed"]
        assert result["events"] == result["streamed"]["events"]
        assert result["events_per_second"] > 0
        assert result["speedup"] > 1.0


class TestCliWiring:
    def test_streaming_defaults(self):
        assert DEFAULT_STREAMING_BENCHMARKS == ("HS",)

    def test_streaming_conflicts_with_pipeline_mode(self):
        with pytest.raises(SystemExit):
            main(["--streaming", "--pipeline"])

    def test_streaming_conflicts_with_transport_mode(self):
        with pytest.raises(SystemExit):
            main(["--streaming", "--transport"])

    def test_chunk_events_requires_streaming(self):
        with pytest.raises(SystemExit):
            main(["--chunk-events", "64"])

    def test_bad_chunk_events_rejected(self):
        with pytest.raises(SystemExit):
            main(["--streaming", "--chunk-events", "0"])
