"""Register-file dynamic energy under the four Figure 12 techniques.

* ``baseline``   — conventional banked RF, full accesses.
* ``scalar_rf``  — scalar-only register file [Gilani et al., HPCA'13].
* ``wc_bdi``     — Warped-Compression [Lee et al., ISCA'15]: BDI-packed
  registers in the data arrays; the base shares the arrays with the
  deltas, so the same compression ratio activates one more array than
  our scheme, and the adder-based codec costs ~3x our comparator codec
  (the paper's 19-30% relative-cost numbers, inverted).
* ``ours``       — the byte-wise prefix compression of §3.

All four replay the same classified trace so the values seen are
identical; only the storage/access model differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compression.bdi import BdiMode, bdi_compress
from repro.config import ArchitectureConfig
from repro.errors import ConfigError
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.rf_energy import RegisterFileEnergyModel
from repro.regfile.layout import BankGeometry, BaselineLayout
from repro.scalar.architectures import process_classified
from repro.scalar.tracker import ClassifiedEvent

#: Figure 12 series names, in the paper's order.
RF_TECHNIQUES = ("baseline", "scalar_rf", "wc_bdi", "ours")

#: BDI codec energy relative to ours: our compressor consumes 19-30% of
#: Warped-Compression's adder array + packing network (§5.3).
_BDI_CODEC_FACTOR = 3.3


@dataclass
class RfEnergyResult:
    """RF dynamic energy of one technique over one trace."""

    technique: str
    rf_pj: float
    accesses: int

    def normalized_to(self, baseline: "RfEnergyResult") -> float:
        if baseline.rf_pj == 0:
            return 0.0
        return self.rf_pj / baseline.rf_pj


def _arch_for(technique: str) -> ArchitectureConfig:
    if technique == "baseline":
        return ArchitectureConfig.baseline()
    if technique == "scalar_rf":
        return ArchitectureConfig.alu_scalar()
    if technique == "ours":
        return ArchitectureConfig.gscalar()
    raise ConfigError(f"no architecture view for technique {technique!r}")


def rf_energy_for_technique(
    classified: list[list[ClassifiedEvent]],
    technique: str,
    warp_size: int,
    params: EnergyParams | None = None,
) -> RfEnergyResult:
    """RF dynamic energy of one technique over one classified trace."""
    params = params or DEFAULT_ENERGY
    if technique == "wc_bdi":
        return _wc_bdi_energy(classified, warp_size, params)
    if technique not in RF_TECHNIQUES:
        raise ConfigError(
            f"unknown technique {technique!r}; known: {', '.join(RF_TECHNIQUES)}"
        )
    arch = _arch_for(technique)
    model = RegisterFileEnergyModel(arch, params)
    total = 0.0
    accesses = 0
    for warp_events in process_classified(classified, arch, warp_size):
        for item in warp_events:
            total += model.total_energy(item.rf_accesses).rf_pj
            accesses += len(item.rf_accesses)
    return RfEnergyResult(technique=technique, rf_pj=total, accesses=accesses)


def _wc_bdi_energy(
    classified: list[list[ClassifiedEvent]],
    warp_size: int,
    params: EnergyParams,
) -> RfEnergyResult:
    """Replay with per-register BDI state (Warped-Compression model)."""
    geometry = BankGeometry(warp_size=warp_size)
    baseline_layout = BaselineLayout(geometry)
    array_bytes = geometry.array_bits // 8
    full_mask = (1 << warp_size) - 1

    total = 0.0
    accesses = 0
    for warp_events in classified:
        modes: dict[int, BdiMode] = {}
        for item in warp_events:
            event = item.event

            for register in event.src_regs:
                mode = modes.get(register, BdiMode.UNCOMPRESSED)
                total += _bdi_access_pj(mode, warp_size, array_bytes, params)
                accesses += 1

            if event.dst is not None and event.dst_values is not None:
                divergent = event.active_mask != full_mask
                if divergent:
                    # Warped-Compression also stores divergent writes
                    # uncompressed (RMW avoidance).
                    previous = modes.get(event.dst, BdiMode.UNCOMPRESSED)
                    if previous is not BdiMode.UNCOMPRESSED:
                        # Decompress-move equivalent: full read + write.
                        total += _bdi_access_pj(
                            previous, warp_size, array_bytes, params
                        )
                        total += params.rf_full_access_pj
                        accesses += 2
                    arrays = baseline_layout.arrays_for_partial_write(
                        event.active_mask
                    )
                    total += arrays * params.rf_array_pj
                    modes[event.dst] = BdiMode.UNCOMPRESSED
                else:
                    compressed = bdi_compress(event.dst_values)
                    modes[event.dst] = compressed.mode
                    total += _bdi_access_pj(
                        compressed.mode, warp_size, array_bytes, params
                    )
                accesses += 1
    return RfEnergyResult(technique="wc_bdi", rf_pj=total, accesses=accesses)


def _bdi_access_pj(
    mode: BdiMode, warp_size: int, array_bytes: int, params: EnergyParams
) -> float:
    """Energy of touching a BDI-form register in the data arrays.

    The base and packed deltas live in the data arrays, so the bytes
    moved include the 4-byte base; arrays activate at 16-byte
    granularity.
    """
    if mode is BdiMode.UNCOMPRESSED:
        payload_bytes = warp_size * 4
    else:
        payload_bytes = 4 + warp_size * mode.delta_bytes
    arrays = math.ceil(payload_bytes / array_bytes)
    total_arrays = (warp_size * 4) // array_bytes
    arrays = min(arrays, total_arrays)
    # Mode tag lookup (2 bits/register) — comparable to our EBR access.
    return arrays * params.rf_array_pj + 0.5 * params.sidecar_pj
