"""Event-energy parameters, calibrated to GPUWattch's breakdown.

The paper evaluates power with GPUWattch [2]; we reproduce its
*proportions* with a per-event energy model:

* execution units consume ~24% and the register file ~16% of chip power
  on compute-intensive workloads [2],
* a special-function op costs 3-24x an ALU op per lane [2],
* one BVR/EBR sidecar access costs 5.2% of a full 1024-bit register
  access (paper §5.1),
* the synthesized compressor/decompressor consume 16.22/15.86 mW at
  1.4 GHz (paper Table 3), i.e. ~11.6/11.3 pJ per operation.

All energies are in picojoules per event; all figures in the paper are
normalized ratios, so only the proportions matter — the defaults place
a compute-intensive benchmark near the paper's reported ~100 W chip
power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa.opcodes import SFU_ENERGY_FACTOR, Opcode


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ) and static power (W) for one SM."""

    # Execution units.
    alu_lane_pj: float = 26.0
    mem_lane_pj: float = 18.0  # address generation + LSU per lane
    # Front end: fetch, decode, schedule, operand-collector control.
    fds_per_instruction_pj: float = 260.0
    # Register file.
    rf_full_access_pj: float = 190.0  # one 1024-bit bank access
    sidecar_fraction: float = 0.052  # BVR/EBR/D/FS array vs full access
    scalar_rf_fraction: float = 0.045  # prior-work dedicated scalar RF
    # Crossbar between banks and operand collectors.
    crossbar_per_byte_pj: float = 0.45
    # Compression hardware (Table 3: mW at 1.4 GHz -> pJ per op).
    compressor_op_pj: float = 16.22 / 1.4
    decompressor_op_pj: float = 15.86 / 1.4
    # Memory subsystem (per warp-level access after coalescing).
    l1_access_pj: float = 520.0
    l2_access_pj: float = 1400.0
    dram_access_pj: float = 9200.0
    shared_access_pj: float = 220.0
    # Static (leakage + clock tree) power per SM, plus the SM's share of
    # the uncore (NoC, L2, memory controllers).
    sm_static_w: float = 1.3
    uncore_share_static_w: float = 0.55

    def __post_init__(self) -> None:
        for name in (
            "alu_lane_pj",
            "mem_lane_pj",
            "fds_per_instruction_pj",
            "rf_full_access_pj",
            "crossbar_per_byte_pj",
            "compressor_op_pj",
            "decompressor_op_pj",
            "l1_access_pj",
            "l2_access_pj",
            "dram_access_pj",
            "shared_access_pj",
            "sm_static_w",
            "uncore_share_static_w",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        for name in ("sidecar_fraction", "scalar_rf_fraction"):
            if not 0 < getattr(self, name) < 1:
                raise ConfigError(f"{name} must be in (0, 1)")

    @property
    def rf_array_pj(self) -> float:
        """Energy of activating one of the bank's eight data arrays."""
        return self.rf_full_access_pj / 8.0

    @property
    def sidecar_pj(self) -> float:
        """Energy of one BVR/EBR/D/FS sidecar access."""
        return self.rf_full_access_pj * self.sidecar_fraction

    @property
    def scalar_rf_pj(self) -> float:
        """Energy of one dedicated-scalar-RF access (prior work)."""
        return self.rf_full_access_pj * self.scalar_rf_fraction

    def exec_lane_pj(self, opcode: Opcode) -> float:
        """Per-lane execution energy of one opcode."""
        factor = SFU_ENERGY_FACTOR.get(opcode)
        if factor is not None:
            return self.alu_lane_pj * factor
        if opcode in (
            Opcode.LD_GLOBAL,
            Opcode.ST_GLOBAL,
            Opcode.LD_SHARED,
            Opcode.ST_SHARED,
        ):
            return self.mem_lane_pj
        return self.alu_lane_pj


#: Default parameters used throughout the evaluation.
DEFAULT_ENERGY = EnergyParams()
