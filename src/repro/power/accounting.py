"""Walk a processed trace + timing result and produce a power report.

One :class:`PowerAccountant` pairs an architecture with energy
parameters; :meth:`account` consumes the per-event execution decisions
(lanes active, register-file access shapes, compressor activity) and
the timing result (cycles, memory traffic) and emits a
:class:`~repro.power.report.PowerReport`.
"""

from __future__ import annotations

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa.opcodes import OpCategory
from repro.obs.instrument import record_power_breakdown, record_rf_accesses
from repro.obs.telemetry import get_telemetry
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.report import EnergyBreakdown, PowerReport
from repro.power.rf_energy import RegisterFileEnergyModel
from repro.regfile.layout import BankGeometry
from repro.scalar.architectures import ProcessedEvent
from repro.timing.sm import TimingResult


class PowerAccountant:
    """Energy accounting for one architecture."""

    def __init__(
        self,
        arch: ArchitectureConfig,
        params: EnergyParams | None = None,
        config: GpuConfig | None = None,
        geometry: BankGeometry | None = None,
    ):
        self.arch = arch
        self.params = params or DEFAULT_ENERGY
        self.config = config or GpuConfig()
        if geometry is None and self.config.warp_size != 32:
            # Wider warps widen the bank: one 128-bit array per byte
            # position per 16 lanes, as in §3.2's memory-compiler result.
            geometry = BankGeometry(
                warp_size=self.config.warp_size,
                arrays_per_bank=self.config.warp_size // 4,
                array_bits=128,
            )
        self._rf_model = RegisterFileEnergyModel(arch, self.params, geometry)

    # ------------------------------------------------------------------
    def account(
        self,
        processed: list[list[ProcessedEvent]],
        timing: TimingResult,
    ) -> PowerReport:
        """Produce the power report for one benchmark run."""
        params = self.params
        breakdown = EnergyBreakdown()
        telemetry = get_telemetry()
        observe = telemetry.enabled
        num_banks = self.config.register_file_banks

        for warp_index, warp_events in enumerate(processed):
            for item in warp_events:
                if observe:
                    record_rf_accesses(
                        telemetry, item.rf_accesses, warp_index, num_banks
                    )
                event = item.classified.event
                category = event.category

                lane_pj = params.exec_lane_pj(event.opcode)
                exec_pj = item.exec_lanes * lane_pj
                if category is OpCategory.SFU:
                    breakdown.exec_sfu_pj += exec_pj
                elif category is OpCategory.MEM:
                    breakdown.exec_mem_pj += exec_pj
                else:
                    breakdown.exec_alu_pj += exec_pj

                rf_energy = self._rf_model.total_energy(item.rf_accesses)
                breakdown.rf_pj += rf_energy.rf_pj
                breakdown.crossbar_pj += rf_energy.crossbar_pj

                breakdown.compression_pj += (
                    item.compressor_ops * params.compressor_op_pj
                    + item.decompressor_ops * params.decompressor_op_pj
                )

                # Front-end energy for the instruction plus any inserted
                # decompress-move/spill instructions.
                breakdown.fds_pj += (1 + item.extra_instructions) * (
                    params.fds_per_instruction_pj
                )
                # Inserted moves also execute (full-width register move).
                breakdown.exec_alu_pj += (
                    item.extra_instructions
                    * event.active_lane_count()
                    * params.alu_lane_pj
                )

        counts = timing.memory_counts
        breakdown.memory_pj += counts.l1_accesses * params.l1_access_pj
        breakdown.memory_pj += counts.l2_accesses * params.l2_access_pj
        breakdown.memory_pj += counts.dram_accesses * params.dram_access_pj
        breakdown.memory_pj += counts.shared_accesses * params.shared_access_pj

        if observe:
            record_power_breakdown(telemetry, self.arch.name, breakdown)

        static_w = params.sm_static_w + params.uncore_share_static_w
        return PowerReport(
            arch_name=self.arch.name,
            cycles=timing.cycles,
            instructions=timing.useful_instructions,
            frequency_ghz=self.config.sm_frequency_ghz,
            static_w=static_w,
            breakdown=breakdown,
        )
