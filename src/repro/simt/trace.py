"""Dynamic-trace containers produced by the functional executor.

A :class:`TraceEvent` is one dynamic instruction executed by one warp:
opcode, register numbers, the active mask it ran under, and — for
instructions that write a register — a snapshot of the destination
register's full contents *after* the write.  That snapshot is what the
compression / scalar-eligibility machinery consumes, so a trace is
self-contained: no re-execution is ever needed downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.isa.opcodes import OpCategory, Opcode, category_of


@dataclass(slots=True)
class TraceEvent:
    """One dynamic instruction from one warp.

    ``dst_values`` is the destination register's full warp-wide contents
    after the write (``None`` for stores and branches).  ``active_mask``
    is an integer bitmask, lane 0 in bit 0.  ``varying_special_src`` is
    True when a non-register source varies per lane (``%tid``/``%lane``),
    which disqualifies the operand from being scalar.
    """

    opcode: Opcode
    dst: int | None
    src_regs: tuple[int, ...]
    active_mask: int
    block_id: int
    dst_values: np.ndarray | None = None
    addresses: np.ndarray | None = None
    varying_special_src: bool = False
    scalar_nonreg_srcs: int = 0

    @property
    def category(self) -> OpCategory:
        return category_of(self.opcode)

    def is_divergent(self, warp_size: int) -> bool:
        """True when the event ran under a non-full active mask."""
        return self.active_mask != (1 << warp_size) - 1

    def active_lane_count(self) -> int:
        return bin(self.active_mask).count("1")


@dataclass
class WarpTrace:
    """All events of one warp, in program order."""

    warp_id: int
    warp_size: int
    events: list[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        if event.active_mask >> self.warp_size:
            raise TraceError(
                f"event mask {event.active_mask:#x} wider than warp size "
                f"{self.warp_size}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclass
class KernelTrace:
    """The full dynamic trace of one kernel launch."""

    kernel_name: str
    warp_size: int
    warps: list[WarpTrace] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(len(w) for w in self.warps)

    def all_events(self):
        """Iterate events warp-major (warp 0's stream, then warp 1's...)."""
        for warp in self.warps:
            yield from warp.events

    def category_histogram(self) -> dict[OpCategory, int]:
        """Dynamic instruction count per pipeline category."""
        histogram: dict[OpCategory, int] = {c: 0 for c in OpCategory}
        for event in self.all_events():
            histogram[event.category] += 1
        return histogram

    def divergent_fraction(self) -> float:
        """Fraction of dynamic instructions with a non-full active mask."""
        total = self.total_instructions
        if total == 0:
            return 0.0
        divergent = sum(
            1 for e in self.all_events() if e.is_divergent(self.warp_size)
        )
        return divergent / total
