"""SIMT execution substrate: grids, warps, divergence, functional traces."""

from repro.simt.executor import WarpExecutor, run_kernel
from repro.simt.grid import (
    LaunchConfig,
    WarpIdentity,
    enumerate_warps,
    int_to_mask,
    mask_to_int,
    popcount,
)
from repro.simt.memory_state import MemoryImage
from repro.simt.serialize import load_trace, save_trace
from repro.simt.trace import KernelTrace, TraceEvent, WarpTrace

__all__ = [
    "KernelTrace",
    "LaunchConfig",
    "MemoryImage",
    "TraceEvent",
    "WarpExecutor",
    "WarpIdentity",
    "WarpTrace",
    "enumerate_warps",
    "int_to_mask",
    "load_trace",
    "mask_to_int",
    "popcount",
    "save_trace",
    "run_kernel",
]
