"""Shared helpers for the figure/table regeneration benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper,
prints the same rows/series the paper reports, and asserts the
qualitative shape (who wins, roughly by how much, where crossovers
fall).  Absolute numbers differ from the paper — the substrate is a
Python simulator, not the authors' GPGPU-Sim + GPUWattch stack — but
the shape must hold.

Heavy computations run through ``benchmark.pedantic(rounds=1)`` so the
harness reports wall-clock per figure without re-running multi-second
simulations dozens of times.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner

#: Scale used by the figure benches.  "small" (16 warps/benchmark) keeps
#: a full regeneration within seconds per figure while preserving every
#: shape the assertions check; pass --paper-scale for the full runs.
BENCH_SCALE = "small"


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run figure benches at the full 'default' workload scale",
    )
    parser.addoption(
        "--bench-cache-dir",
        default=None,
        metavar="DIR",
        help="persist traces/results in DIR so repeated bench runs skip "
        "functional re-execution (fingerprint-checked, safe across edits)",
    )
    parser.addoption(
        "--bench-jobs",
        type=int,
        default=1,
        metavar="N",
        help="prefetch the benchmark matrix with N worker processes "
        "before benching (requires --bench-cache-dir for N > 1)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    return "default" if request.config.getoption("--paper-scale") else BENCH_SCALE


@pytest.fixture(scope="session")
def shared_runner(request, bench_scale) -> ExperimentRunner:
    """One runner shared by all benches: traces execute exactly once.

    With ``--bench-cache-dir`` they execute exactly once *ever*: the
    runner persists fingerprinted traces and stage results on disk, and
    ``--bench-jobs N`` warms that cache across N processes up front.
    """
    cache_dir = request.config.getoption("--bench-cache-dir")
    jobs = request.config.getoption("--bench-jobs")
    runner = ExperimentRunner(scale=bench_scale, cache_dir=cache_dir)
    if jobs > 1:
        # Warp-64 traces feed bench_fig10/bench_ablations; the four
        # paper architectures feed bench_fig11 and the ablations.
        runner.prefetch(jobs=jobs, warp_sizes=(32, 64))
    return runner


def run_once(benchmark, func, *args):
    """Measure one invocation of an expensive figure computation."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
