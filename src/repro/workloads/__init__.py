"""17 Rodinia/Parboil proxy workloads (Table 2)."""

from repro.workloads.registry import (
    SCALES,
    BuiltWorkload,
    ScaleConfig,
    WorkloadSpec,
    all_workloads,
    build_workload,
    workload_by_name,
)

__all__ = [
    "SCALES",
    "BuiltWorkload",
    "ScaleConfig",
    "WorkloadSpec",
    "all_workloads",
    "build_workload",
    "workload_by_name",
]
