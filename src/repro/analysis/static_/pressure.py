"""Register pressure and encoding-width reporting.

The paper's Table 3 argues G-Scalar's cost in sidecar state: per
architectural register, 4 enc bits, a D bit, an FS flag and a 32-bit
BVR (§3.2/§4.2).  That bill scales with the register file's occupancy,
so this pass reports the kernel's worst-case *simultaneous* liveness
per block (the pressure an allocator actually pays) alongside the raw
register count, and enforces the per-thread budget (64 on Fermi-class
hardware) as a hard ``GS-E003`` error.
"""

from __future__ import annotations

from repro.isa.kernel import Branch, Kernel

from repro.analysis.static_.diagnostics import Diagnostic
from repro.analysis.static_.framework import AnalysisContext, LintPass

#: Sidecar bits per register per warp: 4 enc + 1 D + 1 FS + 32 BVR.
SIDECAR_BITS_PER_REGISTER = 38


def block_pressure(kernel: Kernel, liveness) -> dict[int, int]:
    """Maximum simultaneously-live register count inside each block."""
    pressure: dict[int, int] = {}
    for block in kernel.blocks:
        live = set(liveness.live_out[block.block_id])
        terminator = block.terminator
        if isinstance(terminator, Branch):
            live.add(terminator.cond.index)
        peak = len(live)
        for inst in reversed(block.instructions):
            if inst.dst is not None:
                live.discard(inst.dst.index)
            for src in inst.source_registers:
                live.add(src.index)
            peak = max(peak, len(live))
        peak = max(peak, len(liveness.live_in[block.block_id]))
        pressure[block.block_id] = peak
    return pressure


class RegisterPressurePass(LintPass):
    """Budget enforcement (GS-E003) + pressure report (GS-I202)."""

    name = "register-pressure"

    def __init__(self, max_registers: int = 64):
        self.max_registers = max_registers

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        kernel = ctx.kernel
        findings: list[Diagnostic] = []
        if kernel.num_registers > self.max_registers:
            findings.append(
                Diagnostic(
                    rule="GS-E003",
                    kernel=kernel.name,
                    message=(
                        f"kernel uses {kernel.num_registers} registers, "
                        f"exceeding the per-thread budget of {self.max_registers}"
                    ),
                )
            )
        pressure = block_pressure(kernel, ctx.liveness)
        worst_block = max(pressure, key=pressure.get) if pressure else 0
        peak = pressure.get(worst_block, 0)
        encoding_bits = max(1, (max(kernel.num_registers, 1) - 1).bit_length())
        sidecar_bits = kernel.num_registers * SIDECAR_BITS_PER_REGISTER
        findings.append(
            Diagnostic(
                rule="GS-I202",
                kernel=kernel.name,
                message=(
                    f"{kernel.num_registers} registers, peak pressure {peak} "
                    f"(block {worst_block}); operand encoding {encoding_bits} "
                    f"bits, sidecar state {sidecar_bits} bits/warp"
                ),
                block_id=worst_block,
            )
        )
        return findings
