"""Tests for table regenerators and the text renderer."""

from repro.config import GpuConfig
from repro.experiments import table1, table2, table3
from repro.experiments.tables import percent, render_table


class TestRenderer:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [(1, 2.5), (30, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text

    def test_percent(self):
        assert percent(0.5) == "50.0%"


class TestTable1:
    def test_matches_paper_values(self):
        rows = dict(table1.compute())
        assert rows["# of SMs"] == "15"
        assert rows["Registers per SM"] == "128KB"
        assert rows["SM Frequency"] == "1.4GHz"
        assert rows["Warp Size"] == "32"
        assert rows["L2$ Size"] == "768KB"
        assert rows["Threads per SM"] == "1536"

    def test_render(self):
        assert "Table 1" in table1.render()

    def test_custom_config(self):
        rows = dict(table1.compute(GpuConfig(num_sms=4)))
        assert rows["# of SMs"] == "4"


class TestTable2:
    def test_all_benchmarks_listed(self):
        rows = table2.compute()
        assert len(rows) == 17
        assert ("Rodinia", "backprop", "BP") in rows
        assert ("Parboil", "lbm", "LBM") in rows

    def test_render(self):
        assert "Table 2" in table2.render()


class TestTable3:
    def test_estimates_close_to_paper(self):
        data = table3.compute()
        assert abs(data.compressor.area_um2 - 11624) / 11624 < 0.15
        assert abs(data.decompressor.power_mw - 15.86) / 15.86 < 0.10
        assert data.per_sm_power_w < 0.4
        assert data.per_sm_area_mm2 < 0.2

    def test_render_contains_both_blocks(self):
        text = table3.render()
        assert "compressor" in text and "decompressor" in text
        assert "paper" in text
