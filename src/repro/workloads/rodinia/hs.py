"""``hotspot`` (HS) proxy.

Signature reproduced: a 1-D slice of the thermal stencil — per-thread
loads of neighbouring temperatures (narrow-range floats sharing their
top bytes), a boundary branch that makes a large fraction of warps
diverge, and inside the divergent paths chains operating on the shared
physical constants (ambient temperature, Rc step) that become
divergent-scalar instructions (~17% of total, §5.2).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 202


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the HS proxy at the given scale."""
    b = KernelBuilder("hotspot")
    tid = b.tid()
    ambient = load_broadcast(b, PARAMS_BASE)  # scalar constants
    r_step = load_broadcast(b, PARAMS_BASE + 4)
    cap = load_broadcast(b, PARAMS_BASE + 8)
    flag = load_thread_flag(b, tid)
    is_boundary = b.setne(flag, 0)

    temp = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    left = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 4))
    right = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 8))

    with b.for_range(0, scale.inner_iterations) as _step:
        # Vector stencil body on similar float values.
        laplacian = b.fadd(left, right)
        laplacian = b.fsub(laplacian, b.fmul(temp, b.fimm(2.0)))
        delta = b.fmul(laplacian, r_step)
        with b.if_(is_boundary) as branch:
            # Boundary path: clamp toward the ambient constant.  The
            # whole chain operates on scalar registers, so every one of
            # these is a divergent-scalar instruction in mixed warps.
            drift = b.fmul(ambient, r_step)
            correction = b.fadd(drift, cap)
            damped = b.fmul(correction, b.fimm(0.5))
            limited = b.fmin(damped, cap)
            temp = b.fadd(temp, limited, dst=temp)
            with branch.else_():
                # Interior path: vector stencil propagation.
                temp = b.fadd(temp, delta, dst=temp)
                left = b.fadd(left, delta, dst=left)
                right = b.fsub(right, delta, dst=right)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), temp)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads + 2, 330.0, 2.5, _SEED)
    )
    memory.bind_array(
        PARAMS_BASE, np.array([300.0, 0.065, 0.5], dtype=np.float32)
    )
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.72, _SEED + 1),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="thermal stencil with boundary divergence over scalar constants",
    )
