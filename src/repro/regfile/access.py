"""Register-file access records.

The scalar tracker emits one :class:`RegisterAccess` per operand read
and per destination write of every dynamic instruction; the power model
turns them into energy using the layout math.  ``kind`` distinguishes
the physically different access shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessKind(enum.Enum):
    """Physical shape of one register-file access."""

    FULL_READ = "full_read"  # all data arrays (uncompressed register)
    FULL_WRITE = "full_write"
    COMPRESSED_READ = "compressed_read"  # subset of arrays + sidecar
    COMPRESSED_WRITE = "compressed_write"
    SCALAR_READ = "scalar_read"  # BVR/EBR sidecar only
    SCALAR_WRITE = "scalar_write"
    PARTIAL_WRITE = "partial_write"  # divergent write, mask-dependent arrays
    SCALAR_RF_READ = "scalar_rf_read"  # prior-work dedicated scalar RF
    SCALAR_RF_WRITE = "scalar_rf_write"


#: Stable integer coding of :class:`AccessKind` shared by the columnar
#: processed form (:class:`repro.scalar.columns.ProcessedColumns`) and
#: the vectorized energy model.  Keyed by the value string so reordering
#: the enum members can never silently re-map stored ids.
ACCESS_KIND_TO_ID = {
    kind: index
    for index, kind in enumerate(sorted(AccessKind, key=lambda k: k.value))
}
ID_TO_ACCESS_KIND = {index: kind for kind, index in ACCESS_KIND_TO_ID.items()}

#: Kinds that write their register (integer-id domain of
#: :attr:`RegisterAccess.is_write`, as a frozenset of ids).
WRITE_KIND_IDS = frozenset(
    ACCESS_KIND_TO_ID[kind]
    for kind in (
        AccessKind.FULL_WRITE,
        AccessKind.COMPRESSED_WRITE,
        AccessKind.SCALAR_WRITE,
        AccessKind.PARTIAL_WRITE,
        AccessKind.SCALAR_RF_WRITE,
    )
)


@dataclass(frozen=True)
class RegisterAccess:
    """One access: its shape plus everything energy depends on.

    ``enc`` is the register's prefix length at access time (0 when not
    applicable), ``active_mask`` the instruction's mask (used for
    baseline partial writes), ``sidecar`` whether the BVR/EBR array was
    also touched.
    """

    kind: AccessKind
    register: int
    enc: int = 0
    enc_lo: int = 0
    enc_hi: int = 0
    half_compressed: bool = False
    active_mask: int = 0
    sidecar: bool = False

    @property
    def is_write(self) -> bool:
        return self.kind in (
            AccessKind.FULL_WRITE,
            AccessKind.COMPRESSED_WRITE,
            AccessKind.SCALAR_WRITE,
            AccessKind.PARTIAL_WRITE,
            AccessKind.SCALAR_RF_WRITE,
        )
