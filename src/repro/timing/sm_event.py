"""Event-driven SM timing engine — the fast twin of :mod:`repro.timing.sm`.

:class:`EventSmSimulator` consumes the same per-warp
:class:`~repro.timing.ops.TimingOp` streams (including
:func:`~repro.timing.ops.build_timing_ops_columns` output) as the
cycle-level :class:`~repro.timing.sm.SmSimulator` and produces a
**bit-identical** :class:`~repro.timing.sm.TimingResult` — cycles,
instruction counts, memory counters, per-scheduler issue counts, bank
conflict counters and per-scheduler stall-cause attributions all match
exactly (the differential suite pins this on all 17 workloads × 5
architectures).  What differs is how time advances:

* the cycle model *rescans* every warp slot, collector and pipeline
  port once per cycle — O(resident warps) of scoreboard checks per
  simulated cycle, which is why it dominated pipeline wall-clock;
* this engine is *event-driven*: warp readiness is updated only when an
  event can change it (a write-back releasing a register, a branch
  resolving, a barrier releasing its CTA, an issue advancing the PC, a
  warp activating), write-back completions and barrier wake-ups live in
  time-ordered heaps, pipeline-port free-times are kept as per-port
  busy-until timestamps, and operand-collector bank conflicts are
  resolved per-epoch over only the collectors that still owe bank
  reads.  Idle stretches are skipped wholesale to the next write-back
  or port-release event, exactly where the reference model skips them.

Per-cycle work is therefore proportional to the events of that cycle
rather than to machine size, which is where the pipeline speedup comes
from.  The reference model stays available as ``--sm-engine=cycle`` and
is the differential oracle; this engine is the default
(``--sm-engine=event``), mirroring the ``--classifier`` /
``--arch-engine`` engine-pair pattern.

Semantics replicated from the reference (same event order per cycle):
write-backs, then operand collection (one request per bank per cycle,
earlier collectors first, the single scalar-RF bank serialized exactly
as in §4.1), then dispatch of bank-complete collectors to free pipeline
ports, then issue (one warp per scheduler, GTO or LRR), then
whole-CTA (GigaThread-style) retirement/activation.  G-Scalar's
+3-cycle stretch enters through ``extra_latency``, exactly as in the
reference.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.config import GpuConfig, SchedulerPolicy
from repro.errors import TimingError
from repro.isa.opcodes import OpCategory
from repro.timing.memory import MemoryModel
from repro.timing.ops import SCALAR_RF_BANK, TimingOp
from repro.timing.scheduler import partition_slots
from repro.timing.sm import (
    _BLOCKED_ON_BARRIER,
    _BLOCKED_ON_BRANCH,
    STALL_BANK_CONFLICT,
    STALL_BARRIER,
    STALL_BRANCH_SHADOW,
    STALL_CAUSES,
    STALL_COLLECTORS_FULL,
    STALL_SCOREBOARD,
    STALL_STREAM_EXHAUSTED,
    SmSimulator,
    StallBreakdown,
    TimingResult,
)

#: SM timing engines selectable via ``--sm-engine``.  ``event`` is this
#: module's event-driven engine; ``cycle`` is the per-cycle reference
#: model in :mod:`repro.timing.sm`.
SM_ENGINE_CHOICES = ("event", "cycle")
DEFAULT_SM_ENGINE = "event"

# Pipeline-port groups (index into the per-group port lists).
_PORT_ALU = 0
_PORT_MEM = 1
_PORT_SFU = 2

#: OpCategory.name per port group, for flight-recorder labels (CTRL is
#: distinguished by the compiled row's _IS_CTRL flag).
_PORT_CATEGORY_NAMES = ("ALU", "MEM", "SFU")

# Compiled-op tuple layout (one tuple per TimingOp; plain tuples index
# faster than dataclass attribute access in the hot loop).
_DST = 0
_SRC_REGS = 1
_SRC_BANKS = 2
_DISPATCH = 3
_PORT = 4
_DELTA = 5  # dispatch + write-back latency + extra latency; -1 for MEM
_IS_CTRL = 6
_IS_BARRIER = 7
_INSERTED = 8
_MEM_SEGMENTS = 9
_IS_SHARED = 10
_IS_STORE = 11


def create_sm_simulator(
    engine: str,
    warp_ops: list[list[TimingOp]],
    config: GpuConfig,
    extra_latency: int = 0,
    memory: MemoryModel | None = None,
    warps_per_cta: int | None = None,
    recorder=None,
):
    """Instantiate the selected SM timing engine over one op stream.

    ``recorder`` (a :class:`repro.obs.timeline.FlightRecorder`) opts the
    run into per-warp lifecycle recording; both engines accept it.
    """
    if engine == "event":
        cls = EventSmSimulator
    elif engine == "cycle":
        cls = SmSimulator
    else:
        raise TimingError(
            f"unknown SM engine {engine!r}; known: {', '.join(SM_ENGINE_CHOICES)}"
        )
    return cls(
        warp_ops,
        config,
        extra_latency=extra_latency,
        memory=memory,
        warps_per_cta=warps_per_cta,
        recorder=recorder,
    )


class EventSmSimulator:
    """Event-driven simulation of one SM running fixed warps to completion.

    Drop-in constructor/run() compatible with
    :class:`~repro.timing.sm.SmSimulator`; see the module docstring for
    how the two engines relate.
    """

    def __init__(
        self,
        warp_ops: list[list[TimingOp]],
        config: GpuConfig,
        extra_latency: int = 0,
        memory: MemoryModel | None = None,
        warps_per_cta: int | None = None,
        recorder=None,
    ):
        if extra_latency < 0:
            raise TimingError(f"extra_latency must be >= 0, got {extra_latency}")
        if warps_per_cta is not None and warps_per_cta < 1:
            raise TimingError(f"warps_per_cta must be >= 1, got {warps_per_cta}")
        self.warp_ops = warp_ops
        self.config = config
        self.extra_latency = extra_latency
        self.recorder = recorder
        self.warps_per_cta = warps_per_cta or 1
        self.memory = memory or MemoryModel(
            l1_size_bytes=config.l1_cache_bytes,
            l2_share_bytes=max(8 * 1024, config.l2_cache_bytes // config.num_sms),
        )
        self.num_warps = len(warp_ops)
        self.max_resident = min(config.max_warps_per_sm, self.num_warps)
        if self.num_warps and min(self.warps_per_cta, self.num_warps) > self.max_resident:
            raise TimingError(
                f"warps_per_cta={self.warps_per_cta} exceeds the SM's "
                f"{self.max_resident}-warp residency; one CTA can never "
                "be resident at once"
            )

    # ------------------------------------------------------------------
    def _compile(self) -> list[list[tuple]]:
        """Pre-resolve every op's static timing facts into flat tuples."""
        config = self.config
        extra = self.extra_latency
        compiled: list[list[tuple]] = []
        for ops in self.warp_ops:
            rows = []
            for op in ops:
                category = op.category
                if category is OpCategory.MEM:
                    port = _PORT_MEM
                    delta = -1  # latency comes from the memory model
                elif category in (OpCategory.ALU, OpCategory.CTRL):
                    port = _PORT_ALU
                    if category is OpCategory.CTRL:
                        latency = config.ctrl_latency
                    elif op.long_latency:
                        latency = config.long_alu_latency
                    else:
                        latency = config.alu_latency
                    delta = op.dispatch_cycles + latency + extra
                else:
                    port = _PORT_SFU
                    delta = op.dispatch_cycles + config.sfu_latency + extra
                rows.append(
                    (
                        op.dst,
                        op.src_regs,
                        op.src_banks,
                        op.dispatch_cycles,
                        port,
                        delta,
                        category is OpCategory.CTRL,
                        op.is_barrier,
                        op.inserted,
                        op.mem_segments,
                        op.is_shared_mem,
                        op.is_store,
                    )
                )
            compiled.append(rows)
        return compiled

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000) -> TimingResult:
        config = self.config
        num_warps = self.num_warps
        if num_warps == 0:
            return TimingResult(cycles=0, instructions=0, memory_counts=self.memory.counts)

        compiled = self._compile()
        oplen = [len(rows) for rows in compiled]
        warps_per_cta = self.warps_per_cta
        extra = self.extra_latency
        memory = self.memory
        access_global = memory.access_global
        access_shared = memory.access_shared

        num_schedulers = config.schedulers_per_sm
        policy_gto = config.scheduler_policy is SchedulerPolicy.GTO
        if not policy_gto and config.scheduler_policy is not SchedulerPolicy.LRR:
            raise TimingError(f"unknown scheduler policy {config.scheduler_policy}")
        max_resident = self.max_resident
        max_collectors = config.operand_collectors_per_sm

        pcs = [0] * num_warps
        scoreboards: list[set[int]] = [set() for _ in range(num_warps)]
        blocked_until = [0] * num_warps
        in_flight = [0] * num_warps
        remaining = num_warps

        slot_warp = [-1] * max_resident  # slot -> warp (-1 = empty)
        warp_slot = [-1] * num_warps  # warp -> slot (-1 = not resident)
        free_slots = list(range(max_resident))  # min-heap

        # Per-scheduler incremental ready sets over slots (slot s belongs
        # to scheduler s % num_schedulers, the same static parity
        # partition the reference builds via partition_warps).
        ready_sets: list[set[int]] = [set() for _ in range(num_schedulers)]
        partition_sizes = [
            len(range(i, max_resident, num_schedulers)) for i in range(num_schedulers)
        ]
        last_issued: list[int | None] = [None] * num_schedulers
        rr_pos = [0] * num_schedulers

        # Collector entries are [warp, pending_banks, compiled_row] in
        # issue order; ``draining`` counts entries still owing bank reads.
        collectors: list[list] = []
        draining = 0
        alu_ports = [0] * config.alu_pipelines
        mem_ports = [0] * config.mem_pipelines
        sfu_ports = [0] * config.sfu_pipelines
        port_groups = (alu_ports, mem_ports, sfu_ports)

        writebacks: list[tuple[int, int, int, int | None, bool]] = []
        wakeups: list[tuple[int, int]] = []  # (cycle, warp) barrier releases
        sequence = 0
        barrier_arrived: dict[int, set[int]] = {}
        retirable: set[int] = set()

        issued_counts = [0] * num_schedulers
        scalar_conflicts = 0
        bank_conflict_cycles = 0
        instructions = 0
        useful_instructions = 0
        recorder = self.recorder
        # Per-scheduler stall-cause accumulators (STALL_* indexed);
        # ``cycle_causes`` remembers the current cycle's attribution so
        # skipped-ahead dead cycles replay it — state is frozen across
        # a skip, so every dead cycle stalls for the same reasons.
        stall_counts = [[0] * len(STALL_CAUSES) for _ in range(num_schedulers)]
        cycle_causes = [STALL_STREAM_EXHAUSTED] * num_schedulers

        def classify_stall(scheduler_index: int) -> int:
            """Attribute one idle scheduler-cycle to its strongest cause.

            Identical semantics (and precedence order) to the reference
            model's classifier: scan the scheduler's slot partition and
            pick the lowest STALL_* index present — scoreboard over
            branch shadow over barrier over stream exhaustion.
            """
            cause = STALL_STREAM_EXHAUSTED
            for slot in partition_slots(scheduler_index, max_resident, num_schedulers):
                warp = slot_warp[slot]
                if warp < 0 or pcs[warp] >= oplen[warp]:
                    continue
                until = blocked_until[warp]
                if until == _BLOCKED_ON_BRANCH:
                    if STALL_BRANCH_SHADOW < cause:
                        cause = STALL_BRANCH_SHADOW
                elif until > cycle:
                    if STALL_BARRIER < cause:
                        cause = STALL_BARRIER
                else:
                    return STALL_SCOREBOARD
            return cause

        def sb_ready(warp: int) -> bool:
            """Scoreboard/stream readiness of a warp's next op."""
            pc = pcs[warp]
            if pc >= oplen[warp]:
                return False
            pending = scoreboards[warp]
            if not pending:
                return True
            row = compiled[warp][pc]
            dst = row[_DST]
            if dst is not None and dst in pending:
                return False
            for register in row[_SRC_REGS]:
                if register in pending:
                    return False
            return True

        def activate_ctas() -> None:
            """GigaThread-style activation: whole CTAs, lowest slots first."""
            nonlocal next_warp_to_activate
            while next_warp_to_activate < num_warps:
                cta_size = min(warps_per_cta, num_warps - next_warp_to_activate)
                if cta_size > len(free_slots):
                    break
                for _ in range(cta_size):
                    slot = heappop(free_slots)
                    warp = next_warp_to_activate
                    slot_warp[slot] = warp
                    warp_slot[warp] = slot
                    if recorder is not None:
                        recorder.warp_activate(cycle, warp, slot)
                    if oplen[warp] == 0:
                        retirable.add(warp)
                    else:
                        ready_sets[slot % num_schedulers].add(slot)
                    next_warp_to_activate += 1

        def arrive_at_barrier(warp: int, cycle: int) -> None:
            """Barrier arrival; release the whole CTA when complete.

            Same semantics as the reference: a CTA-mate that already
            retired all its ops counts as arrived.  Whole-CTA activation
            guarantees every unfinished mate is resident, so the wait
            always terminates.
            """
            cta = warp // warps_per_cta
            arrived = barrier_arrived.setdefault(cta, set())
            arrived.add(warp)
            blocked_until[warp] = _BLOCKED_ON_BARRIER
            if recorder is not None:
                recorder.barrier_arrive(cycle, warp)
            lo = cta * warps_per_cta
            for mate in range(lo, min(lo + warps_per_cta, num_warps)):
                if pcs[mate] < oplen[mate] and mate not in arrived:
                    return
            release = cycle + 1
            for mate in arrived:
                blocked_until[mate] = release
                if warp_slot[mate] >= 0:
                    heappush(wakeups, (release, mate))
                if recorder is not None:
                    recorder.barrier_release(release, mate)
            arrived.clear()

        next_warp_to_activate = 0
        cycle = 0
        activate_ctas()

        while remaining > 0:
            if cycle > max_cycles:
                raise TimingError(
                    f"SM simulation exceeded {max_cycles} cycles; "
                    "likely a deadlock in the timing model"
                )
            progressed = False

            # 1. Write-backs scheduled for this cycle; each one is the
            # only event that can newly unblock its warp's next op.
            while writebacks and writebacks[0][0] <= cycle:
                _, _, warp, dst, is_ctrl = heappop(writebacks)
                if dst is not None:
                    scoreboards[warp].discard(dst)
                in_flight[warp] -= 1
                if is_ctrl and blocked_until[warp] == _BLOCKED_ON_BRANCH:
                    blocked_until[warp] = cycle
                if recorder is not None:
                    recorder.writeback(cycle, warp, dst)
                progressed = True
                slot = warp_slot[warp]
                if slot >= 0:
                    if pcs[warp] >= oplen[warp]:
                        if in_flight[warp] == 0:
                            retirable.add(warp)
                    elif blocked_until[warp] <= cycle and sb_ready(warp):
                        ready_sets[slot % num_schedulers].add(slot)

            # 1b. Barrier wake-ups that have come due.
            while wakeups and wakeups[0][0] <= cycle:
                _, warp = heappop(wakeups)
                slot = warp_slot[warp]
                if slot >= 0 and blocked_until[warp] <= cycle and sb_ready(warp):
                    ready_sets[slot % num_schedulers].add(slot)

            # 2. Operand collection epoch: one request per bank per
            # cycle, earlier collectors first, the scalar-RF bank
            # serialized exactly as in the reference (§4.1).
            had_conflict = False
            if draining:
                served_banks: set[int] = set()
                still_draining = 0
                for collector in collectors:
                    pending_banks = collector[1]
                    if not pending_banks:
                        continue
                    still_pending = []
                    for bank in pending_banks:
                        if bank not in served_banks:
                            served_banks.add(bank)
                            progressed = True
                        else:
                            still_pending.append(bank)
                            had_conflict = True
                            if bank == SCALAR_RF_BANK:
                                scalar_conflicts += 1
                    collector[1] = still_pending
                    if still_pending:
                        still_draining += 1
                draining = still_draining
                if had_conflict:
                    bank_conflict_cycles += 1

            # 3. Dispatch bank-complete collectors to free pipeline ports.
            if len(collectors) > draining:
                for collector in [c for c in collectors if not c[1]]:
                    row = collector[2]
                    ports = port_groups[row[_PORT]]
                    port_index = -1
                    for index, busy in enumerate(ports):
                        if busy <= cycle:
                            port_index = index
                            break
                    if port_index < 0:
                        continue
                    dispatch = row[_DISPATCH]
                    ports[port_index] = cycle + dispatch
                    delta = row[_DELTA]
                    if delta < 0:
                        if row[_IS_SHARED]:
                            latency = access_shared()
                        else:
                            latency = access_global(row[_MEM_SEGMENTS], row[_IS_STORE])
                        delta = dispatch + latency + extra
                    warp = collector[0]
                    heappush(
                        writebacks,
                        (cycle + delta, sequence, warp, row[_DST], row[_IS_CTRL]),
                    )
                    sequence += 1
                    collectors.remove(collector)
                    instructions += 1
                    if not row[_INSERTED]:
                        useful_instructions += 1
                    progressed = True

            # 4. Issue: each scheduler picks at most one ready slot.
            # Collector back-pressure attribution mirrors the
            # reference: a full pool in a cycle whose bank arbitration
            # serialized goes to the bank-conflict bucket.
            full_cause = STALL_BANK_CONFLICT if had_conflict else STALL_COLLECTORS_FULL
            if len(collectors) >= max_collectors and remaining > 0:
                for scheduler_index in range(num_schedulers):
                    stall_counts[scheduler_index][full_cause] += 1
                    cycle_causes[scheduler_index] = full_cause
            if len(collectors) < max_collectors:
                for scheduler_index in range(num_schedulers):
                    if len(collectors) >= max_collectors:
                        stall_counts[scheduler_index][full_cause] += 1
                        cycle_causes[scheduler_index] = full_cause
                        continue
                    ready = ready_sets[scheduler_index]
                    if not ready:
                        cause = classify_stall(scheduler_index)
                        stall_counts[scheduler_index][cause] += 1
                        cycle_causes[scheduler_index] = cause
                        continue
                    if policy_gto:
                        last = last_issued[scheduler_index]
                        slot = last if last in ready else min(ready)
                        last_issued[scheduler_index] = slot
                    else:  # LRR: first ready slot in rotation order
                        rotation = rr_pos[scheduler_index]
                        size = partition_sizes[scheduler_index]
                        best_rel = size
                        slot = -1
                        for candidate in ready:
                            position = (candidate - scheduler_index) // num_schedulers
                            relative = (position - rotation) % size
                            if relative < best_rel:
                                best_rel = relative
                                slot = candidate
                        rr_pos[scheduler_index] = (
                            (slot - scheduler_index) // num_schedulers + 1
                        ) % size
                    ready.discard(slot)
                    warp = slot_warp[slot]
                    row = compiled[warp][pcs[warp]]
                    pcs[warp] += 1
                    issued_counts[scheduler_index] += 1
                    progressed = True
                    if row[_IS_BARRIER]:
                        instructions += 1
                        useful_instructions += 1
                        if recorder is not None:
                            recorder.issue(
                                cycle, warp, scheduler_index, "BAR", "barrier", ()
                            )
                        arrive_at_barrier(warp, cycle)
                        if pcs[warp] >= oplen[warp] and in_flight[warp] == 0:
                            retirable.add(warp)
                        continue
                    dst = row[_DST]
                    if dst is not None:
                        scoreboards[warp].add(dst)
                    in_flight[warp] += 1
                    if row[_IS_CTRL]:
                        blocked_until[warp] = _BLOCKED_ON_BRANCH
                        ready_next = False
                    else:
                        ready_next = sb_ready(warp)
                    banks = row[_SRC_BANKS]
                    collectors.append([warp, list(banks), row])
                    if banks:
                        draining += 1
                    if ready_next:
                        ready.add(slot)
                    if recorder is not None:
                        if row[_IS_CTRL]:
                            hint, hint_regs = "branch", ()
                            category = "CTRL"
                        else:
                            category = _PORT_CATEGORY_NAMES[row[_PORT]]
                            if pcs[warp] >= oplen[warp]:
                                hint, hint_regs = "drain", ()
                            elif not ready_next:
                                nxt = compiled[warp][pcs[warp]]
                                pending = scoreboards[warp]
                                blocking = {
                                    r for r in nxt[_SRC_REGS] if r in pending
                                }
                                next_dst = nxt[_DST]
                                if next_dst is not None and next_dst in pending:
                                    blocking.add(next_dst)
                                hint, hint_regs = "scoreboard", tuple(sorted(blocking))
                            else:
                                hint, hint_regs = "scheduler", ()
                        recorder.issue(
                            cycle, warp, scheduler_index, category, hint, hint_regs
                        )

            # 5. Retire finished warps; activate pending CTAs whole.
            if retirable:
                batch = list(retirable)
                retirable.clear()
                for warp in batch:
                    slot = warp_slot[warp]
                    warp_slot[warp] = -1
                    slot_warp[slot] = -1
                    heappush(free_slots, slot)
                    if policy_gto and last_issued[slot % num_schedulers] == slot:
                        last_issued[slot % num_schedulers] = None
                    remaining -= 1
                    if recorder is not None:
                        recorder.warp_retire(cycle, warp)
                    progressed = True
                activate_ctas()

            if remaining <= 0:
                cycle += 1
                break

            # 6. Skip ahead over dead cycles — the same jump rule as the
            # reference: the next write-back completion, or the next
            # port release when a bank-complete collector is waiting.
            if progressed:
                cycle += 1
            else:
                next_events = []
                if writebacks:
                    next_events.append(writebacks[0][0])
                if len(collectors) > draining:
                    busy_ports = [
                        t
                        for t in alu_ports + mem_ports + sfu_ports
                        if t > cycle
                    ]
                    if busy_ports:
                        next_events.append(min(busy_ports))
                if not next_events:
                    raise TimingError(
                        f"timing deadlock: no progress at cycle {cycle} "
                        f"({remaining} warps remaining)"
                    )
                new_cycle = max(cycle + 1, min(next_events))
                # No event fires inside the skipped stretch, so every
                # dead cycle stalls for exactly the reasons this cycle
                # did — replay the recorded per-scheduler attribution.
                skipped = new_cycle - cycle - 1
                if skipped:
                    for scheduler_index in range(num_schedulers):
                        stall_counts[scheduler_index][
                            cycle_causes[scheduler_index]
                        ] += skipped
                cycle = new_cycle

        if recorder is not None:
            recorder.finalize(cycle)
        return TimingResult(
            cycles=cycle,
            instructions=instructions,
            memory_counts=self.memory.counts,
            useful_instructions=useful_instructions,
            issued_per_scheduler=issued_counts,
            scalar_bank_conflicts=scalar_conflicts,
            bank_conflict_cycles=bank_conflict_cycles,
            stalls=StallBreakdown(*(sum(c) for c in zip(*stall_counts))),
            stalls_per_scheduler=[StallBreakdown(*c) for c in stall_counts],
        )
