"""Unit tests for opcode metadata."""

import pytest

from repro.isa.opcodes import (
    LONG_LATENCY_ALU,
    SFU_ENERGY_FACTOR,
    OpCategory,
    Opcode,
    category_of,
    has_destination,
    is_control,
    is_load,
    is_sfu,
    is_store,
    source_arity,
)


class TestCategories:
    def test_alu_opcodes(self):
        for op in (Opcode.IADD, Opcode.FMUL, Opcode.SETLT, Opcode.SELP, Opcode.MOV):
            assert category_of(op) is OpCategory.ALU

    def test_sfu_opcodes(self):
        for op in (Opcode.SIN, Opcode.COS, Opcode.EX2, Opcode.RSQRT, Opcode.FDIV):
            assert category_of(op) is OpCategory.SFU
            assert is_sfu(op)

    def test_mem_opcodes(self):
        for op in (Opcode.LD_GLOBAL, Opcode.ST_SHARED):
            assert category_of(op) is OpCategory.MEM

    def test_ctrl_opcodes(self):
        for op in (Opcode.BRA, Opcode.JMP, Opcode.EXIT):
            assert category_of(op) is OpCategory.CTRL
            assert is_control(op)

    def test_decompress_mov_is_alu(self):
        assert category_of(Opcode.DECOMPRESS_MOV) is OpCategory.ALU


class TestLoadStore:
    def test_loads(self):
        assert is_load(Opcode.LD_GLOBAL)
        assert is_load(Opcode.LD_SHARED)
        assert not is_load(Opcode.ST_GLOBAL)

    def test_stores(self):
        assert is_store(Opcode.ST_GLOBAL)
        assert is_store(Opcode.ST_SHARED)
        assert not is_store(Opcode.LD_SHARED)

    def test_loads_have_destination_stores_do_not(self):
        assert has_destination(Opcode.LD_GLOBAL)
        assert not has_destination(Opcode.ST_GLOBAL)


class TestArity:
    @pytest.mark.parametrize(
        "opcode,arity",
        [
            (Opcode.IADD, 2),
            (Opcode.IMAD, 3),
            (Opcode.FFMA, 3),
            (Opcode.SELP, 3),
            (Opcode.NOT, 1),
            (Opcode.MOV, 1),
            (Opcode.SIN, 1),
            (Opcode.LD_GLOBAL, 1),
            (Opcode.ST_GLOBAL, 2),
            (Opcode.BRA, 1),
            (Opcode.JMP, 0),
            (Opcode.EXIT, 0),
        ],
    )
    def test_source_arity(self, opcode, arity):
        assert source_arity(opcode) == arity

    def test_control_has_no_destination(self):
        for op in (Opcode.BRA, Opcode.JMP, Opcode.EXIT):
            assert not has_destination(op)


class TestEnergyMetadata:
    def test_sfu_factors_cover_paper_range(self):
        factors = list(SFU_ENERGY_FACTOR.values())
        assert min(factors) >= 3.0
        assert max(factors) <= 24.0
        assert max(factors) == 24.0  # sin/cos hit the top of the range

    def test_every_sfu_opcode_has_a_factor(self):
        for op in Opcode:
            if is_sfu(op):
                assert op in SFU_ENERGY_FACTOR

    def test_long_latency_set(self):
        assert Opcode.IDIV in LONG_LATENCY_ALU
        assert Opcode.IREM in LONG_LATENCY_ALU
        assert Opcode.IADD not in LONG_LATENCY_ALU
