"""Dead-write detection over block liveness (§3.3's dead values).

A write is dead when the produced value can never be observed: no later
read in the same block before a redefinition, and the register is not
live out of the block.  These are exactly the "registers [that] will
store dead values" the paper's §3.3 compiler-assisted technique hunts —
a decompress-move (and on real silicon, the write itself) spent on them
is wasted energy.  Emitted as ``GS-W101`` warnings.
"""

from __future__ import annotations

from repro.isa.kernel import Branch

from repro.analysis.static_.diagnostics import Diagnostic
from repro.analysis.static_.framework import AnalysisContext, LintPass


class DeadWritePass(LintPass):
    """Flags writes whose value is never live afterwards (GS-W101)."""

    name = "dead-write"

    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        kernel = ctx.kernel
        liveness = ctx.liveness
        findings: list[Diagnostic] = []
        for block in kernel.blocks:
            # Registers live just after each instruction, walked backward
            # from the block's live-out plus the terminator's own read.
            live = set(liveness.live_out[block.block_id])
            terminator = block.terminator
            if isinstance(terminator, Branch):
                live.add(terminator.cond.index)
            dead_sites: list[tuple[int, int]] = []
            for index in range(len(block.instructions) - 1, -1, -1):
                inst = block.instructions[index]
                if inst.dst is not None:
                    if inst.dst.index not in live:
                        dead_sites.append((index, inst.dst.index))
                    live.discard(inst.dst.index)
                for src in inst.source_registers:
                    live.add(src.index)
            for index, register in reversed(dead_sites):
                opcode = block.instructions[index].opcode.value
                findings.append(
                    Diagnostic(
                        rule="GS-W101",
                        kernel=kernel.name,
                        message=(
                            f"{opcode} writes r{register} but the value is "
                            "never read before being overwritten or dropped"
                        ),
                        block_id=block.block_id,
                        inst_index=index,
                    )
                )
        return findings
