"""Compiler-assisted techniques the paper sketches but does not build.

Two static analyses over the kernel CFG:

* :class:`MoveElisionAnalysis` — §3.3: "a compiler-assisted technique
  can analyze the lifetime of registers at compile time and identify
  which registers will store dead values", eliding the decompress-move
  a divergent write to a compressed register otherwise needs.  A move
  is elidable when the destination's stale content can never be
  observed: the register is not live into the write's branch-region
  reconvergence point *and* not live into the sibling arm.  (Reads
  inside the writer's own region run under sub-masks of the write, so
  they only see lanes the write produced.)

* :class:`StaticScalarization` — the §6 comparison point [Lee et al.,
  CGO 2013]: forward uniform-value dataflow that marks instructions
  provably scalar at compile time.  It cannot see value similarity that
  "originates from executing load instructions" with varying addresses,
  nor scalarize instructions inside potentially-divergent regions —
  which is why the paper observes it capturing ~24% fewer scalar
  instructions than G-Scalar's dynamic detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.instructions import Imm, Reg, SpecialReg
from repro.isa.kernel import EXIT_NODE, Branch, Kernel
from repro.isa.liveness import block_liveness, branch_regions
from repro.isa.opcodes import OpCategory, category_of
from repro.simt.trace import KernelTrace


class MoveElisionAnalysis:
    """Static dead-value analysis for decompress-move elision (§3.3)."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._liveness = block_liveness(kernel)
        self._regions = branch_regions(kernel)
        self._arm_membership: dict[tuple[int, int], bool] = {}

    def _reachable_within_region(self, start: int, stop: int, target: int) -> bool:
        """Is ``target`` reachable from ``start`` without passing ``stop``?"""
        key = (start, target)
        if key in self._arm_membership:
            return self._arm_membership[key]
        seen: set[int] = set()
        stack = [start]
        found = False
        while stack:
            node = stack.pop()
            if node in seen or node == stop or node == EXIT_NODE:
                continue
            seen.add(node)
            if node == target:
                found = True
                break
            stack.extend(self.kernel.blocks[node].successors())
        self._arm_membership[key] = found
        return found

    def _live_in(self, block: int) -> set[int]:
        if block == EXIT_NODE:
            return set()
        return self._liveness.live_in[block]

    def move_elidable(self, block_id: int, register: int) -> bool:
        """May a divergent write to ``register`` in ``block_id`` skip the
        decompress-move?  True only when provably safe."""
        region = self._regions.get(block_id)
        if region is None:
            # Divergent execution outside any conditional region (e.g. a
            # ragged tail warp): keep the move.
            return False
        if register in self._live_in(region.reconvergence):
            return False  # stale lanes may be read after reconvergence
        # The sibling arm executes after this arm under the SIMT stack;
        # its reads would observe the corrupted storage format.
        in_taken = self._reachable_within_region(
            region.taken_head, region.reconvergence, block_id
        )
        sibling = region.not_taken_head if in_taken else region.taken_head
        if register in self._live_in(sibling):
            return False
        return True


class ValueKind(enum.Enum):
    """Uniformity lattice for the static scalarization dataflow."""

    UNKNOWN = "unknown"  # bottom: not yet defined along this path
    SCALAR = "scalar"  # provably one value across the warp
    VARYING = "varying"  # top: may differ per lane

    def meet(self, other: "ValueKind") -> "ValueKind":
        if self is ValueKind.UNKNOWN:
            return other
        if other is ValueKind.UNKNOWN:
            return self
        if self is other:
            return self
        return ValueKind.VARYING


#: Special registers that hold one value per warp.
_UNIFORM_SPECIALS = frozenset(
    {SpecialReg.CTAID, SpecialReg.WARP_IN_CTA, SpecialReg.NTID}
)


@dataclass
class StaticScalarizationResult:
    """Per-static-instruction verdicts plus summary counts."""

    scalar_sites: dict[int, list[bool]]  # block -> per-instruction flag
    divergent_region_blocks: set[int]

    def static_scalar_count(self, block_id: int) -> int:
        return sum(self.scalar_sites.get(block_id, []))


class StaticScalarization:
    """Forward uniform-value dataflow (the Lee et al. comparison)."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.result = self._analyze()

    # ------------------------------------------------------------------
    def _analyze(self) -> StaticScalarizationResult:
        kernel = self.kernel
        num_registers = kernel.num_registers
        preds = kernel.predecessors()

        # Per-block out-state, iterated to fixpoint.
        out_state: dict[int, list[ValueKind]] = {
            b.block_id: [ValueKind.UNKNOWN] * num_registers for b in kernel.blocks
        }
        changed = True
        while changed:
            changed = False
            for block in kernel.blocks:
                state = self._entry_state(block.block_id, preds, out_state, num_registers)
                for inst in block.instructions:
                    kind = self._transfer(inst, state)
                    if inst.dst is not None:
                        state[inst.dst.index] = kind
                if state != out_state[block.block_id]:
                    out_state[block.block_id] = state
                    changed = True

        # A region is potentially divergent when its branch condition is
        # not provably scalar; instructions inside cannot be statically
        # scalarized (the compiler cannot reason about runtime masks).
        divergent_blocks: set[int] = set()
        regions = branch_regions(kernel)
        for block_id, region in regions.items():
            branch_block = kernel.blocks[region.branch_block]
            terminator = branch_block.terminator
            assert isinstance(terminator, Branch)
            cond_kind = out_state[region.branch_block][terminator.cond.index]
            if cond_kind is not ValueKind.SCALAR:
                divergent_blocks.add(block_id)

        scalar_sites: dict[int, list[bool]] = {}
        for block in kernel.blocks:
            state = self._entry_state(block.block_id, preds, out_state, num_registers)
            flags: list[bool] = []
            inside_divergent = block.block_id in divergent_blocks
            for inst in block.instructions:
                kind = self._transfer(inst, state)
                eligible = (
                    not inside_divergent
                    and kind is ValueKind.SCALAR
                    and category_of(inst.opcode) is not OpCategory.CTRL
                )
                # Stores have no destination; they are scalar when both
                # operands are provably scalar.
                if inst.dst is None:
                    eligible = not inside_divergent and all(
                        self._operand_kind(s, state) is ValueKind.SCALAR
                        for s in inst.srcs
                    )
                flags.append(eligible)
                if inst.dst is not None:
                    state[inst.dst.index] = kind
            scalar_sites[block.block_id] = flags
        return StaticScalarizationResult(
            scalar_sites=scalar_sites, divergent_region_blocks=divergent_blocks
        )

    def _entry_state(self, block_id, preds, out_state, num_registers):
        merged = [ValueKind.UNKNOWN] * num_registers
        for pred in preds[block_id]:
            pred_state = out_state[pred]
            merged = [a.meet(b) for a, b in zip(merged, pred_state)]
        return merged

    def _operand_kind(self, operand, state) -> ValueKind:
        if isinstance(operand, Imm):
            return ValueKind.SCALAR
        if isinstance(operand, SpecialReg):
            return (
                ValueKind.SCALAR
                if operand in _UNIFORM_SPECIALS
                else ValueKind.VARYING
            )
        assert isinstance(operand, Reg)
        kind = state[operand.index]
        return ValueKind.VARYING if kind is ValueKind.UNKNOWN else kind

    def _transfer(self, inst, state) -> ValueKind:
        kinds = [self._operand_kind(s, state) for s in inst.srcs]
        if any(k is ValueKind.VARYING for k in kinds):
            return ValueKind.VARYING
        # All-scalar sources: loads of a provably-uniform address load
        # one location, hence a uniform value; everything else computes
        # the same function of the same inputs in every lane.
        return ValueKind.SCALAR

    # ------------------------------------------------------------------
    def dynamic_static_scalar_fraction(self, trace: KernelTrace) -> float:
        """Fraction of *dynamic* instructions at statically-scalar sites.

        Weights each block's static verdicts by how often the block
        executed in the trace, giving the number directly comparable to
        G-Scalar's dynamic eligibility (Figure 9 / §6's 24% claim).
        """
        body_events: dict[int, int] = {}
        for event in trace.all_events():
            if event.category is not OpCategory.CTRL:
                body_events[event.block_id] = body_events.get(event.block_id, 0) + 1
        total = trace.total_instructions
        if total == 0:
            return 0.0
        static_scalar = 0.0
        for block in self.kernel.blocks:
            instructions = len(block.instructions)
            if instructions == 0:
                continue
            executions = body_events.get(block.block_id, 0) / instructions
            static_scalar += executions * self.result.static_scalar_count(
                block.block_id
            )
        return static_scalar / total
