"""CLI surface of the telemetry subsystem.

Covers ``repro profile``, the global ``--trace-out``/``--metrics-out``
flags on the experiment command, ``repro lint --metrics-out``, and the
``--stats-json`` compatibility pin for the RunnerStats migration.
"""

import json

from repro.cli import main
from repro.obs.telemetry import NULL_TELEMETRY, get_telemetry

#: Metric families the acceptance criteria require in profile output.
_REQUIRED_FAMILIES = (
    "repro_scalar_class_total",
    "repro_enc_prefix_total",
    "repro_regfile_bank_activations_total",
    "repro_energy_pj_total",
)


class TestProfileCommand:
    def test_profile_writes_trace_metrics_and_summary(self, tmp_path, capsys):
        trace_path = tmp_path / "bp.trace.json"
        metrics_path = tmp_path / "bp.prom"
        events_path = tmp_path / "bp.jsonl"
        code = main(
            [
                "profile", "bp", "--scale", "tiny",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
                "--events-out", str(events_path),
            ]
        )
        assert code == 0

        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert events
        assert {"X", "M"} <= {event["ph"] for event in events}
        assert all(
            {"name", "ph", "pid", "tid"} <= set(event) for event in events
        )

        metrics = metrics_path.read_text()
        for family in _REQUIRED_FAMILIES:
            assert family in metrics, family

        lines = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert lines and all(line["type"] == "span" for line in lines)

        out = capsys.readouterr().out
        assert "Counters" in out
        assert "Spans" in out

    def test_profile_single_arch(self, tmp_path, capsys):
        metrics_path = tmp_path / "bp.prom"
        code = main(
            [
                "profile", "bp", "--scale", "tiny", "--arch", "gscalar",
                "--trace-out", str(tmp_path / "t.json"),
                "--metrics-out", str(metrics_path),
                "--no-summary",
            ]
        )
        assert code == 0
        metrics = metrics_path.read_text()
        assert 'arch="gscalar"' in metrics
        assert 'arch="baseline"' not in metrics

    def test_profile_default_output_names(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["profile", "bp", "--scale", "tiny", "--no-summary"])
        assert code == 0
        assert (tmp_path / "profile_bp.trace.json").is_file()
        assert (tmp_path / "profile_bp.prom").is_file()

    def test_profile_restores_null_registry(self, tmp_path, capsys):
        main(
            [
                "profile", "bp", "--scale", "tiny", "--no-summary",
                "--trace-out", str(tmp_path / "t.json"),
                "--metrics-out", str(tmp_path / "m.prom"),
            ]
        )
        assert get_telemetry() is NULL_TELEMETRY


class TestExperimentTelemetryFlags:
    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "fig1.trace.json"
        metrics_path = tmp_path / "fig1.prom"
        code = main(
            [
                "fig1", "--scale", "tiny",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        assert json.loads(trace_path.read_text())["traceEvents"]
        metrics = metrics_path.read_text()
        assert "repro_scalar_class_total" in metrics
        assert "repro_runner_events_total" in metrics
        assert get_telemetry() is NULL_TELEMETRY

    def test_disabled_by_default(self, tmp_path, capsys):
        assert main(["table1"]) == 0
        assert get_telemetry() is NULL_TELEMETRY

    def test_stage_spans_carry_benchmark_labels(self, tmp_path, capsys):
        trace_path = tmp_path / "fig1.trace.json"
        main(["fig1", "--scale", "tiny", "--trace-out", str(trace_path)])
        stage_events = [
            event
            for event in json.loads(trace_path.read_text())["traceEvents"]
            if event.get("cat") == "stage"
        ]
        assert stage_events
        assert any("benchmark" in event["args"] for event in stage_events)


class TestLintMetrics:
    def test_lint_metrics_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "lint.prom"
        code = main(["lint", "BP", "--metrics-out", str(metrics_path)])
        assert code == 0
        metrics = metrics_path.read_text()
        assert "repro_lint_kernels_total 1" in metrics
        assert "repro_lint_diagnostics_total" in metrics

    def test_lint_json_shape_unchanged_with_metrics(self, tmp_path, capsys):
        code = main(
            ["lint", "BP", "--json", "--metrics-out", str(tmp_path / "l.prom")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1


class TestStatsJsonCompatibility:
    def test_stats_json_key_set_pinned(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        code = main(
            ["fig1", "--scale", "tiny", "--stats-json", str(stats_path)]
        )
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert set(stats) == {
            "experiment",
            "scale",
            "jobs",
            "cache_dir",
            "experiment_seconds",
            "counters",
            "stage_seconds",
            "gauges",
        }
        assert stats["counters"]["trace_executions"] == 17
        # Every snapshot stamps the process high-water RSS, streamed or not.
        assert stats["gauges"]["peak_rss_bytes"] > 0
        assert all(
            isinstance(value, (int, float))
            for value in stats["stage_seconds"].values()
        )
