"""GPUWattch-calibrated event-energy power model."""

from repro.power.accounting import PowerAccountant
from repro.power.circuit import (
    PAPER_TABLE3,
    CircuitEstimate,
    compressor_estimate,
    decompressor_estimate,
    per_sm_overhead,
)
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.report import EnergyBreakdown, PowerReport
from repro.power.rf_energy import AccessEnergy, RegisterFileEnergyModel
from repro.power.rf_techniques import (
    RF_TECHNIQUES,
    RfEnergyResult,
    rf_energy_for_technique,
)

__all__ = [
    "DEFAULT_ENERGY",
    "PAPER_TABLE3",
    "RF_TECHNIQUES",
    "AccessEnergy",
    "CircuitEstimate",
    "EnergyBreakdown",
    "EnergyParams",
    "PowerAccountant",
    "PowerReport",
    "RegisterFileEnergyModel",
    "RfEnergyResult",
    "compressor_estimate",
    "decompressor_estimate",
    "per_sm_overhead",
    "rf_energy_for_technique",
]
