"""Tests for the Figure 12 RF-technique comparison."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.isa import KernelBuilder
from repro.power.rf_techniques import RF_TECHNIQUES, rf_energy_for_technique
from repro.scalar.tracker import classify_trace
from repro.simt import MemoryImage

from tests.conftest import run_one_warp


def classified_for(kernel):
    trace = run_one_warp(kernel, MemoryImage())
    return classify_trace(trace, kernel.num_registers), trace.warp_size


def similar_value_kernel():
    """Registers hold shared-prefix values: compressible by both schemes."""
    b = KernelBuilder("similar")
    tid = b.tid()
    x = b.iadd(tid, 0x40300000)  # 2-3 byte prefix across lanes
    y = b.iadd(x, 1)
    z = b.iadd(y, x)
    b.st_global(b.imad(tid, 4, 0x100), z)
    return b.finish()


class TestOrdering:
    def test_all_techniques_cheaper_than_baseline(self, scalar_heavy_kernel):
        classified, warp_size = classified_for(scalar_heavy_kernel)
        baseline = rf_energy_for_technique(classified, "baseline", warp_size)
        for technique in ("scalar_rf", "wc_bdi", "ours"):
            result = rf_energy_for_technique(classified, technique, warp_size)
            assert result.rf_pj < baseline.rf_pj

    def test_ours_beats_scalar_rf_on_partial_similarity(self):
        classified, warp_size = classified_for(similar_value_kernel())
        scalar_rf = rf_energy_for_technique(classified, "scalar_rf", warp_size)
        ours = rf_energy_for_technique(classified, "ours", warp_size)
        # No full-scalar values here, so the scalar RF barely helps while
        # byte-wise compression still does (the MG/MV story of §5.3).
        assert ours.rf_pj < 0.9 * scalar_rf.rf_pj

    def test_normalization(self, scalar_heavy_kernel):
        classified, warp_size = classified_for(scalar_heavy_kernel)
        baseline = rf_energy_for_technique(classified, "baseline", warp_size)
        assert baseline.normalized_to(baseline) == pytest.approx(1.0)

    def test_unknown_technique_rejected(self, scalar_heavy_kernel):
        classified, warp_size = classified_for(scalar_heavy_kernel)
        with pytest.raises(ConfigError):
            rf_energy_for_technique(classified, "magic", warp_size)

    def test_series_constant_is_ordered(self):
        assert RF_TECHNIQUES == ("baseline", "scalar_rf", "wc_bdi", "ours")


class TestWcBdiState:
    def test_divergent_writes_stay_uncompressed(self, divergent_kernel):
        classified, warp_size = classified_for(divergent_kernel)
        result = rf_energy_for_technique(classified, "wc_bdi", warp_size)
        assert result.rf_pj > 0
        assert result.accesses > 0
