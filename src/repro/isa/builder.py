"""A structured-control-flow DSL for writing kernels.

:class:`KernelBuilder` lets workloads be written like straight-line CUDA
with ``if``/``else`` and loops, and lowers them to a basic-block CFG that
the SIMT executor reconverges with post-dominator analysis::

    b = KernelBuilder("saxpy")
    tid = b.tid()
    addr_x = b.iadd(b.imul(tid, 4), 0x1000)
    x = b.ld_global(addr_x)
    y = b.fmul(x, b.fimm(2.0))
    b.st_global(b.iadd(b.imul(tid, 4), 0x2000), y)
    kernel = b.finish()

Conditionals and loops are context managers::

    with b.if_(cond) as branch:
        ...                      # taken path
        with branch.else_():
            ...                  # not-taken path

    with b.while_(lambda: b.setlt(i, n)):
        ...                      # loop body, re-evaluates the condition

Every value-producing method allocates and returns a fresh register
unless ``dst=`` is given, so expressions compose naturally.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator

from repro.errors import BuilderError
from repro.isa.instructions import Imm, Instruction, Operand, Reg, SpecialReg
from repro.isa.kernel import BasicBlock, Branch, Exit, Jump, Kernel
from repro.isa.opcodes import Opcode, has_destination


def _as_operand(value: object) -> Operand:
    """Coerce Python ints/floats to immediates; pass operands through."""
    if isinstance(value, (Reg, Imm, SpecialReg)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, int):
        return Imm(value)
    if isinstance(value, float):
        return Imm.from_float(value)
    raise BuilderError(f"cannot use {value!r} as an instruction operand")


class _IfContext:
    """Handle returned by :meth:`KernelBuilder.if_`; provides ``else_``."""

    def __init__(self, builder: "KernelBuilder", merge_block: int, else_block: int):
        self._builder = builder
        self._merge_block = merge_block
        self._else_block = else_block
        self._else_used = False

    @contextlib.contextmanager
    def else_(self) -> Iterator[None]:
        """Open the not-taken path of the enclosing ``if_``."""
        if self._else_used:
            raise BuilderError("else_() used twice for the same if_")
        self._else_used = True
        builder = self._builder
        builder._terminate(Jump(self._merge_block))
        builder._switch_to(self._else_block)
        yield
        builder._terminate(Jump(self._merge_block))
        builder._switch_to(self._merge_block)
        # Mark that the merge switch already happened so the outer
        # context manager does not redo it.
        builder._pending_merge.discard(id(self))


class KernelBuilder:
    """Builds a :class:`repro.isa.kernel.Kernel` from structured code."""

    def __init__(self, name: str):
        self.name = name
        self._blocks: list[BasicBlock] = [BasicBlock(0)]
        self._current = 0
        self._next_register = 0
        self._finished = False
        self._terminated: set[int] = set()
        self._pending_merge: set[int] = set()

    # ------------------------------------------------------------------
    # Register and block plumbing.
    # ------------------------------------------------------------------
    def reg(self) -> Reg:
        """Allocate a fresh vector register."""
        register = Reg(self._next_register)
        self._next_register += 1
        return register

    def imm(self, value: int) -> Imm:
        """An integer immediate."""
        return Imm(value)

    def fimm(self, value: float) -> Imm:
        """A float immediate (IEEE-754 binary32 bit pattern)."""
        return Imm.from_float(value)

    def _new_block(self) -> int:
        block_id = len(self._blocks)
        self._blocks.append(BasicBlock(block_id))
        return block_id

    def _switch_to(self, block_id: int) -> None:
        self._current = block_id

    def _terminate(self, terminator: Branch | Jump | Exit) -> None:
        if self._current in self._terminated:
            raise BuilderError(f"block {self._current} already terminated")
        self._blocks[self._current].terminator = terminator
        self._terminated.add(self._current)

    def emit(self, opcode: Opcode, *srcs: object, dst: Reg | None = None) -> Reg | None:
        """Append one instruction to the current block.

        Returns the destination register (freshly allocated when the
        opcode produces a value and ``dst`` is not given).
        """
        if self._finished:
            raise BuilderError("builder already finished")
        if self._current in self._terminated:
            raise BuilderError(
                "cannot emit after a terminator; builder state is corrupt"
            )
        if has_destination(opcode) and dst is None:
            dst = self.reg()
        operands = tuple(_as_operand(s) for s in srcs)
        self._blocks[self._current].instructions.append(
            Instruction(opcode=opcode, dst=dst, srcs=operands)
        )
        return dst

    # ------------------------------------------------------------------
    # Special registers.
    # ------------------------------------------------------------------
    def tid(self, dst: Reg | None = None) -> Reg:
        """Global thread id, materialized into a register."""
        result = self.emit(Opcode.MOV, SpecialReg.TID, dst=dst)
        assert result is not None
        return result

    def lane(self, dst: Reg | None = None) -> Reg:
        """Lane index within the warp."""
        result = self.emit(Opcode.MOV, SpecialReg.LANE, dst=dst)
        assert result is not None
        return result

    def ctaid(self, dst: Reg | None = None) -> Reg:
        """CTA index."""
        result = self.emit(Opcode.MOV, SpecialReg.CTAID, dst=dst)
        assert result is not None
        return result

    def warp_in_cta(self, dst: Reg | None = None) -> Reg:
        """Warp index within the CTA."""
        result = self.emit(Opcode.MOV, SpecialReg.WARP_IN_CTA, dst=dst)
        assert result is not None
        return result

    def ntid(self, dst: Reg | None = None) -> Reg:
        """CTA size in threads."""
        result = self.emit(Opcode.MOV, SpecialReg.NTID, dst=dst)
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # Value-producing operations (each returns its destination register).
    # ------------------------------------------------------------------
    def _binary(self, opcode: Opcode, a: object, b: object, dst: Reg | None) -> Reg:
        result = self.emit(opcode, a, b, dst=dst)
        assert result is not None
        return result

    def _unary(self, opcode: Opcode, a: object, dst: Reg | None) -> Reg:
        result = self.emit(opcode, a, dst=dst)
        assert result is not None
        return result

    def mov(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.MOV, a, dst)

    def iadd(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.IADD, a, b, dst)

    def isub(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.ISUB, a, b, dst)

    def imul(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.IMUL, a, b, dst)

    def imad(self, a: object, b: object, c: object, dst: Reg | None = None) -> Reg:
        result = self.emit(Opcode.IMAD, a, b, c, dst=dst)
        assert result is not None
        return result

    def idiv(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.IDIV, a, b, dst)

    def irem(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.IREM, a, b, dst)

    def imin(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.IMIN, a, b, dst)

    def imax(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.IMAX, a, b, dst)

    def and_(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.AND, a, b, dst)

    def or_(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.OR, a, b, dst)

    def xor(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.XOR, a, b, dst)

    def not_(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.NOT, a, dst)

    def shl(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SHL, a, b, dst)

    def shr(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SHR, a, b, dst)

    def seteq(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SETEQ, a, b, dst)

    def setne(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SETNE, a, b, dst)

    def setlt(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SETLT, a, b, dst)

    def setle(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SETLE, a, b, dst)

    def setgt(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SETGT, a, b, dst)

    def setge(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.SETGE, a, b, dst)

    def selp(self, a: object, b: object, cond: object, dst: Reg | None = None) -> Reg:
        result = self.emit(Opcode.SELP, a, b, cond, dst=dst)
        assert result is not None
        return result

    def fadd(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FADD, a, b, dst)

    def fsub(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FSUB, a, b, dst)

    def fmul(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FMUL, a, b, dst)

    def ffma(self, a: object, b: object, c: object, dst: Reg | None = None) -> Reg:
        result = self.emit(Opcode.FFMA, a, b, c, dst=dst)
        assert result is not None
        return result

    def fmin(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FMIN, a, b, dst)

    def fmax(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FMAX, a, b, dst)

    def fsetlt(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FSETLT, a, b, dst)

    def fsetgt(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FSETGT, a, b, dst)

    def fsetle(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FSETLE, a, b, dst)

    def fsetge(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FSETGE, a, b, dst)

    def fabs(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.FABS, a, dst)

    def fneg(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.FNEG, a, dst)

    def i2f(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.I2F, a, dst)

    def f2i(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.F2I, a, dst)

    def sin(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.SIN, a, dst)

    def cos(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.COS, a, dst)

    def ex2(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.EX2, a, dst)

    def lg2(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.LG2, a, dst)

    def rsqrt(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.RSQRT, a, dst)

    def rcp(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.RCP, a, dst)

    def sqrt(self, a: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.SQRT, a, dst)

    def fdiv(self, a: object, b: object, dst: Reg | None = None) -> Reg:
        return self._binary(Opcode.FDIV, a, b, dst)

    def ld_global(self, addr: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.LD_GLOBAL, addr, dst)

    def ld_shared(self, addr: object, dst: Reg | None = None) -> Reg:
        return self._unary(Opcode.LD_SHARED, addr, dst)

    def st_global(self, addr: object, value: object) -> None:
        self.emit(Opcode.ST_GLOBAL, addr, value)

    def st_shared(self, addr: object, value: object) -> None:
        self.emit(Opcode.ST_SHARED, addr, value)

    def barrier(self) -> None:
        """CTA-wide barrier (``__syncthreads``).

        Every warp of the CTA must reach the same dynamic barrier; the
        executor enforces that it executes under a full warp mask (a
        barrier inside divergent control flow is undefined behaviour on
        real hardware and an error here).
        """
        self.emit(Opcode.BAR)

    # ------------------------------------------------------------------
    # Structured control flow.
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def if_(self, cond: Reg) -> Iterator[_IfContext]:
        """Open a conditional region; ``with b.if_(c) as branch: ...``."""
        then_block = self._new_block()
        else_block = self._new_block()
        merge_block = self._new_block()
        self._terminate(Branch(cond=cond, taken=then_block, not_taken=else_block))
        self._switch_to(then_block)
        context = _IfContext(self, merge_block, else_block)
        self._pending_merge.add(id(context))
        yield context
        if id(context) in self._pending_merge:
            # No else_() was opened: close the then path and make the
            # empty else block fall through to the merge.
            self._pending_merge.discard(id(context))
            self._terminate(Jump(merge_block))
            self._switch_to(else_block)
            self._terminate(Jump(merge_block))
            self._switch_to(merge_block)

    @contextlib.contextmanager
    def while_(self, cond_fn: Callable[[], Reg]) -> Iterator[None]:
        """Loop while ``cond_fn`` (re-emitted in the header) is nonzero."""
        header = self._new_block()
        self._terminate(Jump(header))
        self._switch_to(header)
        cond = cond_fn()
        body = self._new_block()
        exit_block = self._new_block()
        self._terminate(Branch(cond=cond, taken=body, not_taken=exit_block))
        self._switch_to(body)
        yield
        self._terminate(Jump(header))
        self._switch_to(exit_block)

    @contextlib.contextmanager
    def for_range(
        self, start: object, stop: object, step: int = 1
    ) -> Iterator[Reg]:
        """Counted loop; yields the (signed) induction register."""
        if step == 0:
            raise BuilderError("for_range step must be nonzero")
        counter = self.mov(start)
        stop_operand = _as_operand(stop)

        def condition() -> Reg:
            if step > 0:
                return self.setlt(counter, stop_operand)
            return self.setgt(counter, stop_operand)

        with self.while_(condition):
            yield counter
            self.iadd(counter, step & 0xFFFFFFFF, dst=counter)

    def finish(self) -> Kernel:
        """Terminate the current block with ``exit`` and validate."""
        if self._finished:
            raise BuilderError("finish() called twice")
        self._terminate(Exit())
        self._finished = True
        return Kernel(name=self.name, blocks=self._blocks)
